"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing configuration problems from runtime/shape problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` package."""


class ConfigurationError(ReproError):
    """Raised when a configuration object is inconsistent or out of range.

    Examples: a negative dataset size, a JSMA ``gamma`` outside ``[0, 1]``,
    a PCA component count larger than the feature dimension.
    """


class ShapeError(ReproError):
    """Raised when an array has an unexpected shape or dimensionality."""


class NotFittedError(ReproError):
    """Raised when a model/transform is used before being fitted/trained."""


class SerializationError(ReproError):
    """Raised when persisting or restoring an object fails."""


class AttackError(ReproError):
    """Raised when an attack cannot be executed with the given inputs."""


class DefenseError(ReproError):
    """Raised when a defense cannot be constructed or applied."""


class SandboxError(ReproError):
    """Raised by the synthetic sandbox when a sample cannot be executed."""


class DatasetError(ReproError):
    """Raised by dataset construction and splitting utilities."""


class ServingError(ReproError):
    """Raised by the scoring service, model registry and load generator."""


class ParallelError(ReproError):
    """Raised by the process-pool execution engine (grid executor / fleet).

    Wraps worker-side failures (the original traceback travels along as
    text) and dispatcher-side protocol violations such as a worker exiting
    without draining its queue.
    """


class AnalyticsError(ReproError):
    """Raised by the columnar analytics store and the run-report builder."""
