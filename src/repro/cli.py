"""Command-line interface for the experiments and the scoring service.

Usage examples::

    repro-experiments list
    repro-experiments run figure3 --scale small --seed 7
    repro-experiments run table6 --scale tiny --out results/
    repro-experiments run-all --scale tiny
    repro-experiments run-all --scale small --cache-dir .repro-cache

    repro-experiments list-attacks
    repro-experiments list-defenses
    repro-experiments run-scenario --attack jsma --defense feature_squeezing \\
        --model substitute --scale tiny --theta 0.1 --gamma 0.02
    repro-experiments run-scenario --spec scenario.json --json
    repro-experiments run-scenario --spec scenarios.json --workers 4

    repro-experiments run-grid --attacks jsma,random_addition \\
        --defenses none,feature_squeezing --model substitute --workers 4

    repro-experiments serve --scale small --cache-dir default --requests 512
    repro-experiments serve --scale small --workers 4 --requests 2048
    repro-experiments serve --scale tiny --observe --store runs/ --run-id r1
    repro-experiments serve --scale tiny --observe --store runs/ \\
        --workers 2 --slo-ms 25 --slo-breach shed
    repro-experiments top --store runs/ --once
    repro-experiments export-metrics --store runs/
    repro-experiments report --store runs/ --import-bench
    repro-experiments score sample.log --scale tiny --cache-dir default
    repro-experiments cache-info --cache-dir default

``run`` prints the experiment's rendered table/figure to stdout and (with
``--out``) also writes it to ``<out>/<experiment>.txt``.  ``--cache-dir``
attaches an :class:`~repro.utils.artifact_cache.ArtifactCache` so the
corpus and trained models persist across invocations — a warm ``run-all``
or ``serve`` skips straight to the measurement.  ``--dtype`` selects the
compute engine precision per invocation (first-class alternative to the
``REPRO_DTYPE`` environment variable).

``run-scenario`` executes one declarative cell of the attack x defense
grid through :func:`repro.scenarios.run_scenario` — either assembled from
flags or loaded from a :class:`~repro.scenarios.ScenarioSpec` JSON file
(a file holding a JSON *array* runs every spec in it) — and
``list-attacks`` / ``list-defenses`` print the registries with their
parameter schemas.  γ-sweeps (``--sweep gamma``) execute through the
trajectory-replay engine by default — one instrumented full-budget attack,
operating points sliced from its recorded trajectory, byte-identical under
float64; ``--sweep-strategy per_point`` forces the seed per-point path.  ``run-grid`` expands an attacks x defenses product into
specs and runs them; with ``--workers N`` both commands shard the cells
across a :class:`~repro.parallel.GridExecutor` process pool (reports merge
in spec order, byte-identical to serial execution under float64).

``serve`` replays a synthetic clean/malware/adversarial request stream
through the batched :class:`~repro.serving.service.ScoringService` —
or, with ``--workers N``, through a
:class:`~repro.parallel.WorkerFleet` of N replicated service processes
behind one dispatch queue — and
reports throughput and latency quantiles; ``score`` renders the structured
verdict for one API log file (Table II text or JSON counts); ``cache-info``
lists the artifact-cache entries with sizes and version compatibility.  The
``--defense`` endpoint wrapper resolves through the DefenseRegistry, so
every registered defense (and alias, e.g. ``squeeze``) is servable.

``serve --observe`` arms the :mod:`repro.obs` instrumentation layer
(spans and counters across the service/batcher/attack seams — verdicts
stay byte-identical); ``serve --store DIR`` records the run's verdict
stream, latency metrics and instrumentation snapshot into the
:mod:`repro.analytics` store, and ``report --store DIR`` summarises every
recorded run — evasion-rate drift per model version, p99 regressions,
shed/fallback rates — without re-running any scoring
(``--import-bench`` folds existing ``BENCH_*.json`` files in first).

With ``--observe`` every request is trace-stamped: the serve summary ends
with assembled span trees (queue / batch-wait / score breakdown per
request), and ``--slo-ms`` arms a latency SLO under multi-window
burn-rate alerting (``--slo-breach shed`` lets an active breach shed
load).  A ``--store`` run additionally publishes a live snapshot file the
``top`` command renders as a refreshing terminal dashboard, and
``export-metrics`` re-emits in Prometheus text exposition format.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.apilog.log_format import ApiLog
from repro.config import PROFILES, get_profile
from repro.exceptions import ServingError
from repro.experiments import ExperimentContext, available_experiments
from repro.experiments.registry import EXPERIMENTS
from repro.scenarios import (
    ATTACKS,
    DEFENSES,
    MODEL_KINDS,
    ScenarioSpec,
    build_defense,
    ensure_registries,
)
from repro.utils.artifact_cache import ArtifactCache
from repro.version import __version__


def _defense_choices() -> tuple:
    """Registered defense ids plus their aliases (``squeeze`` et al.)."""
    ensure_registries()
    choices = []
    for entry in DEFENSES.entries():
        choices.append(entry.entry_id)
        choices.extend(entry.aliases)
    return tuple(sorted(choices))


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro-experiments`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of 'Malware Evasion "
                    "Attack and Defense' (DSN 2019) on the synthetic substrate, "
                    "and serve the trained detector as a batched scoring service.",
    )
    # The same version string the artifact cache stamps into each entry's
    # cache-meta.json (see repro.utils.artifact_cache).
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiments")
    subparsers.add_parser("list-attacks",
                          help="list the registered attacks and their parameters")
    subparsers.add_parser("list-defenses",
                          help="list the registered defenses and their parameters")

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--scale", choices=sorted(PROFILES), default="small",
                         help="scale profile (default: small)")
        sub.add_argument("--seed", type=int, default=0,
                         help="master seed for the experiment context")
        sub.add_argument("--out", type=Path, default=None,
                         help="directory to write rendered outputs into")
        sub.add_argument("--cache-dir", type=Path, default=None, metavar="DIR",
                         help="persist the corpus and trained models under DIR "
                              "so warm runs skip retraining (pass 'default' for "
                              "$REPRO_CACHE_DIR or ~/.cache/repro-dsn2019)")
        sub.add_argument("--dtype", choices=("float32", "float64"), default=None,
                         help="compute dtype for artifacts built by this "
                              "invocation (default: $REPRO_DTYPE or float64)")

    def add_workers(sub: argparse.ArgumentParser, what: str) -> None:
        sub.add_argument("--workers", type=int, default=1, metavar="N",
                         help=f"shard {what} across N worker processes "
                              f"(default: 1 = serial; 0 = one per CPU)")

    def add_grid_reliability(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--retries", type=int, default=0, metavar="N",
                         help="extra attempts a failed grid cell gets, with "
                              "exponential backoff + jitter (default: 0 = "
                              "fail fast)")
        sub.add_argument("--shard-timeout", type=float, default=None,
                         metavar="SECONDS", dest="shard_timeout",
                         help="per-cell wall-clock budget; an attempt past it "
                              "is abandoned and re-dispatched (default: none)")

    def add_serving_model(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--model", default="target",
                         help="registered model bundle to serve (default: target)")
        sub.add_argument("--defense", choices=_defense_choices(), default="none",
                         help="wrap the endpoint in a registered defense "
                              "(resolved through the DefenseRegistry)")
        sub.add_argument("--threshold", type=float, default=0.5,
                         help="malware-probability decision threshold (default: 0.5)")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", choices=available_experiments(),
                            help="experiment id (table1..table6, figure1..figure5, live_greybox)")
    add_common(run_parser)
    add_workers(run_parser, "the experiment's scenarios (figure3/figure4/table6)")

    run_all_parser = subparsers.add_parser("run-all", help="run every experiment")
    add_common(run_all_parser)
    add_workers(run_all_parser, "each parallelisable experiment's scenarios")

    scenario_parser = subparsers.add_parser(
        "run-scenario", help="run one declarative attack-vs-defense scenario")
    scenario_parser.add_argument("--spec", type=Path, default=None, metavar="FILE",
                                 help="ScenarioSpec JSON file; its fields are "
                                      "authoritative (--scale/--dtype only fill "
                                      "in where the file leaves them null, "
                                      "other flags are ignored)")
    scenario_parser.add_argument("--attack", default="jsma",
                                 help="attack registry id (see list-attacks)")
    scenario_parser.add_argument("--defense", choices=_defense_choices(),
                                 default="none",
                                 help="defense registry id (see list-defenses)")
    scenario_parser.add_argument("--model", choices=MODEL_KINDS, default="target",
                                 help="crafting surface (default: target — the "
                                      "white-box setting)")
    scenario_parser.add_argument("--theta", type=float, default=0.1,
                                 help="per-feature perturbation magnitude")
    scenario_parser.add_argument("--gamma", type=float, default=0.02,
                                 help="fraction of perturbable features")
    scenario_parser.add_argument("--sweep", choices=("gamma", "theta"), default=None,
                                 help="sweep one constraint parameter into a "
                                      "security curve")
    scenario_parser.add_argument("--sweep-values", default=None, metavar="V1,V2,...",
                                 help="explicit sweep grid (default: the paper "
                                      "grid at the scale profile's resolution)")
    scenario_parser.add_argument("--sweep-strategy", choices=("replay", "per_point"),
                                 default=None,
                                 help="gamma-sweep execution: 'replay' (default) "
                                      "slices one recorded full-budget attack "
                                      "trajectory per operating point; "
                                      "'per_point' re-runs the attack per point")
    scenario_parser.add_argument("--robustness-budget", type=int, default=None,
                                 metavar="N",
                                 help="also compute the minimal-evasion-budget "
                                      "distribution up to N added features")
    scenario_parser.add_argument("--attack-params", default=None, metavar="JSON",
                                 help="attack parameter overrides as a JSON object")
    scenario_parser.add_argument("--defense-params", default=None, metavar="JSON",
                                 help="defense parameter overrides as a JSON object")
    scenario_parser.add_argument("--json", action="store_true", dest="as_json",
                                 help="print the full ScenarioReport as JSON")
    add_common(scenario_parser)
    add_workers(scenario_parser, "the specs (when --spec holds a JSON array)")
    add_grid_reliability(scenario_parser)

    grid_parser = subparsers.add_parser(
        "run-grid", help="run an attacks x defenses grid of scenarios, "
                         "optionally across a process pool")
    grid_parser.add_argument("--attacks", default="jsma", metavar="A1,A2,...",
                             help="comma-separated attack ids, or a JSON array "
                                  "of ids / {'id':..., 'params':...} objects")
    grid_parser.add_argument("--defenses", default="none", metavar="D1,D2,...",
                             help="comma-separated defense ids, or a JSON "
                                  "array (see --attacks)")
    grid_parser.add_argument("--model", choices=MODEL_KINDS, default="target",
                             help="crafting surface for every cell")
    grid_parser.add_argument("--theta", type=float, default=0.1,
                             help="per-feature perturbation magnitude")
    grid_parser.add_argument("--gamma", type=float, default=0.02,
                             help="fraction of perturbable features")
    grid_parser.add_argument("--json", action="store_true", dest="as_json",
                             help="print the merged GridResult as JSON")
    add_common(grid_parser)
    add_workers(grid_parser, "the grid cells")
    add_grid_reliability(grid_parser)

    serve_parser = subparsers.add_parser(
        "serve", help="replay a synthetic request stream through the scoring "
                      "service and report throughput/latency")
    add_common(serve_parser)
    add_serving_model(serve_parser)
    add_workers(serve_parser, "the scoring service (replicated workers)")
    serve_parser.add_argument("--requests", type=int, default=256,
                              help="number of requests to replay (default: 256)")
    serve_parser.add_argument("--batch-size", type=int, default=32,
                              help="micro-batch flush size (default: 32)")
    serve_parser.add_argument("--max-delay-ms", type=float, default=2.0,
                              help="micro-batch latency SLO in ms (default: 2)")
    serve_parser.add_argument("--mix", default="0.5,0.4,0.1", metavar="C,M,A",
                              help="clean,malware,adversarial traffic fractions "
                                   "(default: 0.5,0.4,0.1; adversarial traffic "
                                   "trains the substitute and runs JSMA once)")
    serve_parser.add_argument("--rate", type=float, default=None,
                              help="replay rate in requests/s (default: as fast "
                                   "as the service accepts them)")
    serve_parser.add_argument("--restart-budget", type=int, default=2,
                              metavar="N", dest="restart_budget",
                              help="dead fleet replicas to replace per replay "
                                   "before giving up on restarts (default: 2)")
    serve_parser.add_argument("--fault-plan", type=Path, default=None,
                              metavar="FILE", dest="fault_plan",
                              help="JSON FaultPlan to arm in the service/fleet "
                                   "(chaos testing; see repro.reliability)")
    serve_parser.add_argument("--observe", action="store_true",
                              help="enable the instrumentation layer (spans + "
                                   "counters across service/batcher/attack "
                                   "seams; verdicts stay byte-identical)")
    serve_parser.add_argument("--store", type=Path, default=None, metavar="DIR",
                              help="record this run (verdicts, latency metrics "
                                   "and, with --observe, the instrumentation "
                                   "snapshot) into the analytics store at DIR "
                                   "— see the 'report' command")
    serve_parser.add_argument("--run-id", default=None, dest="run_id",
                              help="analytics run id for --store (default: "
                                   "serve-<unix-time>)")
    serve_parser.add_argument("--slo-ms", type=float, default=None,
                              metavar="MS", dest="slo_ms",
                              help="arm a latency SLO: verdicts over MS burn "
                                   "error budget; breaches fire burn-rate "
                                   "alerts (see --slo-breach)")
    serve_parser.add_argument("--slo-objective", type=float, default=0.99,
                              dest="slo_objective", metavar="FRACTION",
                              help="required good fraction for --slo-ms "
                                   "(default: 0.99)")
    serve_parser.add_argument("--slo-breach", choices=("alert", "shed",
                                                       "fallback"),
                              default="alert", dest="slo_breach",
                              help="what an active SLO breach arms: alert "
                                   "only, load shedding, or fallback to the "
                                   "undefended model (default: alert)")

    score_parser = subparsers.add_parser(
        "score", help="score one API log file and print the structured verdict")
    score_parser.add_argument("log_file", type=Path,
                              help="Table II text log, or JSON ({'api': count} "
                                   "mapping / {'api_counts': ...} object)")
    add_common(score_parser)
    add_serving_model(score_parser)

    cache_parser = subparsers.add_parser(
        "cache-info", help="list artifact-cache entries, sizes and versions")
    cache_parser.add_argument("--cache-dir", type=Path, default=None, metavar="DIR",
                              help="cache root to inspect (pass 'default' for "
                                   "$REPRO_CACHE_DIR or ~/.cache/repro-dsn2019)")

    report_parser = subparsers.add_parser(
        "report", help="summarise recorded runs from an analytics store: "
                       "evasion-rate drift, per-model-version deltas, "
                       "shed/fallback rates and p99 regressions — without "
                       "re-running any scoring")
    report_parser.add_argument("--store", type=Path, required=True, metavar="DIR",
                               help="analytics store root (see 'serve --store')")
    report_parser.add_argument("--import-bench", type=Path, nargs="*",
                               default=None, metavar="FILE", dest="import_bench",
                               help="fold BENCH_*.json files into the store "
                                    "before reporting (idempotent; with no "
                                    "FILE arguments, globs ./BENCH_*.json)")
    report_parser.add_argument("--json", action="store_true", dest="as_json",
                               help="print the full report payload as JSON")
    report_parser.add_argument("--out", type=Path, default=None,
                               help="directory to write the rendered report into")

    top_parser = subparsers.add_parser(
        "top", help="live terminal dashboard for a running replay: progress, "
                    "rps, latency quantiles, SLO burn rates and alerts, read "
                    "from the store's atomically-published live snapshot")
    top_parser.add_argument("--store", type=Path, required=True, metavar="DIR",
                            help="analytics store root the replay publishes "
                                 "into (see 'serve --observe --store')")
    top_parser.add_argument("--once", action="store_true",
                            help="render one frame and exit (scripts, CI)")
    top_parser.add_argument("--interval", type=float, default=1.0,
                            metavar="SECONDS",
                            help="refresh interval (default: 1.0)")
    top_parser.add_argument("--frames", type=int, default=None, metavar="N",
                            help="stop after N refreshes (default: until "
                                 "interrupted or the run reports finished)")

    export_parser = subparsers.add_parser(
        "export-metrics", help="emit the last published metrics snapshot in "
                               "Prometheus text exposition format")
    export_parser.add_argument("--store", type=Path, required=True,
                               metavar="DIR",
                               help="analytics store root holding the live "
                                    "snapshot (see 'serve --observe --store')")
    export_parser.add_argument("--out", type=Path, default=None,
                               help="directory to write the exposition into")
    return parser


def _emit(name: str, rendered: str, out_dir: Optional[Path]) -> None:
    print(rendered)
    print()
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
        (out_dir / f"{name}.txt").write_text(rendered + "\n", encoding="utf-8")


def _cache_from(cache_dir: Optional[Path]) -> Optional[ArtifactCache]:
    if cache_dir is None:
        return None
    return ArtifactCache() if str(cache_dir) == "default" else ArtifactCache(cache_dir)


def load_scoring_source(path: Path):
    """Read a log file into something the scoring service accepts.

    ``.json`` files may carry a plain ``{"api": count}`` mapping, an object
    with an ``api_counts`` mapping, or an object with a ``log`` string in the
    Table II text format.  Any other extension is parsed as Table II text.
    """
    text = path.read_text(encoding="utf-8")
    if path.suffix.lower() == ".json":
        data = json.loads(text)
        if isinstance(data, dict) and "api_counts" in data:
            data = data["api_counts"]
        if isinstance(data, dict) and "log" in data:
            return ApiLog.from_text(str(data["log"]), sample_id=path.stem)
        if isinstance(data, dict) and all(
                isinstance(count, (int, float)) for count in data.values()):
            return {str(api): int(count) for api, count in data.items()}
        raise ServingError(
            f"{path} must contain an api->count mapping, an 'api_counts' "
            f"object, or a 'log' text field")
    return ApiLog.from_text(text, sample_id=path.stem)


def _resolve_detector(args, servable, context, registry=None):
    """Resolve the endpoint defense through the DefenseRegistry.

    Scenario bundles registered on the model registry carry their own
    defense; otherwise the ``--defense`` flag names a registry entry, fitted
    over the served bundle's model.  ``"none"`` serves the bare model.
    """
    if registry is not None:
        detector = registry.detector_for(args.model, context)
        if detector is not None:
            return detector
    if DEFENSES.get(args.defense).entry_id == "none":
        return None
    return build_defense(args.defense, context, model=servable.model)


def _serve_summary_lines(args, servable, verdicts, endpoint_line: str,
                         scored_suffix: str = "") -> list:
    """The traffic/verdict lines `serve` prints in both execution modes."""
    flagged = sum(verdict.is_malware for verdict in verdicts)
    by_kind = {}
    for verdict in verdicts:
        kind = verdict.request_id.split("-", 1)[0]
        hits, total = by_kind.get(kind, (0, 0))
        by_kind[kind] = (hits + int(verdict.is_malware), total + 1)
    lines = [
        f"scoring service — model {servable.name} v{servable.version} "
        f"(scale {servable.scale.name}, seed {servable.seed}, dtype {servable.dtype})",
        endpoint_line,
        f"traffic: {args.requests} requests, mix {args.mix}"
        + (f", rate {args.rate:g} req/s" if args.rate else ", unpaced"),
        f"verdicts: {flagged} flagged malware / {len(verdicts)} scored"
        + scored_suffix,
    ]
    for kind in sorted(by_kind):
        hits, total = by_kind[kind]
        lines.append(f"  {kind:<8} {hits}/{total} flagged malware")
    return lines


def _load_fault_plan(args):
    """The ``--fault-plan`` file as a FaultPlan (None when the flag is unset)."""
    if getattr(args, "fault_plan", None) is None:
        return None
    from repro.reliability import FaultPlan

    return FaultPlan.from_json(args.fault_plan.read_text(encoding="utf-8"))


def _obs_summary_lines(snapshot: dict) -> list:
    """A compact text view of an instrumentation snapshot for ``serve``."""
    metrics = snapshot.get("metrics") or {}
    counters = metrics.get("counters") or {}
    gauges = metrics.get("gauges") or {}
    histograms = metrics.get("histograms") or {}
    lines = [f"instrumentation: {snapshot.get('n_spans', 0)} spans, "
             f"{len(counters)} counters, {len(histograms)} histograms"]
    for name in sorted(counters):
        lines.append(f"  {name} = {counters[name]:g}")
    for name in sorted(gauges):
        lines.append(f"  {name} (gauge): last={gauges[name]['value']:g} "
                     f"max={gauges[name]['max']:g}")
    for name in sorted(histograms):
        stats = histograms[name]
        lines.append(f"  {name}: n={stats['count']} mean={stats['mean']:.6g} "
                     f"max={stats['max']:.6g}")
    dropped = snapshot.get("n_dropped_events", 0)
    if dropped:
        lines.append(f"  (event buffer full: {dropped} oldest events dropped)")
    return lines


def _slo_specs(args):
    """The SLO specs the ``--slo-*`` flags describe (empty when unarmed)."""
    if getattr(args, "slo_ms", None) is None:
        return ()
    from repro.obs import SLOSpec

    return (SLOSpec(name="latency", objective=args.slo_objective,
                    target_ms=args.slo_ms, on_breach=args.slo_breach),)


def _live_publisher(args, obs, slo_specs, stamper=None):
    """A live-snapshot publisher for ``--store`` runs (None without one)."""
    if args.store is None:
        return None
    from repro.obs import LivePublisher, SLOMonitor

    display = SLOMonitor(slo_specs) if slo_specs else None
    return LivePublisher(args.store, instrumentation=obs, slo=display,
                         stamper=stamper)


def _trace_summary_lines(args, snapshot: Optional[dict]) -> list:
    """Span-tree and SLO-alert summary for ``serve`` (empty when untraced)."""
    if not snapshot:
        return []
    from repro.obs import SpanCollector, breakdown_summary

    collector = SpanCollector()
    collector.add_snapshot(snapshot)
    trees = collector.trees()
    lines = []
    if trees:
        complete = sum(tree.complete for tree in trees.values())
        lines.append(f"traces: {len(trees)} requests traced — {complete} "
                     f"complete, {collector.n_orphans} orphans, "
                     f"{collector.n_duplicates} duplicate span ids")
        summary = breakdown_summary(trees)
        if summary["queue_ms"]["count"]:
            lines.append(
                "  breakdown (once-scored traces, mean): "
                f"queue {summary['queue_ms']['mean_ms']:.3f} ms | "
                f"batch-wait {summary['batch_wait_ms']['mean_ms']:.3f} ms | "
                f"score {summary['score_ms']['mean_ms']:.3f} ms | "
                f"end-to-end {summary['total_ms']['mean_ms']:.3f} ms")
        sample = next((tree for tree in trees.values()
                       if tree.complete and len(tree.nodes) >= 4), None)
        if sample is not None:
            lines.extend("  " + line for line in sample.render().splitlines())
    if getattr(args, "slo_ms", None) is not None:
        alerts = [event for event in snapshot.get("events") or []
                  if event.get("kind") == "alert"]
        if alerts:
            names = sorted({str(event.get("name", "")) for event in alerts})
            lines.append(f"slo alerts: {len(alerts)} fired "
                         f"({', '.join(names)})")
        else:
            lines.append("slo alerts: none fired")
    return lines


def _generate_requests(generator, n_requests: int, obs):
    """Generate the replay stream, under ambient instrumentation when on.

    The adversarial slice of the traffic mix trains a substitute and runs
    JSMA once — with ``--observe`` that crafting work lands in the
    ``jsma.*`` counters and the ``attack.jsma`` span.
    """
    if obs is None:
        return generator.generate(n_requests)
    from repro.obs import instrumented

    with instrumented(obs):
        return generator.generate(n_requests)


def _record_serve_run(args, verdicts, servable, throughput, obs) -> list:
    """Record the replayed run into ``--store`` (no-op without the flag)."""
    if args.store is None:
        return []
    from repro.analytics import AnalyticsStore, record_serve_run

    run_id = args.run_id or f"serve-{int(time.time())}"
    record_serve_run(
        AnalyticsStore(args.store), run_id, verdicts,
        model_version=servable.version,
        scenario=f"serve:{args.model}/{args.defense}",
        throughput=throughput,
        obs_snapshot=obs if isinstance(obs, dict)
        else (obs.snapshot() if obs is not None else None))
    return [f"recorded run {run_id} → {args.store}"]


def _cmd_serve(args) -> int:
    from repro.serving import LoadGenerator, ModelRegistry, ScoringService, TrafficMix, replay

    cache = _cache_from(args.cache_dir)
    context = ExperimentContext(scale=get_profile(args.scale), seed=args.seed,
                                cache=cache, dtype=args.dtype)
    generator = LoadGenerator(context, mix=TrafficMix.parse(args.mix), seed=args.seed)
    plan = _load_fault_plan(args)
    retry_policy = None
    if plan is not None:
        from repro.reliability import RetryPolicy

        # Chaos runs need recovery armed; keep backoff short for the CLI.
        retry_policy = RetryPolicy(max_retries=2, base_delay_s=0.01,
                                   seed=args.seed)
    obs = None
    if args.observe:
        from repro.obs import Instrumentation, ListSink

        # Tracing emits ~4 span events per request; size the buffer so a
        # multi-thousand-request replay keeps every root reachable.
        obs = Instrumentation(sink=ListSink(max_events=32768))
    slo_specs = _slo_specs(args)

    if args.workers != 1:
        from repro.parallel import WorkerFleet

        fleet = WorkerFleet(n_workers=args.workers, model=args.model,
                            defense=args.defense, threshold=args.threshold,
                            context=context, cache=cache,
                            max_batch_size=args.batch_size,
                            max_delay_ms=args.max_delay_ms,
                            restart_budget=args.restart_budget,
                            fault_plan=plan, retry_policy=retry_policy,
                            instrumentation=obs,
                            slo_specs=slo_specs or None)
        requests = _generate_requests(generator, args.requests, obs)
        publisher = _live_publisher(args, obs, slo_specs)
        verdicts, fleet_report = fleet.score_stream(requests,
                                                    rate_per_s=args.rate,
                                                    seed=args.seed,
                                                    progress=publisher)
        if publisher is not None:
            publisher.finish(fleet_report.obs)
        endpoint = (f"endpoint: defense={args.defense} "
                    f"threshold={args.threshold} batch_size={args.batch_size} "
                    f"max_delay_ms={args.max_delay_ms} "
                    f"workers={fleet.n_workers}")
        lines = _serve_summary_lines(args, fleet.servable, verdicts, endpoint)
        lines.append(fleet_report.render())
        if fleet_report.obs is not None:
            lines.extend(_obs_summary_lines(fleet_report.obs))
            lines.extend(_trace_summary_lines(args, fleet_report.obs))
        lines.extend(_record_serve_run(args, verdicts, fleet.servable,
                                       fleet_report.throughput,
                                       fleet_report.obs))
        _emit("serve", "\n".join(lines), args.out)
        return 0

    registry = ModelRegistry(cache=cache)
    servable = registry.get(args.model, context=context)
    detector = _resolve_detector(args, servable, context, registry=registry)
    injector = (plan.injector(scope={"worker": 0})
                if plan is not None else None)
    slo = None
    if slo_specs:
        from repro.obs import SLOMonitor

        slo = SLOMonitor(slo_specs, instrumentation=obs)
    service = ScoringService(servable, detector=detector, threshold=args.threshold,
                             max_batch_size=args.batch_size,
                             max_delay_ms=args.max_delay_ms,
                             retry_policy=retry_policy,
                             isolate_poison=plan is not None,
                             injector=injector,
                             instrumentation=obs,
                             slo=slo)
    requests = _generate_requests(generator, args.requests, obs)
    stamper = None
    if obs is not None:
        from repro.obs import TraceStamper

        # Single-process path: stamp trace contexts here, where the fleet
        # dispatcher would; root durations fall back to verdict latency.
        stamper = TraceStamper(obs)
        requests = [stamper.stamp(request) for request in requests]
    publisher = _live_publisher(args, obs, slo_specs, stamper=stamper)

    start = time.perf_counter()
    verdicts = replay(service, requests, rate_per_s=args.rate, seed=args.seed,
                      progress=publisher)
    elapsed = time.perf_counter() - start
    if stamper is not None:
        stamper.finish_all(verdicts)
    if publisher is not None:
        publisher.finish(obs.snapshot() if obs is not None else None)
    report = service.report(elapsed)

    endpoint = (f"endpoint: defense={service.defense_name or 'none'} "
                f"threshold={service.threshold} batch_size={service.max_batch_size} "
                f"max_delay_ms={service.max_delay_ms}")
    lines = _serve_summary_lines(args, servable, verdicts, endpoint,
                                 scored_suffix=f" in {service.n_batches} "
                                               f"fused batches")
    lines.append(report.render())
    if injector is not None:
        service.reliability.record_faults(injector.fired)
    if not service.reliability.empty():
        lines.append(service.reliability.render())
    if obs is not None:
        snapshot = obs.snapshot()
        lines.extend(_obs_summary_lines(snapshot))
        lines.extend(_trace_summary_lines(args, snapshot))
    lines.extend(_record_serve_run(args, verdicts, servable, report, obs))
    _emit("serve", "\n".join(lines), args.out)
    return 0


def _cmd_report(args) -> int:
    from repro.analytics import (
        AnalyticsStore,
        build_report,
        import_bench,
        render_report,
    )

    store = AnalyticsStore(args.store)
    lines = []
    if args.import_bench is not None:
        paths = (list(args.import_bench) if args.import_bench
                 else sorted(Path(".").glob("BENCH_*.json")))
        imported = import_bench(store, paths)
        lines.append(f"imported {len(imported)} benchmark file(s)"
                     + (": " + ", ".join(imported) if imported else ""))
    report = build_report(store)
    if args.as_json:
        rendered = json.dumps(report, indent=2, sort_keys=True, default=float)
    else:
        rendered = "\n".join(lines + [render_report(
            report, store_root=str(store.root))])
    _emit("report", rendered, args.out)
    return 0


def _cmd_top(args) -> int:
    from repro.obs import read_snapshot, render_top

    frame = 0
    while True:
        payload = read_snapshot(args.store)
        rendered = render_top(payload)
        if args.once or args.frames is not None:
            print(rendered)
        else:
            # Clear + home keeps the dashboard in place on ANSI terminals.
            print(f"\x1b[2J\x1b[H{rendered}", flush=True)
        frame += 1
        if args.once:
            return 0
        if args.frames is not None and frame >= args.frames:
            return 0
        if payload is not None and payload.get("finished"):
            return 0
        try:
            time.sleep(max(0.05, args.interval))
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            return 0


def _cmd_export_metrics(args) -> int:
    from repro.obs import prometheus_exposition, read_snapshot, snapshot_path

    payload = read_snapshot(args.store)
    if payload is None:
        print(f"no live snapshot at {snapshot_path(args.store)} — run "
              f"`serve --observe --store {args.store}` first", file=sys.stderr)
        return 1
    rendered = prometheus_exposition(payload.get("metrics"))
    print(rendered, end="")
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        (args.out / "metrics.prom").write_text(rendered, encoding="utf-8")
    return 0


def _cmd_score(args) -> int:
    from repro.serving import ModelRegistry, ScoringService

    source = load_scoring_source(args.log_file)
    cache = _cache_from(args.cache_dir)
    context = ExperimentContext(scale=get_profile(args.scale), seed=args.seed,
                                cache=cache, dtype=args.dtype)
    registry = ModelRegistry(cache=cache)
    servable = registry.get(args.model, context=context)
    detector = _resolve_detector(args, servable, context, registry=registry)
    service = ScoringService(servable, detector=detector, threshold=args.threshold)
    verdict = service.score(source, request_id=args.log_file.stem)
    _emit("score", json.dumps(verdict.as_dict(), indent=2, sort_keys=True), args.out)
    return 0


def _human_size(n_bytes: int) -> str:
    """Render a byte count as B/KiB/MiB/GiB with one decimal."""
    size = float(n_bytes)
    for unit in ("B", "KiB", "MiB"):
        if size < 1024.0:
            return f"{size:,.1f} {unit}" if unit != "B" else f"{int(size)} B"
        size /= 1024.0
    return f"{size:,.1f} GiB"


def _cmd_cache_info(args) -> int:
    cache = _cache_from(args.cache_dir if args.cache_dir is not None else Path("default"))
    entries = cache.entries()
    print(f"cache root: {cache.root}")
    if not entries:
        print("(no cached artifacts)")
        return 0
    print(f"{'kind':<22} {'key':<18} {'version':<10} {'size':>10} "
          f"{'':>11} {'files':>6}  state")
    total = 0
    for entry in entries:
        total += entry.size_bytes
        state = ("ok" if entry.compatible
                 else ("incomplete" if not entry.complete else "stale-version"))
        version = entry.package_version or "unstamped"
        print(f"{entry.kind:<22} {entry.key:<18} {version:<10} "
              f"{entry.size_bytes:>10,} {_human_size(entry.size_bytes):>11} "
              f"{entry.n_files:>6}  {state}")
    print(f"{len(entries)} entries, {total:,} bytes total ({_human_size(total)})")
    by_kind = {}
    for entry in entries:
        count, size = by_kind.get(entry.kind, (0, 0))
        by_kind[entry.kind] = (count + 1, size + entry.size_bytes)
    print()
    print("per-kind breakdown:")
    print(f"{'kind':<22} {'entries':>7} {'bytes':>14} {'size':>11} {'share':>7}")
    for kind in sorted(by_kind):
        count, size = by_kind[kind]
        share = size / total if total else 0.0
        print(f"{kind:<22} {count:>7} {size:>14,} {_human_size(size):>11} "
              f"{share:>6.1%}")
    return 0


def _registry_listing(registry) -> str:
    """Render one registry (ids, aliases, classes, param schemas) as text."""
    lines = []
    for entry in registry.entries():
        alias_note = f" (aliases: {', '.join(entry.aliases)})" if entry.aliases else ""
        lines.append(f"{entry.entry_id:<22} {entry.cls.__name__:<28} "
                     f"[{entry.kind}]{alias_note}")
        lines.append(f"    {entry.summary}")
        lines.append(f"    params: {entry.schema()}")
    return "\n".join(lines)


def _fill_spec_defaults(spec: ScenarioSpec, args) -> ScenarioSpec:
    """Spec files are authoritative; flags only fill fields left null."""
    if spec.scale is None:
        spec = spec.with_overrides(scale=args.scale)
    if spec.dtype is None and args.dtype is not None:
        spec = spec.with_overrides(dtype=args.dtype)
    if (spec.sweep is not None and spec.sweep_strategy is None
            and getattr(args, "sweep_strategy", None) is not None):
        spec = spec.with_overrides(sweep_strategy=args.sweep_strategy)
    return spec


def _run_specs_for_cli(specs, args):
    """Run CLI-assembled specs through the grid executor and emit the result."""
    from repro.parallel import GridExecutor

    executor = GridExecutor(n_workers=args.workers or None,
                            cache=_cache_from(args.cache_dir),
                            retries=getattr(args, "retries", 0),
                            shard_timeout_s=getattr(args, "shard_timeout", None))
    result = executor.run(specs)
    if args.as_json:
        rendered = result.to_json()
    elif len(result.reports) == 1:
        rendered = result.reports[0].render()
    else:
        rendered = "\n\n".join([report.render() for report in result.reports]
                               + [result.render()])
    return result, rendered


def _cmd_run_scenario(args) -> int:
    from repro.scenarios import run_scenario

    if args.spec is not None:
        from repro.exceptions import ConfigurationError

        try:
            payload = json.loads(args.spec.read_text(encoding="utf-8"))
        except ValueError as error:
            raise ConfigurationError(
                f"invalid scenario spec JSON in {args.spec}: {error}") from error
        if isinstance(payload, list):
            # A spec-array file is a grid: shard it across --workers.
            specs = [_fill_spec_defaults(ScenarioSpec.from_dict(entry), args)
                     for entry in payload]
            _, rendered = _run_specs_for_cli(specs, args)
            _emit("scenario", rendered, args.out)
            return 0
        spec = _fill_spec_defaults(ScenarioSpec.from_dict(payload), args)
    else:
        sweep_values = None
        if args.sweep_values is not None:
            sweep_values = tuple(float(v) for v in args.sweep_values.split(","))
        spec = ScenarioSpec(
            attack=args.attack,
            attack_params=json.loads(args.attack_params) if args.attack_params else {},
            defense=args.defense,
            defense_params=json.loads(args.defense_params) if args.defense_params else {},
            model=args.model,
            scale=args.scale,
            seed=args.seed,
            dtype=args.dtype,
            theta=args.theta,
            gamma=args.gamma,
            sweep=args.sweep,
            sweep_values=sweep_values,
            sweep_strategy=args.sweep_strategy,
            robustness_budget=args.robustness_budget,
        )
    cache = _cache_from(args.cache_dir)
    context = ExperimentContext(scale=get_profile(spec.scale), seed=spec.seed,
                                cache=cache, dtype=spec.dtype)
    report = run_scenario(spec, context=context)
    _emit("scenario", report.to_json() if args.as_json else report.render(), args.out)
    return 0


def _parse_grid_axis(text: str, what: str):
    """``a,b,c`` or a JSON array of ids / {"id":..., "params":...} objects."""
    text = text.strip()
    if text.startswith("["):
        from repro.exceptions import ConfigurationError

        try:
            return json.loads(text)
        except ValueError as error:
            raise ConfigurationError(
                f"invalid JSON for --{what}: {error}") from error
    return [part.strip() for part in text.split(",") if part.strip()]


def _cmd_run_grid(args) -> int:
    specs = ScenarioSpec.grid(
        attacks=_parse_grid_axis(args.attacks, "attacks"),
        defenses=_parse_grid_axis(args.defenses, "defenses"),
        model=args.model, scale=args.scale, seed=args.seed, dtype=args.dtype,
        theta=args.theta, gamma=args.gamma)
    _, rendered = _run_specs_for_cli(specs, args)
    _emit("grid", rendered, args.out)
    return 0


#: Experiments whose drivers accept ``workers=`` (scenario fan-out).
PARALLEL_EXPERIMENTS = ("figure3", "figure4", "table6")


def _runner_kwargs(experiment_id: str, workers: int) -> dict:
    if workers != 1 and experiment_id in PARALLEL_EXPERIMENTS:
        from repro.parallel import resolve_workers

        return {"workers": resolve_workers(workers or None)}
    return {}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "list":
        for experiment_id in available_experiments():
            spec = EXPERIMENTS[experiment_id]
            print(f"{experiment_id:<14} {spec.title}  [{spec.paper_section}]")
        return 0

    if args.command == "list-attacks":
        ensure_registries()
        print(_registry_listing(ATTACKS))
        return 0
    if args.command == "list-defenses":
        ensure_registries()
        print(_registry_listing(DEFENSES))
        return 0
    if args.command == "run-scenario":
        return _cmd_run_scenario(args)
    if args.command == "run-grid":
        return _cmd_run_grid(args)

    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "score":
        return _cmd_score(args)
    if args.command == "cache-info":
        return _cmd_cache_info(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "top":
        return _cmd_top(args)
    if args.command == "export-metrics":
        return _cmd_export_metrics(args)

    cache = _cache_from(args.cache_dir)
    context = ExperimentContext(scale=get_profile(args.scale), seed=args.seed,
                                cache=cache, dtype=args.dtype)
    if args.command == "run":
        result = EXPERIMENTS[args.experiment].runner(
            context, **_runner_kwargs(args.experiment, args.workers))
        _emit(args.experiment, result.render(), args.out)
        return 0

    if args.command == "run-all":
        for experiment_id in available_experiments():
            print(f"== {experiment_id}: {EXPERIMENTS[experiment_id].title}")
            result = EXPERIMENTS[experiment_id].runner(
                context, **_runner_kwargs(experiment_id, args.workers))
            _emit(experiment_id, result.render(), args.out)
        return 0

    return 2  # unreachable given required=True


if __name__ == "__main__":  # pragma: no cover - manual invocation path
    sys.exit(main())
