"""Command-line interface for the experiments and the scoring service.

Usage examples::

    repro-experiments list
    repro-experiments run figure3 --scale small --seed 7
    repro-experiments run table6 --scale tiny --out results/
    repro-experiments run-all --scale tiny
    repro-experiments run-all --scale small --cache-dir .repro-cache

    repro-experiments serve --scale small --cache-dir default --requests 512
    repro-experiments score sample.log --scale tiny --cache-dir default
    repro-experiments cache-info --cache-dir default

``run`` prints the experiment's rendered table/figure to stdout and (with
``--out``) also writes it to ``<out>/<experiment>.txt``.  ``--cache-dir``
attaches an :class:`~repro.utils.artifact_cache.ArtifactCache` so the
corpus and trained models persist across invocations — a warm ``run-all``
or ``serve`` skips straight to the measurement.  ``--dtype`` selects the
compute engine precision per invocation (first-class alternative to the
``REPRO_DTYPE`` environment variable).

``serve`` replays a synthetic clean/malware/adversarial request stream
through the batched :class:`~repro.serving.service.ScoringService` and
reports throughput and latency quantiles; ``score`` renders the structured
verdict for one API log file (Table II text or JSON counts); ``cache-info``
lists the artifact-cache entries with sizes and version compatibility.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.apilog.log_format import ApiLog
from repro.config import PROFILES, get_profile
from repro.exceptions import ServingError
from repro.experiments import ExperimentContext, available_experiments
from repro.experiments.registry import EXPERIMENTS
from repro.utils.artifact_cache import ArtifactCache

#: Defense endpoints the ``serve``/``score`` commands can wrap the model in.
DEFENSE_CHOICES = ("none", "squeeze", "ensemble")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro-experiments`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of 'Malware Evasion "
                    "Attack and Defense' (DSN 2019) on the synthetic substrate, "
                    "and serve the trained detector as a batched scoring service.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiments")

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--scale", choices=sorted(PROFILES), default="small",
                         help="scale profile (default: small)")
        sub.add_argument("--seed", type=int, default=0,
                         help="master seed for the experiment context")
        sub.add_argument("--out", type=Path, default=None,
                         help="directory to write rendered outputs into")
        sub.add_argument("--cache-dir", type=Path, default=None, metavar="DIR",
                         help="persist the corpus and trained models under DIR "
                              "so warm runs skip retraining (pass 'default' for "
                              "$REPRO_CACHE_DIR or ~/.cache/repro-dsn2019)")
        sub.add_argument("--dtype", choices=("float32", "float64"), default=None,
                         help="compute dtype for artifacts built by this "
                              "invocation (default: $REPRO_DTYPE or float64)")

    def add_serving_model(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--model", default="target",
                         help="registered model bundle to serve (default: target)")
        sub.add_argument("--defense", choices=DEFENSE_CHOICES, default="none",
                         help="wrap the endpoint in a Table VI defense")
        sub.add_argument("--threshold", type=float, default=0.5,
                         help="malware-probability decision threshold (default: 0.5)")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", choices=available_experiments(),
                            help="experiment id (table1..table6, figure1..figure5, live_greybox)")
    add_common(run_parser)

    run_all_parser = subparsers.add_parser("run-all", help="run every experiment")
    add_common(run_all_parser)

    serve_parser = subparsers.add_parser(
        "serve", help="replay a synthetic request stream through the scoring "
                      "service and report throughput/latency")
    add_common(serve_parser)
    add_serving_model(serve_parser)
    serve_parser.add_argument("--requests", type=int, default=256,
                              help="number of requests to replay (default: 256)")
    serve_parser.add_argument("--batch-size", type=int, default=32,
                              help="micro-batch flush size (default: 32)")
    serve_parser.add_argument("--max-delay-ms", type=float, default=2.0,
                              help="micro-batch latency SLO in ms (default: 2)")
    serve_parser.add_argument("--mix", default="0.5,0.4,0.1", metavar="C,M,A",
                              help="clean,malware,adversarial traffic fractions "
                                   "(default: 0.5,0.4,0.1; adversarial traffic "
                                   "trains the substitute and runs JSMA once)")
    serve_parser.add_argument("--rate", type=float, default=None,
                              help="replay rate in requests/s (default: as fast "
                                   "as the service accepts them)")

    score_parser = subparsers.add_parser(
        "score", help="score one API log file and print the structured verdict")
    score_parser.add_argument("log_file", type=Path,
                              help="Table II text log, or JSON ({'api': count} "
                                   "mapping / {'api_counts': ...} object)")
    add_common(score_parser)
    add_serving_model(score_parser)

    cache_parser = subparsers.add_parser(
        "cache-info", help="list artifact-cache entries, sizes and versions")
    cache_parser.add_argument("--cache-dir", type=Path, default=None, metavar="DIR",
                              help="cache root to inspect (pass 'default' for "
                                   "$REPRO_CACHE_DIR or ~/.cache/repro-dsn2019)")
    return parser


def _emit(name: str, rendered: str, out_dir: Optional[Path]) -> None:
    print(rendered)
    print()
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
        (out_dir / f"{name}.txt").write_text(rendered + "\n", encoding="utf-8")


def _cache_from(cache_dir: Optional[Path]) -> Optional[ArtifactCache]:
    if cache_dir is None:
        return None
    return ArtifactCache() if str(cache_dir) == "default" else ArtifactCache(cache_dir)


def load_scoring_source(path: Path):
    """Read a log file into something the scoring service accepts.

    ``.json`` files may carry a plain ``{"api": count}`` mapping, an object
    with an ``api_counts`` mapping, or an object with a ``log`` string in the
    Table II text format.  Any other extension is parsed as Table II text.
    """
    text = path.read_text(encoding="utf-8")
    if path.suffix.lower() == ".json":
        data = json.loads(text)
        if isinstance(data, dict) and "api_counts" in data:
            data = data["api_counts"]
        if isinstance(data, dict) and "log" in data:
            return ApiLog.from_text(str(data["log"]), sample_id=path.stem)
        if isinstance(data, dict) and all(
                isinstance(count, (int, float)) for count in data.values()):
            return {str(api): int(count) for api, count in data.items()}
        raise ServingError(
            f"{path} must contain an api->count mapping, an 'api_counts' "
            f"object, or a 'log' text field")
    return ApiLog.from_text(text, sample_id=path.stem)


def _build_detector(defense: str, servable, context):
    """Instantiate the requested defense endpoint over ``servable``."""
    if defense == "none":
        return None
    from repro.defenses.base import ModelBackedDetector
    from repro.defenses.feature_squeezing import FeatureSqueezingDefense

    squeezed = FeatureSqueezingDefense().fit(servable.model.network,
                                             context.corpus.validation)
    if defense == "squeeze":
        return squeezed
    from repro.defenses.ensemble import EnsembleDefense

    base = ModelBackedDetector(servable.model, name="base_model")
    return EnsembleDefense(voting="average").fit([base, squeezed])


def _cmd_serve(args) -> int:
    from repro.serving import LoadGenerator, ModelRegistry, ScoringService, TrafficMix, replay

    cache = _cache_from(args.cache_dir)
    context = ExperimentContext(scale=get_profile(args.scale), seed=args.seed,
                                cache=cache, dtype=args.dtype)
    registry = ModelRegistry(cache=cache)
    servable = registry.get(args.model, context=context)
    detector = _build_detector(args.defense, servable, context)
    service = ScoringService(servable, detector=detector, threshold=args.threshold,
                             max_batch_size=args.batch_size,
                             max_delay_ms=args.max_delay_ms)
    generator = LoadGenerator(context, mix=TrafficMix.parse(args.mix), seed=args.seed)
    requests = generator.generate(args.requests)

    start = time.perf_counter()
    verdicts = replay(service, requests, rate_per_s=args.rate, seed=args.seed)
    elapsed = time.perf_counter() - start
    report = service.report(elapsed)

    flagged = sum(verdict.is_malware for verdict in verdicts)
    by_kind = {}
    for verdict in verdicts:
        kind = verdict.request_id.split("-", 1)[0]
        hits, total = by_kind.get(kind, (0, 0))
        by_kind[kind] = (hits + int(verdict.is_malware), total + 1)
    lines = [
        f"scoring service — model {servable.name} v{servable.version} "
        f"(scale {servable.scale.name}, seed {servable.seed}, dtype {servable.dtype})",
        f"endpoint: defense={service.defense_name or 'none'} "
        f"threshold={service.threshold} batch_size={service.max_batch_size} "
        f"max_delay_ms={service.max_delay_ms}",
        f"traffic: {args.requests} requests, mix {args.mix}"
        + (f", rate {args.rate:g} req/s" if args.rate else ", unpaced"),
        f"verdicts: {flagged} flagged malware / {len(verdicts)} scored "
        f"in {service.n_batches} fused batches",
    ]
    for kind in sorted(by_kind):
        hits, total = by_kind[kind]
        lines.append(f"  {kind:<8} {hits}/{total} flagged malware")
    lines.append(report.render())
    _emit("serve", "\n".join(lines), args.out)
    return 0


def _cmd_score(args) -> int:
    from repro.serving import ModelRegistry, ScoringService

    source = load_scoring_source(args.log_file)
    cache = _cache_from(args.cache_dir)
    context = ExperimentContext(scale=get_profile(args.scale), seed=args.seed,
                                cache=cache, dtype=args.dtype)
    registry = ModelRegistry(cache=cache)
    servable = registry.get(args.model, context=context)
    detector = _build_detector(args.defense, servable, context)
    service = ScoringService(servable, detector=detector, threshold=args.threshold)
    verdict = service.score(source, request_id=args.log_file.stem)
    _emit("score", json.dumps(verdict.as_dict(), indent=2, sort_keys=True), args.out)
    return 0


def _cmd_cache_info(args) -> int:
    cache = _cache_from(args.cache_dir if args.cache_dir is not None else Path("default"))
    entries = cache.entries()
    print(f"cache root: {cache.root}")
    if not entries:
        print("(no cached artifacts)")
        return 0
    print(f"{'kind':<22} {'key':<18} {'version':<10} {'size':>10} {'files':>6}  state")
    total = 0
    for entry in entries:
        total += entry.size_bytes
        state = ("ok" if entry.compatible
                 else ("incomplete" if not entry.complete else "stale-version"))
        version = entry.package_version or "unstamped"
        print(f"{entry.kind:<22} {entry.key:<18} {version:<10} "
              f"{entry.size_bytes:>10,} {entry.n_files:>6}  {state}")
    print(f"{len(entries)} entries, {total:,} bytes total")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "list":
        for experiment_id in available_experiments():
            spec = EXPERIMENTS[experiment_id]
            print(f"{experiment_id:<14} {spec.title}  [{spec.paper_section}]")
        return 0

    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "score":
        return _cmd_score(args)
    if args.command == "cache-info":
        return _cmd_cache_info(args)

    cache = _cache_from(args.cache_dir)
    context = ExperimentContext(scale=get_profile(args.scale), seed=args.seed,
                                cache=cache, dtype=args.dtype)
    if args.command == "run":
        result = EXPERIMENTS[args.experiment].runner(context)
        _emit(args.experiment, result.render(), args.out)
        return 0

    if args.command == "run-all":
        for experiment_id in available_experiments():
            print(f"== {experiment_id}: {EXPERIMENTS[experiment_id].title}")
            result = EXPERIMENTS[experiment_id].runner(context)
            _emit(experiment_id, result.render(), args.out)
        return 0

    return 2  # unreachable given required=True


if __name__ == "__main__":  # pragma: no cover - manual invocation path
    sys.exit(main())
