"""Command-line interface for running the paper's experiments.

Usage examples::

    repro-experiments list
    repro-experiments run figure3 --scale small --seed 7
    repro-experiments run table6 --scale tiny --out results/
    repro-experiments run-all --scale tiny
    repro-experiments run-all --scale small --cache-dir .repro-cache

``run`` prints the experiment's rendered table/figure to stdout and (with
``--out``) also writes it to ``<out>/<experiment>.txt``.  ``--cache-dir``
attaches an :class:`~repro.utils.artifact_cache.ArtifactCache` so the
corpus and trained models persist across invocations — a warm ``run-all``
skips straight to the attack/defense measurements.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.config import PROFILES, get_profile
from repro.experiments import ExperimentContext, available_experiments
from repro.experiments.registry import EXPERIMENTS
from repro.utils.artifact_cache import ArtifactCache


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro-experiments`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of 'Malware Evasion "
                    "Attack and Defense' (DSN 2019) on the synthetic substrate.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiments")

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--scale", choices=sorted(PROFILES), default="small",
                         help="scale profile (default: small)")
        sub.add_argument("--seed", type=int, default=0,
                         help="master seed for the experiment context")
        sub.add_argument("--out", type=Path, default=None,
                         help="directory to write rendered outputs into")
        sub.add_argument("--cache-dir", type=Path, default=None, metavar="DIR",
                         help="persist the corpus and trained models under DIR "
                              "so warm runs skip retraining (pass 'default' for "
                              "$REPRO_CACHE_DIR or ~/.cache/repro-dsn2019)")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", choices=available_experiments(),
                            help="experiment id (table1..table6, figure1..figure5, live_greybox)")
    add_common(run_parser)

    run_all_parser = subparsers.add_parser("run-all", help="run every experiment")
    add_common(run_all_parser)
    return parser


def _emit(name: str, rendered: str, out_dir: Optional[Path]) -> None:
    print(rendered)
    print()
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
        (out_dir / f"{name}.txt").write_text(rendered + "\n", encoding="utf-8")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "list":
        for experiment_id in available_experiments():
            spec = EXPERIMENTS[experiment_id]
            print(f"{experiment_id:<14} {spec.title}  [{spec.paper_section}]")
        return 0

    cache = None
    if args.cache_dir is not None:
        cache = (ArtifactCache() if str(args.cache_dir) == "default"
                 else ArtifactCache(args.cache_dir))
    context = ExperimentContext(scale=get_profile(args.scale), seed=args.seed,
                                cache=cache)
    if args.command == "run":
        result = EXPERIMENTS[args.experiment].runner(context)
        _emit(args.experiment, result.render(), args.out)
        return 0

    if args.command == "run-all":
        for experiment_id in available_experiments():
            print(f"== {experiment_id}: {EXPERIMENTS[experiment_id].title}")
            result = EXPERIMENTS[experiment_id].runner(context)
            _emit(experiment_id, result.render(), args.out)
        return 0

    return 2  # unreachable given required=True


if __name__ == "__main__":  # pragma: no cover - manual invocation path
    sys.exit(main())
