"""Security evaluation curves: detection rate vs attack strength.

Figures 3 and 4 of the paper plot the detection rate of a model (and, in the
grey-box case, of both the substitute and the target) as the attack strength
grows — either by increasing γ (more perturbed features, at fixed θ) or by
increasing θ (larger per-feature perturbation, at fixed γ).  This module
provides the sweep harness and the result containers those figures are
rendered from.

γ-sweeps default to the trajectory-replay strategy (one instrumented
full-budget run, operating points sliced from its perturbation log — see
:mod:`repro.evaluation.sweep`); θ-sweeps and replay-incapable attacks use
the per-point loop, with all points × models scored through one stacked
predict per model either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.attacks.base import Attack
from repro.attacks.constraints import PerturbationConstraints
from repro.exceptions import AttackError
from repro.nn.network import NeuralNetwork
from repro.utils.validation import check_matrix

#: The sweep grids used by the paper.
PAPER_GAMMA_GRID = tuple(np.arange(0.0, 0.0301, 0.005))      # Figure 3(a)/4(a)
PAPER_THETA_GRID = tuple(np.arange(0.0, 0.1501, 0.0125))     # Figure 3(b)/4(b)


@dataclass
class SecurityCurvePoint:
    """One operating point of a security evaluation curve."""

    theta: float
    gamma: float
    n_perturbed_features: int
    detection_rates: Dict[str, float]
    mean_l2_distance: float
    evaded_counts: Dict[str, int] = field(default_factory=dict)
    swept_parameter: str = "gamma"

    @property
    def strength(self) -> float:
        """The varying parameter's value (γ for γ-sweeps, θ for θ-sweeps)."""
        return self.gamma if self.swept_parameter == "gamma" else self.theta


@dataclass
class SecurityCurve:
    """A full sweep: one point per attack-strength value."""

    swept_parameter: str
    fixed_value: float
    points: List[SecurityCurvePoint] = field(default_factory=list)
    attack_name: str = "jsma"

    def strengths(self) -> List[float]:
        """The x-axis values."""
        return [point.strength for point in self.points]

    def detection_rates(self, model_name: str) -> List[float]:
        """The y-axis values for one model."""
        return [point.detection_rates[model_name] for point in self.points]

    def model_names(self) -> List[str]:
        """Names of the models evaluated at every point."""
        return sorted(self.points[0].detection_rates) if self.points else []

    def minimum_detection_rate(self, model_name: str) -> float:
        """The lowest detection rate reached over the sweep."""
        rates = self.detection_rates(model_name)
        if not rates:
            raise AttackError("security curve has no points")
        return float(min(rates))

    def as_rows(self) -> List[Dict[str, float]]:
        """Tabular view: one dict per operating point."""
        rows = []
        for point in self.points:
            row = {
                "theta": point.theta,
                "gamma": point.gamma,
                "n_perturbed_features": float(point.n_perturbed_features),
                "mean_l2_distance": point.mean_l2_distance,
            }
            for model_name, rate in point.detection_rates.items():
                row[f"detection_rate[{model_name}]"] = rate
            rows.append(row)
        return rows


AttackFactory = Callable[[PerturbationConstraints], Attack]

#: Execution strategies for γ-sweeps.  ``replay`` (the default) runs one
#: full-budget instrumented attack and slices its trajectory per operating
#: point; ``per_point`` re-runs the attack from scratch at every point (the
#: seed behaviour, and the only option for attacks without trajectories).
SWEEP_STRATEGIES = ("replay", "per_point")


def _sweep(attack_factory: AttackFactory, malware_features: np.ndarray,
           models: Dict[str, NeuralNetwork], theta_values: Sequence[float],
           gamma_values: Sequence[float], swept_parameter: str,
           fixed_value: float, n_features: Optional[int] = None) -> SecurityCurve:
    """Per-point sweep: one attack run per operating point, fused scoring."""
    from repro.evaluation.sweep import score_sweep_points  # lazy: avoids a cycle

    malware_features = check_matrix(malware_features, name="malware_features")
    n_features = n_features if n_features is not None else malware_features.shape[1]
    if not models:
        raise AttackError("at least one model must be evaluated")
    curve = SecurityCurve(swept_parameter=swept_parameter, fixed_value=fixed_value)

    # Crafting happens per point, but the scoring below is fused: all
    # points x models go through one stacked predict per model, and the
    # crafting model's predictions for the unmodified inputs are computed
    # once and primed into every attack instead of once per run.  The memo
    # holds (network, predictions) pairs — keeping the network referenced —
    # so a factory building fresh networks can never hit a stale entry.
    results = []
    primed: List[tuple] = []
    for theta, gamma in zip(theta_values, gamma_values):
        constraints = PerturbationConstraints(theta=float(theta), gamma=float(gamma))
        attack = attack_factory(constraints)
        curve.attack_name = attack.name
        network = getattr(attack, "network", None)
        if network is not None and hasattr(attack, "prime_original_predictions"):
            predictions = next((known_predictions
                                for known_network, known_predictions in primed
                                if known_network is network), None)
            if predictions is None:
                predictions = network.predict(malware_features)
                primed.append((network, predictions))
            attack.prime_original_predictions(malware_features, predictions)
        results.append(attack.run(malware_features))

    rates, evaded = score_sweep_points(models,
                                       [result.adversarial for result in results])
    for theta, gamma, result, point_rates, point_evaded in zip(
            theta_values, gamma_values, results, rates, evaded):
        constraints = PerturbationConstraints(theta=float(theta), gamma=float(gamma))
        curve.points.append(SecurityCurvePoint(
            theta=float(theta),
            gamma=float(gamma),
            n_perturbed_features=constraints.max_features(n_features),
            detection_rates=point_rates,
            mean_l2_distance=result.mean_l2_distance,
            evaded_counts=point_evaded,
            swept_parameter=swept_parameter,
        ))
    return curve


def gamma_sweep(attack_factory: AttackFactory, malware_features: np.ndarray,
                models: Dict[str, NeuralNetwork], theta: float,
                gamma_values: Sequence[float],
                strategy: str = "replay") -> SecurityCurve:
    """Sweep γ at fixed θ (Figures 3(a), 4(a), 4(c)).

    ``strategy="replay"`` (the default) runs the attack once at the largest
    γ with a trajectory recorder and materializes every smaller operating
    point by slicing the log — byte-identical results under float64 at
    roughly ``1/len(gamma_values)`` of the attack compute (see
    :mod:`repro.evaluation.sweep`).  Attacks that do not record
    trajectories (e.g. the random-addition control) fall back to the
    per-point path transparently; ``strategy="per_point"`` forces it.
    """
    from repro.evaluation.sweep import dispatch_gamma_sweep  # lazy: avoids a cycle

    curve, _ = dispatch_gamma_sweep(attack_factory, malware_features, models,
                                    theta=theta, gamma_values=gamma_values,
                                    strategy=strategy)
    return curve


def theta_sweep(attack_factory: AttackFactory, malware_features: np.ndarray,
                models: Dict[str, NeuralNetwork], gamma: float,
                theta_values: Sequence[float]) -> SecurityCurve:
    """Sweep θ at fixed γ (Figures 3(b), 4(b))."""
    theta_values = list(theta_values)
    return _sweep(attack_factory, malware_features, models,
                  theta_values=theta_values,
                  gamma_values=[gamma] * len(theta_values),
                  swept_parameter="theta", fixed_value=gamma)


def paper_gamma_grid(n_points: Optional[int] = None) -> List[float]:
    """The Figure 3(a) γ grid (optionally subsampled to ``n_points``)."""
    grid = list(PAPER_GAMMA_GRID)
    if n_points is None or n_points >= len(grid):
        return grid
    indices = np.linspace(0, len(grid) - 1, n_points).round().astype(int)
    return [grid[i] for i in indices]


def paper_theta_grid(n_points: Optional[int] = None) -> List[float]:
    """The Figure 3(b) θ grid (optionally subsampled to ``n_points``)."""
    grid = list(PAPER_THETA_GRID)
    if n_points is None or n_points >= len(grid):
        return grid
    indices = np.linspace(0, len(grid) - 1, n_points).round().astype(int)
    return [grid[i] for i in indices]
