"""Security evaluation curves: detection rate vs attack strength.

Figures 3 and 4 of the paper plot the detection rate of a model (and, in the
grey-box case, of both the substitute and the target) as the attack strength
grows — either by increasing γ (more perturbed features, at fixed θ) or by
increasing θ (larger per-feature perturbation, at fixed γ).  This module
provides the sweep harness and the result containers those figures are
rendered from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.attacks.base import Attack
from repro.attacks.constraints import PerturbationConstraints
from repro.exceptions import AttackError
from repro.nn.metrics import detection_rate
from repro.nn.network import NeuralNetwork
from repro.utils.validation import check_matrix

#: The sweep grids used by the paper.
PAPER_GAMMA_GRID = tuple(np.arange(0.0, 0.0301, 0.005))      # Figure 3(a)/4(a)
PAPER_THETA_GRID = tuple(np.arange(0.0, 0.1501, 0.0125))     # Figure 3(b)/4(b)


@dataclass
class SecurityCurvePoint:
    """One operating point of a security evaluation curve."""

    theta: float
    gamma: float
    n_perturbed_features: int
    detection_rates: Dict[str, float]
    mean_l2_distance: float
    evaded_counts: Dict[str, int] = field(default_factory=dict)
    swept_parameter: str = "gamma"

    @property
    def strength(self) -> float:
        """The varying parameter's value (γ for γ-sweeps, θ for θ-sweeps)."""
        return self.gamma if self.swept_parameter == "gamma" else self.theta


@dataclass
class SecurityCurve:
    """A full sweep: one point per attack-strength value."""

    swept_parameter: str
    fixed_value: float
    points: List[SecurityCurvePoint] = field(default_factory=list)
    attack_name: str = "jsma"

    def strengths(self) -> List[float]:
        """The x-axis values."""
        return [point.strength for point in self.points]

    def detection_rates(self, model_name: str) -> List[float]:
        """The y-axis values for one model."""
        return [point.detection_rates[model_name] for point in self.points]

    def model_names(self) -> List[str]:
        """Names of the models evaluated at every point."""
        return sorted(self.points[0].detection_rates) if self.points else []

    def minimum_detection_rate(self, model_name: str) -> float:
        """The lowest detection rate reached over the sweep."""
        rates = self.detection_rates(model_name)
        if not rates:
            raise AttackError("security curve has no points")
        return float(min(rates))

    def as_rows(self) -> List[Dict[str, float]]:
        """Tabular view: one dict per operating point."""
        rows = []
        for point in self.points:
            row = {
                "theta": point.theta,
                "gamma": point.gamma,
                "n_perturbed_features": float(point.n_perturbed_features),
                "mean_l2_distance": point.mean_l2_distance,
            }
            for model_name, rate in point.detection_rates.items():
                row[f"detection_rate[{model_name}]"] = rate
            rows.append(row)
        return rows


AttackFactory = Callable[[PerturbationConstraints], Attack]


def _sweep(attack_factory: AttackFactory, malware_features: np.ndarray,
           models: Dict[str, NeuralNetwork], theta_values: Sequence[float],
           gamma_values: Sequence[float], swept_parameter: str,
           fixed_value: float, n_features: Optional[int] = None) -> SecurityCurve:
    malware_features = check_matrix(malware_features, name="malware_features")
    n_features = n_features if n_features is not None else malware_features.shape[1]
    if not models:
        raise AttackError("at least one model must be evaluated")
    curve = SecurityCurve(swept_parameter=swept_parameter, fixed_value=fixed_value)
    for theta, gamma in zip(theta_values, gamma_values):
        constraints = PerturbationConstraints(theta=float(theta), gamma=float(gamma))
        attack = attack_factory(constraints)
        curve.attack_name = attack.name
        result = attack.run(malware_features)
        rates = {name: (detection_rate(model.predict(result.adversarial)))
                 for name, model in models.items()}
        evaded = {name: int(round((1.0 - rate) * result.n_samples))
                  for name, rate in rates.items()}
        curve.points.append(SecurityCurvePoint(
            theta=float(theta),
            gamma=float(gamma),
            n_perturbed_features=constraints.max_features(n_features),
            detection_rates=rates,
            mean_l2_distance=result.mean_l2_distance,
            evaded_counts=evaded,
            swept_parameter=swept_parameter,
        ))
    return curve


def gamma_sweep(attack_factory: AttackFactory, malware_features: np.ndarray,
                models: Dict[str, NeuralNetwork], theta: float,
                gamma_values: Sequence[float]) -> SecurityCurve:
    """Sweep γ at fixed θ (Figures 3(a), 4(a), 4(c))."""
    gamma_values = list(gamma_values)
    return _sweep(attack_factory, malware_features, models,
                  theta_values=[theta] * len(gamma_values),
                  gamma_values=gamma_values,
                  swept_parameter="gamma", fixed_value=theta)


def theta_sweep(attack_factory: AttackFactory, malware_features: np.ndarray,
                models: Dict[str, NeuralNetwork], gamma: float,
                theta_values: Sequence[float]) -> SecurityCurve:
    """Sweep θ at fixed γ (Figures 3(b), 4(b))."""
    theta_values = list(theta_values)
    return _sweep(attack_factory, malware_features, models,
                  theta_values=theta_values,
                  gamma_values=[gamma] * len(theta_values),
                  swept_parameter="theta", fixed_value=gamma)


def paper_gamma_grid(n_points: Optional[int] = None) -> List[float]:
    """The Figure 3(a) γ grid (optionally subsampled to ``n_points``)."""
    grid = list(PAPER_GAMMA_GRID)
    if n_points is None or n_points >= len(grid):
        return grid
    indices = np.linspace(0, len(grid) - 1, n_points).round().astype(int)
    return [grid[i] for i in indices]


def paper_theta_grid(n_points: Optional[int] = None) -> List[float]:
    """The Figure 3(b) θ grid (optionally subsampled to ``n_points``)."""
    grid = list(PAPER_THETA_GRID)
    if n_points is None or n_points >= len(grid):
        return grid
    indices = np.linspace(0, len(grid) - 1, n_points).round().astype(int)
    return [grid[i] for i in indices]
