"""Plain-text table rendering for experiment outputs.

The experiment drivers and the benchmark harness print the same rows the
paper's tables report; these helpers keep that formatting in one place.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np


def _format_cell(value) -> str:
    if value is None:
        return ""
    if isinstance(value, float) or isinstance(value, np.floating):
        if math.isnan(value):
            return "nan"
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render an ASCII table with aligned columns."""
    str_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(separator)
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_defense_table(results: Mapping[str, Mapping[str, Mapping[str, float]]],
                         title: str = "Defense testing results (Table VI)") -> str:
    """Render the Table VI structure.

    ``results`` maps ``defense name -> test set name -> {"tpr": ..., "tnr": ...}``.
    Rates that do not apply to a test set (e.g. TPR on a clean-only set) are
    expected to be ``nan``, exactly as the paper prints them.
    """
    headers = ["Defense", "Dataset", "TPR", "TNR"]
    rows: List[List[object]] = []
    for defense_name, per_dataset in results.items():
        for dataset_name, rates in per_dataset.items():
            rows.append([defense_name, dataset_name,
                         rates.get("tpr", float("nan")),
                         rates.get("tnr", float("nan"))])
    return format_table(headers, rows, title=title)


def render_security_curve(curve, title: Optional[str] = None) -> str:
    """Render a :class:`~repro.evaluation.security_curve.SecurityCurve` as text."""
    model_names = curve.model_names()
    headers = [curve.swept_parameter, "features"] + \
              [f"detection[{name}]" for name in model_names] + ["mean_l2"]
    rows = []
    for point in curve.points:
        row: List[object] = [point.strength, point.n_perturbed_features]
        row.extend(point.detection_rates[name] for name in model_names)
        row.append(point.mean_l2_distance)
        rows.append(row)
    return format_table(headers, rows, title=title)
