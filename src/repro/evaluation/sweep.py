"""Trajectory-replay sweep engine for γ security curves.

A γ-sweep at fixed θ re-runs the same greedy add-only attack with nothing
but the feature budget changed.  JSMA's trajectory is *prefix-identical*
across budgets (see :mod:`repro.attacks.trajectory`), so the per-point
recomputation the seed harness did — one complete attack per grid point —
collapses to:

1. **one** full-budget instrumented run at the largest γ of the grid;
2. each operating point materialized by slicing the recorded trajectory
   prefix (honouring per-budget early-stop semantics: the log already ends
   where a smaller-budget run would have stopped);
3. all points × models scored through **one** stacked ``predict`` per
   model, with the original-input predictions computed once and shared.

Under float64 the resulting :class:`~repro.evaluation.security_curve
.SecurityCurve` is byte-identical to the per-point path (``as_rows`` and
the rendered figure text) — the replay-parity tests and
``benchmarks/test_bench_sweep.py`` pin this, and the bench records the
wall-clock win (≈ number-of-grid-points × less attack compute).

θ-sweeps cannot share trajectories (θ changes the step content), but the
stacked-prediction scoring in :func:`score_sweep_points` is shared with the
per-point path, so they get the prediction fusion for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.attacks.base import Attack, AttackResult
from repro.attacks.constraints import PerturbationConstraints
from repro.attacks.trajectory import JsmaTrajectory, TrajectoryRecorder
from repro.config import CLASS_CLEAN
from repro.evaluation.security_curve import (
    AttackFactory,
    SecurityCurve,
    SecurityCurvePoint,
)
from repro.exceptions import AttackError
from repro.nn.metrics import detection_rate
from repro.utils.validation import check_matrix

__all__ = [
    "ReplaySweep",
    "dispatch_gamma_sweep",
    "gamma_sweep_from_trajectory",
    "replay_gamma_sweep",
    "score_sweep_points",
    "supports_replay",
]


def supports_replay(attack) -> bool:
    """Whether ``attack`` records budget-sliceable trajectories."""
    return bool(getattr(attack, "supports_trajectory", False))


def score_sweep_points(models: Dict[str, object],
                       adversarials: Sequence[np.ndarray],
                       known_predictions: Optional[Dict[str, Dict[int, np.ndarray]]] = None,
                       ) -> Tuple[List[Dict[str, float]], List[Dict[str, int]]]:
    """Detection rates and evaded counts for every (point, model) pair.

    One stacked ``predict`` per model over all points' adversarial matrices
    replaces ``points × models`` separate calls.  Evaded counts are read
    directly off the evasion mask (``prediction == clean``) — no float
    round-tripping through the rate.

    ``known_predictions`` maps ``model_name -> {point_index: predictions}``
    for points whose hard predictions were already computed elsewhere (e.g.
    the instrumented run's own closing predict covers the max-budget point);
    those points are excluded from that model's stacked forward pass.

    Returns ``(rates, evaded)``: per point, a ``{model_name: value}`` dict.
    """
    if not adversarials:
        return [], []
    known_predictions = known_predictions or {}
    rates: List[Dict[str, float]] = [{} for _ in adversarials]
    evaded: List[Dict[str, int]] = [{} for _ in adversarials]
    for name, model in models.items():
        known = known_predictions.get(name, {})
        fresh_indices = [index for index in range(len(adversarials))
                         if index not in known]
        per_point: Dict[int, np.ndarray] = dict(known)
        if fresh_indices:
            boundaries = np.cumsum([adversarials[index].shape[0]
                                    for index in fresh_indices])[:-1]
            stacked = np.vstack([adversarials[index] for index in fresh_indices])
            for index, predictions in zip(fresh_indices,
                                          np.split(model.predict(stacked),
                                                   boundaries)):
                per_point[index] = predictions
        for index in range(len(adversarials)):
            point_predictions = per_point[index]
            evasion_mask = point_predictions == CLASS_CLEAN
            rates[index][name] = detection_rate(point_predictions)
            evaded[index][name] = int(np.count_nonzero(evasion_mask))
    return rates, evaded


@dataclass
class ReplaySweep:
    """One instrumented run plus everything the γ grid derives from it.

    ``curve`` is the security curve consumers plot; the rest exposes the
    shared substrate so drivers can derive *more* views (per-point
    :class:`AttackResult`\\ s, target-side replays, robustness
    distributions) without another attack run.
    """

    curve: SecurityCurve
    trajectory: JsmaTrajectory
    attack: Attack
    original: np.ndarray
    full_result: AttackResult
    budgets: List[int]
    adversarials: List[np.ndarray]
    n_features: int

    def budget_for(self, gamma: float) -> int:
        """The feature budget an operating point at ``gamma`` maps to."""
        return self.attack.constraints.with_strength(
            gamma=float(gamma)).max_features(self.n_features)

    def adversarial_at(self, gamma: float) -> np.ndarray:
        """The adversarial matrix of the operating point at ``gamma``."""
        return self.trajectory.materialize(self.original, self.budget_for(gamma))

    def result_at(self, gamma: float) -> AttackResult:
        """A full :class:`AttackResult` for one γ, materialized by replay.

        Byte-identical (under float64) to ``attack_factory(constraints)
        .run(features)`` at that operating point: the adversarial matrix is
        the sliced trajectory, the original predictions are shared from the
        instrumented run, and only the adversarial matrix is re-predicted.
        """
        budget = self.budget_for(gamma)
        adversarial = self.trajectory.materialize(self.original, budget)
        changed = np.abs(adversarial - self.original) > 1e-12
        return AttackResult(
            original=self.original,
            adversarial=adversarial,
            original_predictions=self.full_result.original_predictions,
            adversarial_predictions=self.attack.network.predict(adversarial),
            perturbed_features=changed.sum(axis=1).astype(np.int64),
            constraints=self.attack.constraints.with_strength(gamma=float(gamma)),
            attack_name=self.attack.name,
            iterations=self.trajectory.perturbation_counts(budget),
        )


def replay_gamma_sweep(attack_factory: AttackFactory,
                       malware_features: np.ndarray,
                       models: Dict[str, object], theta: float,
                       gamma_values: Sequence[float],
                       n_features: Optional[int] = None,
                       attack: Optional[Attack] = None) -> ReplaySweep:
    """γ-sweep via one instrumented run (the replay engine's full view).

    Parameters mirror :func:`repro.evaluation.security_curve.gamma_sweep`;
    ``attack`` optionally supplies an already-built full-budget attack (the
    probe the strategy switch constructed) so the factory is not invoked
    twice.  Raises :class:`AttackError` when the attack does not record
    trajectories — callers wanting a transparent fallback should check
    :func:`supports_replay` first.
    """
    malware_features = check_matrix(malware_features, name="malware_features")
    n_features = n_features if n_features is not None else malware_features.shape[1]
    if not models:
        raise AttackError("at least one model must be evaluated")
    gamma_values = [float(gamma) for gamma in gamma_values]
    if not gamma_values:
        raise AttackError("gamma_values must contain at least one point")

    full_constraints = PerturbationConstraints(theta=float(theta),
                                               gamma=max(gamma_values))
    if attack is None:
        attack = attack_factory(full_constraints)
    if not supports_replay(attack):
        raise AttackError(
            f"attack {getattr(attack, 'name', attack)!r} does not record "
            f"trajectories; use strategy='per_point'")

    recorder = TrajectoryRecorder()
    full_result = attack.run(malware_features, recorder=recorder)
    trajectory = recorder.trajectory
    original = full_result.original

    # max_features only depends on γ, but go through the attack's own
    # constraints so factories that override θ (e.g. the binary grey-box
    # substitute crafting at θ=1.0) keep consistent semantics.
    budgets = [attack.constraints.with_strength(gamma=gamma)
               .max_features(n_features) for gamma in gamma_values]
    adversarials = trajectory.materialize_grid(original, budgets)
    # Max-budget points are byte-identical to the instrumented run's final
    # matrix, whose crafting-model predictions _package already computed —
    # feed them back instead of re-predicting those rows.
    known = {name: {index: full_result.adversarial_predictions
                    for index, budget in enumerate(budgets)
                    if budget == trajectory.budget}
             for name, model in models.items()
             if model is getattr(attack, "network", None)}
    rates, evaded = score_sweep_points(models, adversarials,
                                       known_predictions=known)

    curve = SecurityCurve(swept_parameter="gamma", fixed_value=float(theta),
                          attack_name=attack.name)
    for gamma, budget, adversarial, point_rates, point_evaded in zip(
            gamma_values, budgets, adversarials, rates, evaded):
        curve.points.append(SecurityCurvePoint(
            theta=float(theta),
            gamma=float(gamma),
            n_perturbed_features=budget,
            detection_rates=point_rates,
            mean_l2_distance=float(np.mean(
                np.linalg.norm(adversarial - original, axis=1))),
            evaded_counts=point_evaded,
            swept_parameter="gamma",
        ))
    return ReplaySweep(curve=curve, trajectory=trajectory, attack=attack,
                       original=original, full_result=full_result,
                       budgets=budgets, adversarials=adversarials,
                       n_features=n_features)


def dispatch_gamma_sweep(attack_factory: AttackFactory,
                         malware_features: np.ndarray,
                         models: Dict[str, object], theta: float,
                         gamma_values: Sequence[float],
                         strategy: str = "replay",
                         ) -> Tuple[SecurityCurve, Optional[ReplaySweep]]:
    """Run a γ-sweep under ``strategy``; the one replay/per-point decision.

    Returns ``(curve, replay)`` where ``replay`` is the
    :class:`ReplaySweep` when the replay engine ran (strategy ``"replay"``
    and the attack records trajectories) and ``None`` when the per-point
    path did.  Both :func:`repro.evaluation.security_curve.gamma_sweep`
    and the scenario runner route through here so the probe construction
    and fallback rules cannot diverge.
    """
    from repro.evaluation.security_curve import SWEEP_STRATEGIES, _sweep

    if strategy not in SWEEP_STRATEGIES:
        raise AttackError(
            f"strategy must be one of {SWEEP_STRATEGIES}, got {strategy!r}")
    gamma_values = [float(gamma) for gamma in gamma_values]
    if strategy == "replay" and gamma_values:
        probe = attack_factory(PerturbationConstraints(theta=float(theta),
                                                       gamma=max(gamma_values)))
        if supports_replay(probe):
            replay = replay_gamma_sweep(attack_factory, malware_features,
                                        models, theta=theta,
                                        gamma_values=gamma_values,
                                        attack=probe)
            return replay.curve, replay
    curve = _sweep(attack_factory, malware_features, models,
                   theta_values=[float(theta)] * len(gamma_values),
                   gamma_values=gamma_values,
                   swept_parameter="gamma", fixed_value=float(theta))
    return curve, None


def gamma_sweep_from_trajectory(attack_factory: AttackFactory,
                                malware_features: np.ndarray,
                                models: Dict[str, object], theta: float,
                                gamma_values: Sequence[float],
                                n_features: Optional[int] = None) -> SecurityCurve:
    """The replayed γ security curve (curve-only view of the engine).

    One full-budget instrumented attack run; every operating point is a
    trajectory-prefix slice, scored through one stacked predict per model.
    """
    return replay_gamma_sweep(attack_factory, malware_features, models,
                              theta=theta, gamma_values=gamma_values,
                              n_features=n_features).curve
