"""Evaluation metrics and harnesses (Section II-D).

* :mod:`security_curve` — detection rate as a function of attack strength
  (the x/y axes of Figures 3 and 4), including the per-point sweep harness;
* :mod:`sweep` — the trajectory-replay sweep engine: one instrumented
  attack run per γ security curve, operating points materialized by
  slicing the recorded trajectory;
* :mod:`distances` — L2-distance analysis between malware, clean and
  adversarial example populations (Figure 5);
* :mod:`reports` — plain-text table rendering used by the experiment
  drivers and the benchmark harness (Tables I, IV, V, VI).
"""

from repro.evaluation.distances import DistanceReport, l2_distance_report, mean_pairwise_l2, paired_l2
from repro.evaluation.reports import format_table, render_defense_table
from repro.evaluation.robustness import (
    RobustnessReport,
    compare_robustness,
    minimal_evasion_budget,
    robustness_from_trajectory,
)
from repro.evaluation.transfer_matrix import TransferMatrix, transfer_matrix
from repro.evaluation.security_curve import (
    SecurityCurve,
    SecurityCurvePoint,
    gamma_sweep,
    theta_sweep,
)
from repro.evaluation.sweep import (
    ReplaySweep,
    dispatch_gamma_sweep,
    gamma_sweep_from_trajectory,
    replay_gamma_sweep,
    score_sweep_points,
    supports_replay,
)

__all__ = [
    "SecurityCurve",
    "SecurityCurvePoint",
    "gamma_sweep",
    "theta_sweep",
    "ReplaySweep",
    "dispatch_gamma_sweep",
    "gamma_sweep_from_trajectory",
    "replay_gamma_sweep",
    "score_sweep_points",
    "supports_replay",
    "robustness_from_trajectory",
    "DistanceReport",
    "paired_l2",
    "mean_pairwise_l2",
    "l2_distance_report",
    "format_table",
    "render_defense_table",
    "RobustnessReport",
    "minimal_evasion_budget",
    "compare_robustness",
    "TransferMatrix",
    "transfer_matrix",
]
