"""Cross-model transferability matrix.

Section II-B-2 of the paper attributes the grey-box/black-box feasibility to
the transferability of adversarial examples between models.  This module
measures that property directly: for a set of models, craft JSMA adversarial
examples on each one ("source") and evaluate the detection rate of every
model ("victim") on them.  The diagonal is the white-box case; off-diagonal
entries quantify transfer between model pairs (e.g. substitute → target).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.attacks.constraints import PerturbationConstraints
from repro.attacks.jsma import JsmaAttack
from repro.evaluation.reports import format_table
from repro.exceptions import AttackError
from repro.nn.metrics import detection_rate
from repro.nn.network import NeuralNetwork
from repro.utils.validation import check_matrix


@dataclass
class TransferMatrix:
    """Detection rates indexed by (crafting model, evaluating model)."""

    model_names: List[str]
    baseline_detection: Dict[str, float]
    detection: Dict[str, Dict[str, float]]
    constraints: PerturbationConstraints

    def rate(self, source: str, victim: str) -> float:
        """Victim's detection rate on examples crafted against ``source``."""
        return self.detection[source][victim]

    def transfer_rate(self, source: str, victim: str) -> float:
        """1 - victim detection rate on examples crafted against ``source``."""
        return 1.0 - self.rate(source, victim)

    def whitebox_rate(self, model: str) -> float:
        """The diagonal entry for ``model`` (attack crafted on itself)."""
        return self.rate(model, model)

    def transfer_is_weaker_than_whitebox(self, source: str, victim: str,
                                         slack: float = 0.05) -> bool:
        """Whether the transferred attack detects no worse than the victim's own white-box attack."""
        return self.rate(source, victim) >= self.whitebox_rate(victim) - slack

    def rows(self) -> List[List[object]]:
        """One row per crafting model, one column per victim model."""
        rows = []
        for source in self.model_names:
            row: List[object] = [source]
            row.extend(self.detection[source][victim] for victim in self.model_names)
            rows.append(row)
        return rows

    def render(self) -> str:
        """ASCII rendering of the matrix (plus the no-attack baselines)."""
        headers = ["crafted on \\ evaluated on"] + list(self.model_names)
        table = format_table(headers, self.rows(),
                             title=f"Transferability matrix "
                                   f"(theta={self.constraints.theta}, "
                                   f"gamma={self.constraints.gamma})")
        baseline = ", ".join(f"{name}={rate:.3f}"
                             for name, rate in self.baseline_detection.items())
        return f"{table}\nno-attack baseline detection: {baseline}"


def transfer_matrix(models: Mapping[str, NeuralNetwork], malware_features: np.ndarray,
                    constraints: Optional[PerturbationConstraints] = None,
                    early_stop: bool = False) -> TransferMatrix:
    """Compute the full crafting-model × victim-model detection matrix.

    Parameters
    ----------
    models:
        Named models sharing one feature space (e.g. ``{"target": ...,
        "substitute": ...}``).
    malware_features:
        Malware rows to attack.
    constraints:
        Attack budget (defaults to the paper's θ=0.1, γ=0.025).
    early_stop:
        Whether crafting stops once the *crafting* model is evaded; the
        default (False) spends the full budget, which is the configuration
        that transfers.
    """
    if len(models) < 1:
        raise AttackError("transfer_matrix needs at least one model")
    constraints = constraints if constraints is not None else PerturbationConstraints()
    names = list(models)
    first_dim = models[names[0]].input_dim
    features = check_matrix(malware_features, name="malware_features", n_features=first_dim)

    baseline = {name: detection_rate(model.predict(features))
                for name, model in models.items()}
    detection: Dict[str, Dict[str, float]] = {}
    for source_name, source_model in models.items():
        attack = JsmaAttack(source_model, constraints=constraints, early_stop=early_stop)
        crafted = attack.run(features)
        detection[source_name] = {
            victim_name: detection_rate(victim_model.predict(crafted.adversarial))
            for victim_name, victim_model in models.items()
        }
    return TransferMatrix(model_names=names, baseline_detection=baseline,
                          detection=detection, constraints=constraints)
