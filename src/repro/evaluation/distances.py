"""L2-distance analysis across the malware / clean / adversarial populations.

Figure 5 of the paper compares three distances as the attack strength grows:

1. malware ↔ its adversarial examples (a *paired* distance),
2. malware ↔ clean samples (a population distance),
3. clean ↔ adversarial examples (a population distance),

and observes that (1) < (2) < (3): adversarial examples sit in a blind spot
far from the clean population rather than on the decision boundary — the
insight that motivates the defenses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import ShapeError
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_matrix


def paired_l2(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise L2 distances between two aligned matrices."""
    a = check_matrix(a, name="a")
    b = check_matrix(b, name="b", n_features=a.shape[1])
    if a.shape[0] != b.shape[0]:
        raise ShapeError("paired_l2 requires matrices with the same number of rows")
    return np.linalg.norm(a - b, axis=1)


def mean_pairwise_l2(a: np.ndarray, b: np.ndarray, max_pairs: int = 200_000,
                     random_state: RandomState = 0) -> float:
    """Mean L2 distance over (sub-sampled) cross pairs of two populations.

    The full cross-product can be large at paper scale, so at most
    ``max_pairs`` random pairs are evaluated; the estimate is unbiased.
    """
    a = check_matrix(a, name="a")
    b = check_matrix(b, name="b", n_features=a.shape[1])
    n_pairs = a.shape[0] * b.shape[0]
    rng = as_rng(random_state)
    if n_pairs <= max_pairs:
        # Exact computation via the expanded norm identity.
        a_sq = np.sum(a ** 2, axis=1)[:, None]
        b_sq = np.sum(b ** 2, axis=1)[None, :]
        sq = np.maximum(a_sq + b_sq - 2.0 * (a @ b.T), 0.0)
        return float(np.sqrt(sq).mean())
    rows = rng.integers(0, a.shape[0], size=max_pairs)
    cols = rng.integers(0, b.shape[0], size=max_pairs)
    return float(np.linalg.norm(a[rows] - b[cols], axis=1).mean())


@dataclass
class DistanceReport:
    """The three Figure 5 distances at one attack-strength point."""

    theta: float
    gamma: float
    malware_to_adversarial: float
    malware_to_clean: float
    clean_to_adversarial: float

    def ordering_holds(self) -> bool:
        """Whether the paper's ordering (1) <= (2) <= (3) holds at this point."""
        return (self.malware_to_adversarial <= self.malware_to_clean
                <= self.clean_to_adversarial)

    def as_dict(self) -> Dict[str, float]:
        """Dictionary view for table rendering."""
        return {
            "theta": self.theta,
            "gamma": self.gamma,
            "malware_to_adversarial": self.malware_to_adversarial,
            "malware_to_clean": self.malware_to_clean,
            "clean_to_adversarial": self.clean_to_adversarial,
        }


def l2_distance_report(malware: np.ndarray, adversarial: np.ndarray,
                       clean: np.ndarray, theta: float, gamma: float,
                       max_pairs: int = 200_000,
                       random_state: RandomState = 0) -> DistanceReport:
    """Compute the Figure 5 distances for one attack-strength point."""
    return DistanceReport(
        theta=float(theta),
        gamma=float(gamma),
        malware_to_adversarial=float(paired_l2(malware, adversarial).mean()),
        malware_to_clean=mean_pairwise_l2(malware, clean, max_pairs=max_pairs,
                                          random_state=random_state),
        clean_to_adversarial=mean_pairwise_l2(clean, adversarial, max_pairs=max_pairs,
                                              random_state=random_state),
    )
