"""Empirical robustness analysis: minimal evasion budget per sample.

The security-evaluation curves of Figures 3 and 4 aggregate detection rates
over a grid of attack strengths.  A complementary, per-sample view — useful
when comparing defended models — is the *minimal budget* an attacker needs to
evade the detector for each malware sample: the smallest number of added API
features (at a fixed θ) for which JSMA flips the verdict.  This module
computes that distribution and summarises it, which also yields the paper's
"adding one API call can bypass the detector" observation as the distribution's
lower tail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.attacks.base import AttackResult
from repro.attacks.constraints import PerturbationConstraints
from repro.attacks.jsma import JsmaAttack
from repro.attacks.trajectory import JsmaTrajectory, TrajectoryRecorder
from repro.config import CLASS_CLEAN
from repro.exceptions import AttackError
from repro.nn.network import NeuralNetwork
from repro.utils.validation import check_matrix


@dataclass
class RobustnessReport:
    """Distribution of the minimal number of added features needed to evade.

    ``minimal_features[i]`` is the smallest feature budget that evades the
    model for sample ``i``, or ``-1`` when the sample still evades nothing at
    ``max_features`` (robust within the explored budget).
    """

    theta: float
    max_features: int
    minimal_features: np.ndarray

    @property
    def n_samples(self) -> int:
        """Number of analysed malware samples."""
        return int(self.minimal_features.shape[0])

    @property
    def evadable_fraction(self) -> float:
        """Fraction of samples evadable within the explored budget."""
        return float(np.mean(self.minimal_features >= 0))

    def fraction_evadable_within(self, budget: int) -> float:
        """Fraction of samples evadable with at most ``budget`` added features."""
        mask = (self.minimal_features >= 0) & (self.minimal_features <= budget)
        return float(np.mean(mask))

    def median_budget(self) -> float:
        """Median minimal budget over the evadable samples (nan if none)."""
        evadable = self.minimal_features[self.minimal_features >= 0]
        if evadable.size == 0:
            return float("nan")
        return float(np.median(evadable))

    def histogram(self) -> Dict[int, int]:
        """``{budget: count}`` over evadable samples (robust samples excluded)."""
        evadable = self.minimal_features[self.minimal_features >= 0]
        values, counts = np.unique(evadable, return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}

    def summary(self) -> Dict[str, float]:
        """Compact numeric summary."""
        return {
            "theta": self.theta,
            "max_features": float(self.max_features),
            "n_samples": float(self.n_samples),
            "evadable_fraction": self.evadable_fraction,
            "median_budget": self.median_budget(),
            "evadable_with_1_feature": self.fraction_evadable_within(1),
            "evadable_with_2_features": self.fraction_evadable_within(2),
        }


def robustness_from_trajectory(trajectory: JsmaTrajectory, result: AttackResult,
                               max_features: Optional[int] = None,
                               theta: Optional[float] = None) -> RobustnessReport:
    """The minimal-budget distribution as a view over a recorded run.

    ``trajectory``/``result`` come from one instrumented early-stop JSMA
    run.  With ``max_features`` at the recorded budget (the default) the
    view reads straight off the final result: a sample's minimal budget is
    the number of features the run perturbed before it evaded.

    A *smaller* ``max_features`` derives the truncated distribution without
    re-attacking: a sample first observed evading after ``k`` perturbations
    has minimal budget ``k`` for every explored budget ``>= k``; a sample
    that stopped short of the truncation point (infeasible, or evaded only
    on its final state) keeps its result-based verdict.  Truncation is only
    exact for classic single-feature steps with early stopping — anything
    else raises.
    """
    budget = trajectory.budget if max_features is None else int(max_features)
    if budget < 1:
        raise AttackError(f"max_features must be >= 1, got {budget}")
    if budget > trajectory.budget and trajectory.budget < trajectory.n_features:
        # A budget beyond the recorded one is only meaningful when the run
        # already explored the entire feature space (γ = 1): then larger
        # nominal budgets change nothing.  Otherwise the data is missing.
        raise AttackError(
            f"trajectory explored budgets up to {trajectory.budget}; cannot "
            f"derive the distribution at {budget}")
    evaded = result.adversarial_predictions == CLASS_CLEAN
    minimal = np.where(evaded, result.perturbed_features, -1).astype(np.int64)
    if budget < trajectory.budget:
        if not trajectory.early_stop or trajectory.features_per_step != 1:
            raise AttackError(
                "truncated robustness views require an early-stop trajectory "
                "with features_per_step=1")
        counts = trajectory.perturbation_counts()
        first_evaded = trajectory.first_evaded_at
        # Within the truncated budget a sample is evadable iff it was first
        # observed evading after <= budget perturbations, or it ran out of
        # feasible features / evaded on its final state at <= budget.
        observed = (first_evaded >= 0) & (first_evaded <= budget)
        stopped_short = (first_evaded < 0) & (counts <= budget) & evaded
        minimal = np.where(observed, first_evaded,
                           np.where(stopped_short, counts, -1)).astype(np.int64)
    return RobustnessReport(
        theta=float(theta if theta is not None else trajectory.theta),
        max_features=int(budget), minimal_features=minimal)


def minimal_evasion_budget(network: NeuralNetwork, malware_features: np.ndarray,
                           theta: float = 0.1, max_features: int = 30,
                           use_saliency_map: bool = True) -> RobustnessReport:
    """Compute the per-sample minimal evasion budget under add-only JSMA.

    Runs a single full-budget *instrumented* JSMA pass (up to
    ``max_features`` added features, stopping each sample as soon as it
    evades) and reads the distribution off the recorded trajectory — the
    same view the γ-sweep replay engine shares when a scenario asks for a
    sweep and a robustness distribution together.

    Parameters
    ----------
    network:
        The (possibly defended) detector under analysis.
    malware_features:
        Malware rows in the detector's feature space.
    theta:
        Per-feature perturbation magnitude.
    max_features:
        Largest budget to explore.
    """
    if max_features < 1:
        raise AttackError(f"max_features must be >= 1, got {max_features}")
    features = check_matrix(malware_features, name="malware_features",
                            n_features=network.input_dim)
    gamma = min(1.0, max_features / features.shape[1])
    constraints = PerturbationConstraints(theta=theta, gamma=gamma)
    attack = JsmaAttack(network, constraints=constraints,
                        use_saliency_map=use_saliency_map, early_stop=True)
    recorder = TrajectoryRecorder()
    result = attack.run(features, recorder=recorder)
    return robustness_from_trajectory(recorder.trajectory, result,
                                      max_features=int(max_features),
                                      theta=float(theta))


def compare_robustness(models: Dict[str, NeuralNetwork], malware_features: np.ndarray,
                       theta: float = 0.1, max_features: int = 30) -> List[Dict[str, float]]:
    """Minimal-budget summaries for several models on the same malware batch.

    Returns one summary row per model (ordered as given), each tagged with the
    model name — the comparison table used by the robustness ablation bench.
    """
    rows: List[Dict[str, float]] = []
    for name, network in models.items():
        report = minimal_evasion_budget(network, malware_features, theta=theta,
                                        max_features=max_features)
        row: Dict[str, float] = {"model": name}
        row.update(report.summary())
        rows.append(row)
    return rows
