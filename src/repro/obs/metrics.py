"""In-process metrics registry: counters, gauges and summary histograms.

The registry is the *aggregating* half of the instrumentation core (spans
are the *timing* half, see :mod:`repro.obs.trace`).  Every metric is named
and created on first use, so instrumented sites never need registration
boilerplate::

    metrics.counter("serve.sheds").inc()
    metrics.gauge("batcher.queue_depth").set(7)
    metrics.histogram("cache.build_seconds").observe(12.3)

Histograms keep O(1) summary state (count / sum / min / max), not samples —
a minutes-long soak observes millions of values and the registry must not
grow with them.  Full distributions belong in the analytics store or a
streaming :class:`~repro.serving.stats.LatencyTracker`.

Snapshots are plain nested dicts, and :meth:`MetricsRegistry.merge_snapshot`
folds one registry's snapshot into another associatively — that is how a
:class:`~repro.parallel.fleet.WorkerFleet` dispatcher aggregates the
registries its worker processes ship back over the result queue.
"""

from __future__ import annotations

import math
from time import monotonic as _monotonic
from typing import Dict, Mapping

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0: counters only go up)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease "
                             f"(inc {amount})")
        self.value += amount


class Gauge:
    """A point-in-time level (most *recent* write wins).

    Every :meth:`set` records a monotonic ``stamp`` alongside the value.
    Within one process "last write" and "greatest stamp" coincide; across
    processes the stamp is what makes merging deterministic —
    :meth:`MetricsRegistry.merge_snapshot` keeps the value with the
    greatest ``(stamp, value)`` pair, which is associative and commutative,
    so folding per-worker snapshots in any arrival order yields the same
    "last" (``time.monotonic`` is CLOCK_MONOTONIC on Linux, comparable
    across processes on one machine).  A gauge never set keeps
    ``stamp=-inf`` so any real write beats it.
    """

    __slots__ = ("name", "value", "max_value", "stamp")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.max_value = 0.0
        self.stamp = -math.inf

    def set(self, value: float) -> None:
        self.value = float(value)
        self.stamp = _monotonic()
        if self.value > self.max_value:
            self.max_value = self.value


class Histogram:
    """O(1) summary of an observed distribution (count/sum/min/max)."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Mean of the observations (0.0 before the first one)."""
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Named metrics, created on first use.

    Names are dot-separated paths (``serve.sheds``, ``jsma.steps``); the
    same name always resolves to the same metric object, and asking for an
    existing name with a *different* metric kind is an error — a counter
    silently shadowing a gauge would corrupt both.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _check_unique(self, name: str, kind: str) -> None:
        owners = {"counter": self._counters, "gauge": self._gauges,
                  "histogram": self._histograms}
        for other_kind, table in owners.items():
            if other_kind != kind and name in table:
                raise ValueError(
                    f"metric {name!r} already registered as a {other_kind}, "
                    f"cannot reuse it as a {kind}")

    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created on first use)."""
        metric = self._counters.get(name)
        if metric is None:
            self._check_unique(name, "counter")
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (created on first use)."""
        metric = self._gauges.get(name)
        if metric is None:
            self._check_unique(name, "gauge")
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        """The histogram named ``name`` (created on first use)."""
        metric = self._histograms.get(name)
        if metric is None:
            self._check_unique(name, "histogram")
            metric = self._histograms[name] = Histogram(name)
        return metric

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Plain-dict view of every metric (queue transport / ingestion)."""
        return {
            "counters": {name: counter.value
                         for name, counter in sorted(self._counters.items())},
            "gauges": {name: {"value": gauge.value, "max": gauge.max_value,
                              "stamp": gauge.stamp}
                       for name, gauge in sorted(self._gauges.items())},
            "histograms": {
                name: {"count": hist.count, "sum": hist.total,
                       "min": (hist.min if hist.count else 0.0),
                       "max": (hist.max if hist.count else 0.0),
                       "mean": hist.mean}
                for name, hist in sorted(self._histograms.items())},
        }

    def merge_snapshot(self, snapshot: Mapping[str, Mapping[str, object]]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and histogram counts/sums add.  A gauge's ``max`` keeps
        the maximum, and its "last" value goes to the greatest
        ``(stamp, value)`` pair — both associative and commutative folds,
        so merging per-worker snapshots gives the same result in any
        arrival order.  Snapshots predating gauge stamps merge with
        ``stamp=-inf`` (value breaks the tie), preserving the old
        max-value behaviour among themselves while never overriding a
        genuinely stamped write.
        """
        for name, value in (snapshot.get("counters") or {}).items():
            self.counter(name).inc(float(value))
        for name, payload in (snapshot.get("gauges") or {}).items():
            gauge = self.gauge(name)
            peak = float(payload["max"])
            if peak > gauge.max_value:
                gauge.max_value = peak
            stamp = float(payload.get("stamp", -math.inf))
            if (stamp, float(payload["value"])) > (gauge.stamp, gauge.value):
                gauge.value = float(payload["value"])
                gauge.stamp = stamp
        for name, payload in (snapshot.get("histograms") or {}).items():
            hist = self.histogram(name)
            count = int(payload["count"])
            if count == 0:
                continue
            hist.count += count
            hist.total += float(payload["sum"])
            hist.min = min(hist.min, float(payload["min"]))
            hist.max = max(hist.max, float(payload["max"]))

    def empty(self) -> bool:
        """True when no metric was ever touched."""
        return not (self._counters or self._gauges or self._histograms)
