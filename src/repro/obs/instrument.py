"""The instrumentation facade and the ambient-instrumentation context.

:class:`Instrumentation` bundles the three observability primitives — a
:class:`~repro.obs.metrics.MetricsRegistry`, a
:class:`~repro.obs.trace.Tracer` and an optional
:class:`~repro.obs.events.EventSink` — behind one object the serving and
parallel layers take as an explicit keyword argument.

Deep library code (the JSMA step loop, the artifact cache) cannot
reasonably thread that argument through every constructor, so the module
also provides an *ambient* instrumentation slot::

    obs = Instrumentation(sink=ListSink())
    with instrumented(obs):
        attack.run(features)          # jsma.* counters land in obs

Hot paths read the slot with :func:`current` — one module-global load —
and do nothing when it is ``None``, so uninstrumented runs pay a single
``is None`` check per *batch-level* operation (never per sample).  That is
the discipline behind the ≤5% serving-overhead budget: instrumentation
points sit at seams that already do O(batch) work.

The slot is process-local and last-wins (no thread-local machinery — the
compute paths here are single-threaded per process, multi-*process* by
design); fleet and grid workers arm their own instrumentation inside the
child process.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, Optional

from repro.obs.events import EventSink, ListSink, ObsEvent
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, TraceContext, Tracer

__all__ = ["Instrumentation", "current", "instrumented"]


class Instrumentation:
    """Metrics + tracing + event sink behind one convenience facade.

    Parameters
    ----------
    sink:
        Optional event sink receiving every span/counter/histogram event
        (gauge sets stay metrics-only; see :meth:`gauge`).  ``None`` keeps
        aggregation (the metrics registry) but emits no event stream — the
        cheapest useful configuration.
    clock:
        Monotonic time source for spans (injectable for tests).
    tags:
        Base tags stamped onto every emitted event and span (e.g.
        ``{"worker": 3}`` so a fleet dispatcher can attribute forwarded
        events to their replica).  Call-site tags win on key collision.
    namespace:
        Span-id namespace for the tracer (dispatcher 0, fleet replica
        ``worker_id + 1``) so spans stitched across processes never share
        an id.
    """

    def __init__(self, sink: Optional[EventSink] = None,
                 clock: Callable[[], float] = time.perf_counter,
                 tags: Optional[Dict[str, object]] = None,
                 namespace: int = 0) -> None:
        self.metrics = MetricsRegistry()
        self.sink = sink
        self.tags: Dict[str, object] = dict(tags or {})
        self.tracer = Tracer(metrics=self.metrics, sink=sink, clock=clock,
                             namespace=namespace)

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def span(self, name: str, **tags):
        """Open a nested timed span (context manager)."""
        if self.tags:
            tags = {**self.tags, **tags}
        return self.tracer.span(name, **tags)

    def _emit(self, kind: str, name: str, value: float, tags: dict) -> None:
        if self.sink is not None:
            if self.tags:
                tags = {**self.tags, **tags}
            self.sink.emit(ObsEvent(kind=kind, name=name, value=float(value),
                                    parent_id=self.tracer.active_id,
                                    tags=tags))

    def record_span(self, name: str, started: float, ended: float,
                    trace: Optional[TraceContext] = None,
                    span_id: Optional[int] = None, **tags) -> Span:
        """Record an explicitly-timed span, parented by ``trace`` if given.

        The per-request tracing primitive: the serving layer stamps clock
        values where a request changes hands (dispatcher enqueue, replica
        pickup, flush start/end) and turns each hop into a span here.
        With a :class:`~repro.obs.trace.TraceContext` the span joins that
        request's distributed tree; without one it parents on the
        innermost open local span, like any other span.
        """
        if self.tags:
            tags = {**self.tags, **tags}
        if trace is not None:
            return self.tracer.record_span(
                name, started, ended, trace_id=trace.trace_id,
                parent_id=trace.parent_span_id, span_id=span_id, **tags)
        return self.tracer.record_span(name, started, ended,
                                       span_id=span_id, **tags)

    def count(self, name: str, amount: float = 1.0, **tags) -> None:
        """Increment the counter ``name`` (and emit a counter event)."""
        self.metrics.counter(name).inc(amount)
        self._emit("counter", name, amount, tags)

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` (metrics only — no event).

        Gauges are *sampled state* (queue depth at flush boundaries);
        emitting an event per sample would tie event construction to the
        sampling rate and blow the overhead budget.  The registry keeps
        last and max, which is what reports read; counters, histograms
        and spans — all batch-level — still emit events.
        """
        self.metrics.gauge(name).set(value)

    def observe(self, name: str, value: float, **tags) -> None:
        """Record one histogram observation (and emit a histogram event)."""
        self.metrics.histogram(name).observe(value)
        self._emit("histogram", name, value, tags)

    def alert(self, name: str, value: float, **tags) -> None:
        """Record one alert firing (counted, and emitted as an event).

        Alerts are rare by construction (an SLO breach transition), so
        unlike gauges they always emit an event — an alert that only
        bumped a counter could not be attributed or replayed later.
        """
        self.metrics.counter(f"alert.{name}").inc()
        self._emit("alert", name, value, tags)

    # ------------------------------------------------------------------ #
    # Aggregation / transport
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, object]:
        """Plain-dict state: metrics plus any buffered sink events.

        This is the payload a fleet worker ships to its dispatcher over
        the result queue; :meth:`merge_snapshot` is the inverse fold.
        """
        payload: Dict[str, object] = {"metrics": self.metrics.snapshot(),
                                      "n_spans": self.tracer.n_spans}
        if isinstance(self.sink, ListSink):
            payload["events"] = self.sink.as_dicts()
            payload["n_dropped_events"] = self.sink.n_dropped
        return payload

    def merge_snapshot(self, payload: Optional[Dict[str, object]]) -> None:
        """Fold a worker's :meth:`snapshot` into this instrumentation.

        Forwarded events are replayed into this instance's sink (when both
        sides have one), so the dispatcher's event stream covers the whole
        fleet.
        """
        if not payload:
            return
        self.metrics.merge_snapshot(payload.get("metrics") or {})
        self.tracer.n_spans += int(payload.get("n_spans", 0))
        if self.sink is not None:
            for event in payload.get("events") or []:
                self.sink.emit(ObsEvent.from_dict(event))


#: The ambient instrumentation slot (process-local, last-wins).
_CURRENT: Optional[Instrumentation] = None


def current() -> Optional[Instrumentation]:
    """The ambient :class:`Instrumentation`, or ``None`` when disabled."""
    return _CURRENT


@contextmanager
def instrumented(obs: Optional[Instrumentation]):
    """Make ``obs`` the ambient instrumentation for the ``with`` block.

    Nests: the previous slot value is restored on exit, so a scoped
    instrumentation (one CLI command, one benchmark measurement) cannot
    leak into the caller.  ``None`` explicitly disables instrumentation
    inside the block.
    """
    global _CURRENT
    previous = _CURRENT
    _CURRENT = obs
    try:
        yield obs
    finally:
        _CURRENT = previous
