"""Declarative SLOs with multi-window burn-rate alerting.

An :class:`SLOSpec` states an objective over scoring outcomes — "99% of
verdicts within 25 ms", "99% of flushes meet their deadline" — and an
:class:`SLOMonitor` evaluates it over *two* sliding windows at once:

* a **fast** window (default 5 s) that reacts quickly to a live incident,
* a **slow** window (default 60 s) that confirms the burn is sustained.

The alert condition is the classic multi-window burn-rate rule: fire only
when *both* windows burn error budget faster than their thresholds.  Burn
rate is ``error_rate / (1 - objective)`` — 1.0 means "exactly consuming
the budget", 14.4 (the default fast threshold) means "a month's budget in
two days".  The two-window AND keeps alerts both fast *and* unflappable:
the fast window alone would page on a blip, the slow window alone would
page late.

Firing is edge-triggered: one :class:`~repro.obs.events.ObsEvent` of kind
``alert`` per breach transition, via ``Instrumentation.alert``.  While a
spec is breached the monitor reports it *active*, and the serving layer
can arm degradation on that state — ``should_shed`` / ``wants_fallback``
plug into :class:`~repro.serving.service.ScoringService` so load shedding
reacts to measured burn, not only breaker trips (see the service's
``slo`` parameter).

Windows are rings of per-bucket good/bad counts — O(1) memory and O(1)
amortised per observation regardless of request rate, following the same
"never grow with the soak" discipline as the metrics histograms.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.obs.instrument import Instrumentation

__all__ = ["SLOSpec", "SLOStatus", "SLOMonitor", "BREACH_ACTIONS"]

#: What an active breach may arm: nothing beyond the alert event, load
#: shedding, or fallback to the undefended model.
BREACH_ACTIONS = ("alert", "shed", "fallback")

#: Ring resolution: buckets per window.
_N_BUCKETS = 12


@dataclass(frozen=True)
class SLOSpec:
    """One service-level objective and its alerting policy.

    Parameters
    ----------
    name:
        Objective name (``latency``, ``flush_deadline``) — alert events
        are emitted as ``slo.<name>``.
    objective:
        Required good fraction in ``(0, 1)``, e.g. ``0.99``.
    target_ms:
        Latency form: an observation is *good* when ``latency_ms`` is at
        most this.  ``None`` makes the spec attainment-form — the caller
        reports good/bad outcomes directly (e.g. flush-deadline met).
    fast_window_s / slow_window_s:
        The two sliding windows (defaults 5 s / 60 s).
    fast_burn / slow_burn:
        Burn-rate thresholds that must *both* be exceeded to breach
        (defaults 14.4 / 6.0, the classic page-severity numbers).
    min_events:
        Fast-window observation count required before the spec may
        breach — a two-request blip is noise, not burn.
    on_breach:
        One of :data:`BREACH_ACTIONS`; ``shed``/``fallback`` arm service
        degradation while the breach is active.
    """

    name: str
    objective: float = 0.99
    target_ms: Optional[float] = None
    fast_window_s: float = 5.0
    slow_window_s: float = 60.0
    fast_burn: float = 14.4
    slow_burn: float = 6.0
    min_events: int = 10
    on_breach: str = "alert"

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError(f"objective must be in (0, 1), got {self.objective}")
        if self.target_ms is not None and self.target_ms <= 0:
            raise ValueError(f"target_ms must be positive, got {self.target_ms}")
        if self.fast_window_s <= 0 or self.slow_window_s < self.fast_window_s:
            raise ValueError(
                f"windows must satisfy 0 < fast <= slow, got "
                f"{self.fast_window_s}/{self.slow_window_s}")
        if self.on_breach not in BREACH_ACTIONS:
            raise ValueError(f"on_breach must be one of {BREACH_ACTIONS}, "
                             f"got {self.on_breach!r}")
        if self.min_events < 1:
            raise ValueError(f"min_events must be >= 1, got {self.min_events}")

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form (fleet worker config transport)."""
        return {"name": self.name, "objective": self.objective,
                "target_ms": self.target_ms,
                "fast_window_s": self.fast_window_s,
                "slow_window_s": self.slow_window_s,
                "fast_burn": self.fast_burn, "slow_burn": self.slow_burn,
                "min_events": self.min_events, "on_breach": self.on_breach}

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "SLOSpec":
        """Inverse of :meth:`as_dict`."""
        known = {key: payload[key] for key in (
            "name", "objective", "target_ms", "fast_window_s",
            "slow_window_s", "fast_burn", "slow_burn", "min_events",
            "on_breach") if key in payload}
        return cls(**known)


@dataclass(frozen=True)
class SLOStatus:
    """One spec's state at the latest evaluation."""

    name: str
    attainment: float      #: good fraction over the slow window (1.0 when empty)
    fast_burn: float
    slow_burn: float
    n_fast: int
    n_slow: int
    breached: bool         #: this evaluation crossed both thresholds
    active: bool           #: breach currently in force (edge-triggered state)
    on_breach: str

    def as_dict(self) -> Dict[str, object]:
        return {"name": self.name, "attainment": self.attainment,
                "fast_burn": self.fast_burn, "slow_burn": self.slow_burn,
                "n_fast": self.n_fast, "n_slow": self.n_slow,
                "breached": self.breached, "active": self.active,
                "on_breach": self.on_breach}


class _BurnWindow:
    """Good/bad counts over a sliding window, as a bucket ring."""

    __slots__ = ("bucket_s", "_good", "_bad", "_head")

    def __init__(self, window_s: float) -> None:
        self.bucket_s = window_s / _N_BUCKETS
        self._good = [0] * _N_BUCKETS
        self._bad = [0] * _N_BUCKETS
        self._head: Optional[int] = None  #: absolute index of newest bucket

    def _advance(self, now: float) -> None:
        bucket = int(now / self.bucket_s)
        if self._head is None or bucket - self._head >= _N_BUCKETS:
            self._good = [0] * _N_BUCKETS
            self._bad = [0] * _N_BUCKETS
        elif bucket > self._head:
            for stale in range(self._head + 1, bucket + 1):
                self._good[stale % _N_BUCKETS] = 0
                self._bad[stale % _N_BUCKETS] = 0
        else:
            return  # same bucket (or clock went backwards): nothing to expire
        self._head = bucket

    def observe(self, good: bool, now: float) -> None:
        self._advance(now)
        slot = self._head % _N_BUCKETS
        if good:
            self._good[slot] += 1
        else:
            self._bad[slot] += 1

    def counts(self, now: float) -> Tuple[int, int]:
        """(good, bad) over the window ending at ``now``."""
        self._advance(now)
        return sum(self._good), sum(self._bad)


class SLOMonitor:
    """Evaluates :class:`SLOSpec` objectives and raises burn-rate alerts.

    Parameters
    ----------
    specs:
        The objectives to track (names must be unique).
    instrumentation:
        Optional :class:`~repro.obs.Instrumentation` receiving one
        ``alert`` event per breach transition (and an ``alert.slo.<name>``
        counter).  ``None`` still tracks state — shedding hooks work
        without an event stream.
    clock:
        Monotonic time source for the sliding windows (injectable; tests
        drive breaches with a fake clock).
    """

    def __init__(self, specs: Iterable[SLOSpec],
                 instrumentation: Optional[Instrumentation] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.specs: Sequence[SLOSpec] = tuple(specs)
        names = [spec.name for spec in self.specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO spec names: {names}")
        self._obs = instrumentation
        self._clock = clock
        self._fast = {spec.name: _BurnWindow(spec.fast_window_s)
                      for spec in self.specs}
        self._slow = {spec.name: _BurnWindow(spec.slow_window_s)
                      for spec in self.specs}
        self._active: Dict[str, bool] = {spec.name: False for spec in self.specs}
        self._last: Dict[str, SLOStatus] = {}
        self.n_alerts = 0
        self.alerts: List[Dict[str, object]] = []  #: firing history (ingestion)

    # ------------------------------------------------------------------ #
    # Feeding
    # ------------------------------------------------------------------ #
    def observe(self, latency_ms: Optional[float] = None,
                good: Optional[bool] = None,
                now: Optional[float] = None) -> None:
        """Record one outcome against every spec it applies to.

        Latency-form specs consume ``latency_ms``; attainment-form specs
        consume ``good``.  Pass ``now`` to reuse a clock stamp the caller
        already took (the service feeds verdict batches this way so the
        hot path pays no extra clock reads).
        """
        if now is None:
            now = self._clock()
        for spec in self.specs:
            if spec.target_ms is not None:
                if latency_ms is not None:
                    outcome = latency_ms <= spec.target_ms
                elif good is not None:
                    # No latency to judge (an errored request): the explicit
                    # outcome stands in — errors burn latency budget too.
                    outcome = bool(good)
                else:
                    continue
            else:
                if good is None:
                    continue
                outcome = bool(good)
            self._fast[spec.name].observe(outcome, now)
            self._slow[spec.name].observe(outcome, now)

    def observe_verdict(self, verdict, now: Optional[float] = None) -> None:
        """Feed one scoring verdict: errors are bad, sheds don't count.

        A shed verdict is the *degradation already in force* — scoring it
        against the latency objective (instant, or as a failure) would
        either mask the burn or latch shedding on forever; the requests
        that were actually scored are the signal.
        """
        if verdict.status == "shed":
            return
        if verdict.status == "error":
            self.observe(good=False, now=now)
            return
        self.observe(latency_ms=verdict.latency_ms, good=True, now=now)

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def evaluate(self, now: Optional[float] = None) -> List[SLOStatus]:
        """Re-evaluate every spec; fires alerts on breach transitions.

        Called at batch boundaries (each service flush), never per
        request — the same seam discipline as the rest of the
        instrumentation.
        """
        if now is None:
            now = self._clock()
        statuses: List[SLOStatus] = []
        for spec in self.specs:
            budget = 1.0 - spec.objective
            fast_good, fast_bad = self._fast[spec.name].counts(now)
            slow_good, slow_bad = self._slow[spec.name].counts(now)
            n_fast, n_slow = fast_good + fast_bad, slow_good + slow_bad
            fast_rate = fast_bad / n_fast if n_fast else 0.0
            slow_rate = slow_bad / n_slow if n_slow else 0.0
            fast_burn = fast_rate / budget
            slow_burn = slow_rate / budget
            attainment = slow_good / n_slow if n_slow else 1.0
            breached = (n_fast >= spec.min_events
                        and fast_burn >= spec.fast_burn
                        and slow_burn >= spec.slow_burn)
            was_active = self._active[spec.name]
            if breached and not was_active:
                self._fire(spec, fast_burn, slow_burn, attainment)
            self._active[spec.name] = breached
            status = SLOStatus(name=spec.name, attainment=attainment,
                               fast_burn=fast_burn, slow_burn=slow_burn,
                               n_fast=n_fast, n_slow=n_slow,
                               breached=breached, active=breached,
                               on_breach=spec.on_breach)
            self._last[spec.name] = status
            statuses.append(status)
        return statuses

    def _fire(self, spec: SLOSpec, fast_burn: float, slow_burn: float,
              attainment: float) -> None:
        self.n_alerts += 1
        record = {"slo": spec.name, "fast_burn": fast_burn,
                  "slow_burn": slow_burn, "attainment": attainment,
                  "objective": spec.objective, "on_breach": spec.on_breach}
        self.alerts.append(record)
        if self._obs is not None:
            self._obs.alert(f"slo.{spec.name}", fast_burn,
                            slow_burn=slow_burn, attainment=attainment,
                            objective=spec.objective,
                            on_breach=spec.on_breach)

    # ------------------------------------------------------------------ #
    # Degradation hooks / reporting
    # ------------------------------------------------------------------ #
    def should_shed(self) -> bool:
        """True while any ``on_breach="shed"`` spec is breached."""
        return any(self._active[spec.name] for spec in self.specs
                   if spec.on_breach == "shed")

    def wants_fallback(self) -> bool:
        """True while any ``on_breach="fallback"`` spec is breached."""
        return any(self._active[spec.name] for spec in self.specs
                   if spec.on_breach == "fallback")

    @property
    def active_alerts(self) -> List[str]:
        """Names of specs currently in breach."""
        return [spec.name for spec in self.specs if self._active[spec.name]]

    def snapshot(self) -> List[Dict[str, object]]:
        """Latest per-spec status dicts (live dashboard payload)."""
        return [self._last[spec.name].as_dict() for spec in self.specs
                if spec.name in self._last]
