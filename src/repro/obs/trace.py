"""Nested tracing spans over a monotonic clock.

A span is a named, timed region of execution::

    with tracer.span("service.flush", n=len(batch)) as span:
        ...score the batch...

Spans nest: the tracer keeps a stack, assigns each span a process-unique
id, and records the enclosing span's id as the parent — enough to
reconstruct the call tree of one run (``fleet.dispatch`` →
``service.flush`` → ``cache.build``) from the flat event stream.  On exit
each span emits a ``span`` :class:`~repro.obs.events.ObsEvent` to the
configured sink and folds its duration into a ``span.<name>`` summary
histogram, so even sink-less instrumentation answers "how many flushes,
how long on average".

The tracer is deliberately single-threaded, like the micro-batcher it
instruments: each process (fleet worker, grid worker, the dispatcher)
owns its own tracer, and cross-process aggregation happens by merging
snapshots/event buffers, never by sharing one tracer.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, List, Optional

from repro.obs.events import EventSink, ObsEvent
from repro.obs.metrics import MetricsRegistry

__all__ = ["Span", "Tracer"]


class Span:
    """One in-flight (or finished) traced region."""

    __slots__ = ("name", "span_id", "parent_id", "tags", "started",
                 "duration_s")

    def __init__(self, name: str, span_id: int, parent_id: int,
                 tags: dict, started: float) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.tags = tags
        self.started = started
        self.duration_s: Optional[float] = None  #: set when the span ends

    def as_event(self) -> ObsEvent:
        """The finished span as an emittable event."""
        return ObsEvent(kind="span", name=self.name,
                        value=self.duration_s or 0.0,
                        span_id=self.span_id, parent_id=self.parent_id,
                        tags=self.tags)


class Tracer:
    """Issues nested spans and accounts their durations.

    Parameters
    ----------
    metrics:
        Registry receiving one ``span.<name>`` histogram observation per
        finished span.  ``None`` skips duration aggregation.
    sink:
        Optional :class:`~repro.obs.events.EventSink` receiving the span
        event on exit.
    clock:
        Monotonic time source in seconds (injectable for tests).
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None,
                 sink: Optional[EventSink] = None,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self.metrics = metrics
        self.sink = sink
        self._clock = clock
        self._stack: List[Span] = []
        self._next_id = 1
        self.n_spans = 0

    @property
    def active(self) -> Optional[Span]:
        """The innermost span currently open (None at top level)."""
        return self._stack[-1] if self._stack else None

    @property
    def active_id(self) -> int:
        """Id of the innermost open span (0 at top level)."""
        return self._stack[-1].span_id if self._stack else 0

    @contextmanager
    def span(self, name: str, **tags):
        """Open a named span for the duration of the ``with`` block.

        The span ends — duration computed, event emitted, histogram
        updated — even when the block raises; the exception then
        propagates unchanged, with ``error=True`` added to the span tags
        so failed regions are distinguishable in the event stream.
        """
        span = Span(name=name, span_id=self._next_id,
                    parent_id=self.active_id, tags=dict(tags),
                    started=self._clock())
        self._next_id += 1
        self._stack.append(span)
        try:
            yield span
        except BaseException:
            span.tags["error"] = True
            raise
        finally:
            self._stack.pop()
            span.duration_s = max(0.0, self._clock() - span.started)
            self.n_spans += 1
            if self.metrics is not None:
                self.metrics.histogram(f"span.{name}").observe(span.duration_s)
            if self.sink is not None:
                self.sink.emit(span.as_event())
