"""Nested tracing spans over a monotonic clock, plus trace propagation.

A span is a named, timed region of execution::

    with tracer.span("service.flush", n=len(batch)) as span:
        ...score the batch...

Spans nest: the tracer keeps a stack, assigns each span a process-unique
id, and records the enclosing span's id as the parent — enough to
reconstruct the call tree of one run (``fleet.dispatch`` →
``service.flush`` → ``cache.build``) from the flat event stream.  On exit
each span emits a ``span`` :class:`~repro.obs.events.ObsEvent` to the
configured sink and folds its duration into a ``span.<name>`` summary
histogram, so even sink-less instrumentation answers "how many flushes,
how long on average".

Two additions make spans *distributed*:

* a :class:`TraceContext` — ``(trace_id, parent_span_id)`` — rides on a
  ``ScoringRequest`` across the ``WorkerFleet`` process boundary, so
  replica-side spans can declare the dispatcher-side root span as their
  parent (see :meth:`Tracer.record_span`);
* each tracer owns a span-id *namespace*: ids are
  ``namespace * 2**40 + counter``, so the dispatcher (namespace 0) and
  every fleet replica (namespace ``worker_id + 1``, fresh per restart)
  allocate from disjoint ranges and stitched trees never collide.

The tracer is deliberately single-threaded, like the micro-batcher it
instruments: each process (fleet worker, grid worker, the dispatcher)
owns its own tracer, and cross-process aggregation happens by merging
snapshots/event buffers, never by sharing one tracer.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional

from repro.obs.events import EventSink, ObsEvent
from repro.obs.metrics import MetricsRegistry

__all__ = ["Span", "TraceContext", "Tracer"]

#: Span-id range per namespace; namespaces (dispatcher 0, replica
#: ``worker_id + 1``) allocate ids from disjoint ``2**40``-wide blocks.
SPAN_ID_STRIDE = 2 ** 40


@dataclass(frozen=True)
class TraceContext:
    """The cross-process trace coordinates stamped onto one request.

    ``trace_id`` names the request's whole tree (by convention the
    request id — deterministic and meaningful in reports);
    ``parent_span_id`` is the dispatcher-side root span that replica-side
    spans must declare as their parent.  The context is a frozen
    dataclass so it pickles over a ``multiprocessing`` queue unchanged.
    """

    trace_id: str
    parent_span_id: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {"trace_id": self.trace_id,
                "parent_span_id": int(self.parent_span_id)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "TraceContext":
        return cls(trace_id=str(payload["trace_id"]),
                   parent_span_id=int(payload.get("parent_span_id", 0)))


class Span:
    """One in-flight (or finished) traced region."""

    __slots__ = ("name", "span_id", "parent_id", "trace_id", "tags",
                 "started", "duration_s")

    def __init__(self, name: str, span_id: int, parent_id: int,
                 tags: dict, started: float, trace_id: str = "") -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.trace_id = trace_id
        self.tags = tags
        self.started = started
        self.duration_s: Optional[float] = None  #: set when the span ends

    def as_event(self) -> ObsEvent:
        """The finished span as an emittable event."""
        return ObsEvent(kind="span", name=self.name,
                        value=self.duration_s or 0.0,
                        span_id=self.span_id, parent_id=self.parent_id,
                        trace_id=self.trace_id, tags=self.tags)


class Tracer:
    """Issues nested spans and accounts their durations.

    Parameters
    ----------
    metrics:
        Registry receiving one ``span.<name>`` histogram observation per
        finished span.  ``None`` skips duration aggregation.
    sink:
        Optional :class:`~repro.obs.events.EventSink` receiving the span
        event on exit.
    clock:
        Monotonic time source in seconds (injectable for tests).
    namespace:
        Span-id namespace: ids start at ``namespace * SPAN_ID_STRIDE + 1``.
        Processes that contribute spans to one stitched trace (fleet
        dispatcher and its replicas) must use distinct namespaces.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None,
                 sink: Optional[EventSink] = None,
                 clock: Callable[[], float] = time.perf_counter,
                 namespace: int = 0) -> None:
        if namespace < 0:
            raise ValueError(f"namespace must be >= 0, got {namespace}")
        self.metrics = metrics
        self.sink = sink
        self._clock = clock
        self.namespace = int(namespace)
        self._stack: List[Span] = []
        self._next_id = self.namespace * SPAN_ID_STRIDE + 1
        self.n_spans = 0

    @property
    def active(self) -> Optional[Span]:
        """The innermost span currently open (None at top level)."""
        return self._stack[-1] if self._stack else None

    @property
    def active_id(self) -> int:
        """Id of the innermost open span (0 at top level)."""
        return self._stack[-1].span_id if self._stack else 0

    def allocate_id(self) -> int:
        """Reserve a span id without opening a span.

        Used by the fleet dispatcher to stamp a root span's id onto a
        :class:`TraceContext` *before* the span finishes — replica-side
        children must know their parent's id while the root is still open.
        """
        span_id, self._next_id = self._next_id, self._next_id + 1
        return span_id

    @contextmanager
    def span(self, name: str, **tags):
        """Open a named span for the duration of the ``with`` block.

        The span ends — duration computed, event emitted, histogram
        updated — even when the block raises; the exception then
        propagates unchanged, with ``error=True`` added to the span tags
        so failed regions are distinguishable in the event stream.
        """
        span = Span(name=name, span_id=self.allocate_id(),
                    parent_id=self.active_id, tags=dict(tags),
                    started=self._clock())
        self._stack.append(span)
        try:
            yield span
        except BaseException:
            span.tags["error"] = True
            raise
        finally:
            self._stack.pop()
            self._finish(span, max(0.0, self._clock() - span.started))

    def record_span(self, name: str, started: float, ended: float,
                    trace_id: str = "", parent_id: Optional[int] = None,
                    span_id: Optional[int] = None, **tags) -> Span:
        """Record an already-timed span with an explicit (remote) parent.

        This is the distributed-tracing primitive: per-request replica
        spans (queue wait, batch wait, score time) are measured with
        explicit clock stamps — not ``with`` blocks — and parent onto the
        dispatcher-side root span carried by a :class:`TraceContext`.
        ``span_id`` lets a pre-allocated id (:meth:`allocate_id`) be
        honoured; ``parent_id`` defaults to the innermost open span.
        """
        span = Span(name=name,
                    span_id=self.allocate_id() if span_id is None else span_id,
                    parent_id=self.active_id if parent_id is None else parent_id,
                    tags=tags, started=started, trace_id=trace_id)
        self._finish(span, max(0.0, ended - started))
        return span

    def _finish(self, span: Span, duration_s: float) -> None:
        span.duration_s = duration_s
        self.n_spans += 1
        if self.metrics is not None:
            self.metrics.histogram(f"span.{span.name}").observe(duration_s)
        if self.sink is not None:
            self.sink.emit(span.as_event())
