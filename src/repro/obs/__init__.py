"""repro.obs — the lightweight instrumentation core.

Three primitives, one facade:

* :mod:`repro.obs.events` — structured :class:`ObsEvent` records and the
  pluggable :class:`EventSink` protocol (:class:`ListSink` buffers for
  tests and for fleet workers forwarding to their dispatcher);
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges and O(1) summary histograms with associative snapshot merging;
* :mod:`repro.obs.trace` — nested, monotonic-clock :class:`Tracer` spans
  with span/parent ids, plus the :class:`TraceContext` that carries a
  request's trace across the fleet's process boundary;
* :mod:`repro.obs.instrument` — the :class:`Instrumentation` facade plus
  the ambient :func:`current` / :func:`instrumented` context used by deep
  library code (JSMA step loop, artifact cache) that cannot take an
  explicit instrumentation argument.

On top of the core sit three serving-observability layers:

* :mod:`repro.obs.spans` — the distributed-tracing halves:
  :class:`TraceStamper` (dispatcher-side root spans) and
  :class:`SpanCollector` (per-request span trees with orphan flagging and
  queue/batch-wait/score breakdowns);
* :mod:`repro.obs.slo` — declarative :class:`SLOSpec` objectives under
  multi-window burn-rate alerting (:class:`SLOMonitor`), optionally
  arming service shed/fallback degradation;
* :mod:`repro.obs.live` — atomically-published live snapshots, the
  ``cli top`` dashboard rendering and Prometheus text exposition.

Everything is off by default: an uninstrumented run pays one ``is None``
check per batch-level operation.  The serving benchmark pins the enabled
overhead at ≤5% of batched throughput with byte-identical verdicts.

Instrumented sites (see each module's docs for the exact metric names):

================== ====================================================
seam               metrics
================== ====================================================
ScoringService     ``span.service.flush``, ``serve.requests``,
                   ``serve.sheds``, ``serve.fallbacks``,
                   ``serve.errors``, ``serve.flush_failures``; per traced
                   request: ``span.fleet.queue``, ``span.batcher.enqueue``,
                   ``span.request.score``
MicroBatcher       ``batcher.queue_depth`` (gauge),
                   ``batcher.batch_size`` (histogram),
                   ``batcher.flush_lag_ms`` (histogram: flush time past
                   the oldest item's deadline)
SLOMonitor         ``alert.slo.<name>`` + one ``alert`` event per breach
WorkerFleet        ``fleet.dispatches``, ``fleet.redispatches``,
                   ``fleet.restarts`` + merged per-worker snapshots
GridExecutor       ``span.grid.cell``, ``grid.cells``,
                   ``grid.cell_retries``, ``grid.cell_timeouts``
JsmaAttack         ``span.attack.jsma``, ``jsma.steps``,
                   ``jsma.features_flipped``, ``jsma.evasions``
ArtifactCache      ``cache.hits``, ``cache.misses``,
                   ``cache.build_seconds`` (histogram)
================== ====================================================
"""

from repro.obs.events import (
    EVENT_KINDS,
    EventSink,
    ListSink,
    NullSink,
    ObsEvent,
)
from repro.obs.instrument import Instrumentation, current, instrumented
from repro.obs.live import (
    LivePublisher,
    prometheus_exposition,
    read_snapshot,
    render_top,
    snapshot_path,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.slo import SLOMonitor, SLOSpec, SLOStatus
from repro.obs.spans import (
    BREAKDOWN_SPANS,
    SpanCollector,
    SpanNode,
    SpanTree,
    TraceStamper,
    breakdown_summary,
)
from repro.obs.trace import Span, TraceContext, Tracer

__all__ = [
    "EVENT_KINDS",
    "EventSink",
    "ListSink",
    "NullSink",
    "ObsEvent",
    "Instrumentation",
    "current",
    "instrumented",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "TraceContext",
    "Tracer",
    "BREAKDOWN_SPANS",
    "SpanCollector",
    "SpanNode",
    "SpanTree",
    "TraceStamper",
    "breakdown_summary",
    "SLOMonitor",
    "SLOSpec",
    "SLOStatus",
    "LivePublisher",
    "prometheus_exposition",
    "read_snapshot",
    "render_top",
    "snapshot_path",
]
