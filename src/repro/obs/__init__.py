"""repro.obs — the lightweight instrumentation core.

Three primitives, one facade:

* :mod:`repro.obs.events` — structured :class:`ObsEvent` records and the
  pluggable :class:`EventSink` protocol (:class:`ListSink` buffers for
  tests and for fleet workers forwarding to their dispatcher);
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges and O(1) summary histograms with associative snapshot merging;
* :mod:`repro.obs.trace` — nested, monotonic-clock :class:`Tracer` spans
  with span/parent ids;
* :mod:`repro.obs.instrument` — the :class:`Instrumentation` facade plus
  the ambient :func:`current` / :func:`instrumented` context used by deep
  library code (JSMA step loop, artifact cache) that cannot take an
  explicit instrumentation argument.

Everything is off by default: an uninstrumented run pays one ``is None``
check per batch-level operation.  The serving benchmark pins the enabled
overhead at ≤5% of batched throughput with byte-identical verdicts.

Instrumented sites (see each module's docs for the exact metric names):

================== ====================================================
seam               metrics
================== ====================================================
ScoringService     ``span.service.flush``, ``serve.requests``,
                   ``serve.sheds``, ``serve.fallbacks``,
                   ``serve.errors``, ``serve.flush_failures``
MicroBatcher       ``batcher.queue_depth`` (gauge),
                   ``batcher.batch_size`` (histogram)
WorkerFleet        ``fleet.dispatches``, ``fleet.redispatches``,
                   ``fleet.restarts`` + merged per-worker snapshots
GridExecutor       ``span.grid.cell``, ``grid.cells``,
                   ``grid.cell_retries``, ``grid.cell_timeouts``
JsmaAttack         ``span.attack.jsma``, ``jsma.steps``,
                   ``jsma.features_flipped``, ``jsma.evasions``
ArtifactCache      ``cache.hits``, ``cache.misses``,
                   ``cache.build_seconds`` (histogram)
================== ====================================================
"""

from repro.obs.events import (
    EVENT_KINDS,
    EventSink,
    ListSink,
    NullSink,
    ObsEvent,
)
from repro.obs.instrument import Instrumentation, current, instrumented
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import Span, Tracer

__all__ = [
    "EVENT_KINDS",
    "EventSink",
    "ListSink",
    "NullSink",
    "ObsEvent",
    "Instrumentation",
    "current",
    "instrumented",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
]
