"""Distributed span trees: stamping, collection and per-request breakdowns.

One scored request crosses a process boundary: the :class:`WorkerFleet`
dispatcher enqueues it, a replica picks it up, the replica's
:class:`MicroBatcher` holds it until a flush, and the verdict rides home on
the result queue.  Each hop is measured as a span carrying the request's
``trace_id``; this module stitches the flat, multi-process event stream
back into one tree per request.

* :class:`TraceStamper` is the dispatcher half: it allocates a root span
  id per request, stamps a :class:`~repro.obs.trace.TraceContext` onto the
  outgoing ``ScoringRequest``, and finishes the root span when the verdict
  arrives — tagging it with the verdict status.
* :class:`SpanCollector` is the assembly half: fed span events (live
  objects or the plain dicts a worker snapshot ships home), it groups them
  by trace, links children to parents, flags orphans (a parent that never
  arrived) and duplicates (one span id seen twice), and derives the
  queue-time / batch-wait / score-time breakdown that answers "where did
  request X spend its time?".

The per-request span names, in hop order:

========================  ====================================================
``request``               root: dispatcher enqueue → verdict received
``fleet.queue``           dispatcher enqueue → replica ``service.submit``
``batcher.enqueue``       replica pickup → the flush that scored it starting
``request.score``         flush start → verdict construction finished
========================  ====================================================
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.obs.events import ObsEvent
from repro.obs.instrument import Instrumentation
from repro.obs.trace import TraceContext

__all__ = ["BREAKDOWN_SPANS", "SpanNode", "SpanTree", "SpanCollector",
           "TraceStamper", "breakdown_summary"]

#: The child-span names that partition a request's end-to-end latency,
#: mapped to the breakdown keys reports use.
BREAKDOWN_SPANS = {
    "fleet.queue": "queue_ms",
    "batcher.enqueue": "batch_wait_ms",
    "request.score": "score_ms",
}

#: The span name of a per-request root span.
ROOT_SPAN = "request"


@dataclass
class SpanNode:
    """One finished span inside a trace."""

    name: str
    span_id: int
    parent_id: int
    trace_id: str
    duration_ms: float
    tags: Dict[str, object] = field(default_factory=dict)
    children: List["SpanNode"] = field(default_factory=list)

    @property
    def error(self) -> bool:
        """True when the span ended by raising (``error=True`` tag)."""
        return bool(self.tags.get("error"))


@dataclass
class SpanTree:
    """Every span of one trace, linked root-down."""

    trace_id: str
    root: Optional[SpanNode] = None
    nodes: List[SpanNode] = field(default_factory=list)
    orphans: List[SpanNode] = field(default_factory=list)
    n_duplicates: int = 0

    @property
    def complete(self) -> bool:
        """Rooted, no orphans, no duplicate span ids."""
        return (self.root is not None and not self.orphans
                and self.n_duplicates == 0)

    def breakdown(self) -> Dict[str, float]:
        """Per-hop milliseconds: queue_ms / batch_wait_ms / score_ms.

        Keys appear only for hops the trace actually recorded (a request
        shed at submit has none), plus ``total_ms`` when the tree has a
        root.  Repeated hops (a request re-flushed after poison bisection)
        sum.
        """
        parts: Dict[str, float] = {}
        for node in self.nodes:
            key = BREAKDOWN_SPANS.get(node.name)
            if key is not None:
                parts[key] = parts.get(key, 0.0) + node.duration_ms
        if self.root is not None:
            parts["total_ms"] = self.root.duration_ms
        return parts

    def hop_counts(self) -> Dict[str, int]:
        """How many spans recorded each breakdown hop.

        A clean once-scored request has exactly one of each; a request
        redispatched after a replica death may carry two ``fleet.queue``
        spans (the dead replica's pickup survived in its dying-gasp
        snapshot) — summary statistics filter on this.
        """
        counts: Dict[str, int] = {}
        for node in self.nodes:
            key = BREAKDOWN_SPANS.get(node.name)
            if key is not None:
                counts[key] = counts.get(key, 0) + 1
        return counts

    def render(self) -> str:
        """ASCII rendering of the tree (docs, debugging, ``cli top``)."""
        lines: List[str] = [f"trace {self.trace_id}"]

        def walk(node: SpanNode, prefix: str, last: bool) -> None:
            branch = "`-" if last else "|-"
            suffix = "  [error]" if node.error else ""
            worker = node.tags.get("worker")
            where = f" @worker{worker}" if worker is not None else ""
            lines.append(f"{prefix}{branch} {node.name}  "
                         f"{node.duration_ms:.3f} ms{where}{suffix}")
            child_prefix = prefix + ("   " if last else "|  ")
            for index, child in enumerate(node.children):
                walk(child, child_prefix, index == len(node.children) - 1)

        if self.root is not None:
            walk(self.root, "", True)
        for orphan in self.orphans:
            lines.append(f"?- {orphan.name}  {orphan.duration_ms:.3f} ms"
                         f"  [orphan: parent {orphan.parent_id} missing]")
        return "\n".join(lines)


class SpanCollector:
    """Assembles per-request span trees from a flat span-event stream.

    Feed it :class:`~repro.obs.events.ObsEvent` objects or their
    ``as_dict`` forms — whatever mixture a run produced (the dispatcher's
    live sink, a worker snapshot's ``events`` list, rows read back from
    the analytics store).  Events that are not spans, or spans without a
    ``trace_id`` (process-local spans like ``fleet.dispatch``), are
    counted but not collected.
    """

    def __init__(self) -> None:
        self._nodes: Dict[str, Dict[int, SpanNode]] = {}
        self._duplicates: Dict[str, int] = {}
        self.n_untraced = 0
        self.n_ignored = 0

    def add(self, event: Union[ObsEvent, Mapping[str, object]]) -> None:
        """Add one event; non-span and untraced events are counted only."""
        if isinstance(event, ObsEvent):
            kind, name, trace_id = event.kind, event.name, event.trace_id
            span_id, parent_id = event.span_id, event.parent_id
            value, tags = event.value, dict(event.tags)
        else:
            kind = str(event.get("kind", ""))
            name = str(event.get("name", ""))
            trace_id = str(event.get("trace_id", ""))
            span_id = int(event.get("span_id", 0))
            parent_id = int(event.get("parent_id", 0))
            value = float(event.get("value", 0.0))
            tags = dict(event.get("tags") or {})
        if kind != "span":
            self.n_ignored += 1
            return
        if not trace_id:
            self.n_untraced += 1
            return
        per_trace = self._nodes.setdefault(trace_id, {})
        if span_id in per_trace:
            self._duplicates[trace_id] = self._duplicates.get(trace_id, 0) + 1
            return
        per_trace[span_id] = SpanNode(name=name, span_id=span_id,
                                      parent_id=parent_id, trace_id=trace_id,
                                      duration_ms=value * 1000.0, tags=tags)

    def add_events(self,
                   events: Iterable[Union[ObsEvent, Mapping[str, object]]]
                   ) -> None:
        """Add many events (a sink buffer, a snapshot's ``events`` list)."""
        for event in events:
            self.add(event)

    def add_snapshot(self, snapshot: Optional[Mapping[str, object]]) -> None:
        """Add the ``events`` of an :meth:`Instrumentation.snapshot`."""
        if snapshot:
            self.add_events(snapshot.get("events") or [])

    @property
    def trace_ids(self) -> List[str]:
        return sorted(self._nodes)

    def tree(self, trace_id: str) -> SpanTree:
        """The assembled tree for one trace (empty tree if unknown)."""
        per_trace = self._nodes.get(trace_id, {})
        tree = SpanTree(trace_id=trace_id,
                        n_duplicates=self._duplicates.get(trace_id, 0))
        for span_id in sorted(per_trace):
            node = per_trace[span_id]
            node.children = []
            tree.nodes.append(node)
        for node in tree.nodes:
            if node.parent_id == 0:
                if tree.root is None:
                    tree.root = node
                else:
                    tree.orphans.append(node)  # second root: unparentable
            else:
                parent = per_trace.get(node.parent_id)
                if parent is None:
                    tree.orphans.append(node)
                else:
                    parent.children.append(node)
        return tree

    def trees(self) -> Dict[str, SpanTree]:
        """All assembled trees, keyed by trace id."""
        return {trace_id: self.tree(trace_id) for trace_id in self.trace_ids}

    @property
    def n_orphans(self) -> int:
        """Total orphan spans across every trace."""
        return sum(len(tree.orphans) for tree in self.trees().values())

    @property
    def n_duplicates(self) -> int:
        """Total duplicate span ids across every trace."""
        return sum(self._duplicates.values())


class TraceStamper:
    """Dispatcher-side trace bookkeeping: stamp roots, finish on verdict.

    ``stamp`` allocates the root span id, attaches the
    :class:`~repro.obs.trace.TraceContext` to the outgoing request (any
    dataclass with a ``trace`` field) and notes the dispatch clock stamp;
    ``finish`` closes the root when that request's verdict arrives.  A
    verdict for an unknown or already-finished request id is ignored, so
    redispatch races and duplicate verdicts stay harmless.

    When no dispatch stamp was recorded (``started=None`` — the
    single-process serving path, where pacing sits between stamping and
    submission), the root's duration falls back to the verdict's measured
    end-to-end ``latency_ms``.

    ``sample_every`` is the head-based sampling knob production tracing
    systems use to meet an overhead budget: the stamper traces the first
    request and every ``sample_every``-th after it, and passes the rest
    through untouched (no context, no root, no replica-side hop spans —
    an unstamped request costs one modulo on the dispatcher and one
    ``is None`` check on the replica).  The default ``1`` traces every
    request — full fidelity for chaos soaks and debugging; per-request
    span recording plus event transport costs tens of microseconds, so
    under a tight throughput budget sample instead (the decision is made
    at the head, so every sampled trace is still a *complete* tree).
    """

    def __init__(self, instrumentation: Instrumentation,
                 clock: Callable[[], float] = time.perf_counter,
                 sample_every: int = 1) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self._obs = instrumentation
        self._clock = clock
        self._sample_every = int(sample_every)
        self._seq = 0
        self._open: Dict[str, Tuple[int, Optional[float]]] = {}

    @property
    def open_count(self) -> int:
        """Requests stamped but not yet finished."""
        return len(self._open)

    def stamp(self, request, started: Optional[float] = None):
        """Return ``request`` with a fresh root span's context attached.

        Requests not selected by ``sample_every`` are returned unchanged.
        """
        seq, self._seq = self._seq, self._seq + 1
        if seq % self._sample_every:
            return request
        root_id = self._obs.tracer.allocate_id()
        self._open[request.request_id] = (root_id, started)
        return replace(request, trace=TraceContext(
            trace_id=request.request_id, parent_span_id=root_id))

    def finish(self, verdict, ended: Optional[float] = None) -> None:
        """Close the root span for ``verdict``'s request (idempotent)."""
        entry = self._open.pop(verdict.request_id, None)
        if entry is None:
            return
        root_id, started = entry
        if ended is None:
            ended = self._clock()
        if started is None:
            started = ended - verdict.latency_ms / 1000.0
        self._obs.record_span(
            ROOT_SPAN, started, ended,
            trace=TraceContext(trace_id=verdict.request_id, parent_span_id=0),
            span_id=root_id, status=verdict.status)

    def finish_all(self, verdicts, ended: Optional[float] = None) -> None:
        """Close root spans for a batch of verdicts."""
        for verdict in verdicts:
            self.finish(verdict, ended=ended)


def breakdown_summary(trees: Mapping[str, SpanTree]) -> Dict[str, Dict[str, float]]:
    """Aggregate per-hop timing across trees: count / total / mean ms.

    Only trees with a clean breakdown — every hop present *exactly once* —
    contribute, so partially-traced requests (shed at submit, spans lost
    to a crashed replica) and redispatched requests (doubled queue hops)
    cannot skew the means.
    """
    keys = tuple(BREAKDOWN_SPANS.values()) + ("total_ms",)
    hop_keys = tuple(BREAKDOWN_SPANS.values())
    sums: Dict[str, float] = {key: 0.0 for key in keys}
    count = 0
    for tree in trees.values():
        parts = tree.breakdown()
        if not all(key in parts for key in keys):
            continue
        if any(tree.hop_counts().get(key, 0) != 1 for key in hop_keys):
            continue
        count += 1
        for key in keys:
            sums[key] += parts[key]
    return {key: {"count": float(count), "total_ms": sums[key],
                  "mean_ms": (sums[key] / count if count else 0.0)}
            for key in keys}
