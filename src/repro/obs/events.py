"""Structured observability events and the pluggable sink protocol.

Every instrumented site in the codebase reduces to one of four event kinds:

* ``span`` — a named, timed region of execution (value = duration in
  seconds) with a span id and a parent id, so nested spans reconstruct the
  call tree;
* ``counter`` — a monotonically increasing count (value = the increment);
* ``gauge`` — a point-in-time level, e.g. micro-batcher queue depth;
* ``histogram`` — one observation of a distribution, e.g. a cache build
  time;
* ``alert`` — an SLO burn-rate breach raised by
  :class:`~repro.obs.slo.SLOMonitor` (value = the fast-window burn rate).

Span events may additionally carry a ``trace_id`` — the id of the *request*
whose life they describe.  Trace ids cross process boundaries (a
:class:`~repro.obs.trace.TraceContext` rides on the ``ScoringRequest``), so
the dispatcher can stitch one request's dispatcher-side and replica-side
spans back into a single tree (see :mod:`repro.obs.spans`).

An :class:`EventSink` receives each event as it happens.  Sinks are
*pluggable*: the default is no sink at all (the metrics registry still
aggregates), :class:`ListSink` buffers events in memory for tests and for
fleet workers that forward their buffer to the dispatcher over the result
queue, and anything implementing ``emit(event)`` — a file writer, an
analytics-store appender — can be swapped in.  Events serialise to plain
dicts so they survive a ``multiprocessing`` queue hop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

__all__ = ["EVENT_KINDS", "ObsEvent", "EventSink", "ListSink", "NullSink"]

#: The event kinds an instrumented site may emit.
EVENT_KINDS = ("span", "counter", "gauge", "histogram", "alert")


@dataclass(frozen=True)
class ObsEvent:
    """One observability event.

    ``value`` is the duration in seconds for spans, the increment for
    counters, the level for gauges, the observation for histograms and the
    fast-window burn rate for alerts.  ``span_id``/``parent_id`` are 0 for
    non-span events emitted outside any active span; inside a span, non-span
    events inherit the enclosing span's id as their ``parent_id`` so they
    can be attributed to it.  ``trace_id`` is non-empty only on spans that
    belong to one request's distributed trace.
    """

    kind: str
    name: str
    value: float
    span_id: int = 0
    parent_id: int = 0
    trace_id: str = ""
    tags: Mapping[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form (queue transport, analytics ingestion)."""
        return {
            "kind": self.kind,
            "name": self.name,
            "value": float(self.value),
            "span_id": int(self.span_id),
            "parent_id": int(self.parent_id),
            "trace_id": self.trace_id,
            "tags": dict(self.tags),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ObsEvent":
        """Inverse of :meth:`as_dict`."""
        return cls(
            kind=str(payload["kind"]),
            name=str(payload["name"]),
            value=float(payload["value"]),
            span_id=int(payload.get("span_id", 0)),
            parent_id=int(payload.get("parent_id", 0)),
            trace_id=str(payload.get("trace_id", "")),
            tags=dict(payload.get("tags") or {}),
        )


class EventSink:
    """Protocol for event consumers; subclass or duck-type ``emit``."""

    def emit(self, event: ObsEvent) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class NullSink(EventSink):
    """A sink that drops everything (the explicit do-nothing plug)."""

    def emit(self, event: ObsEvent) -> None:
        pass


class ListSink(EventSink):
    """Buffers events in memory (tests, fleet-worker forwarding).

    ``max_events`` bounds the buffer so a long soak cannot grow it without
    limit: once full, the *oldest* events are dropped and
    :attr:`n_dropped` counts how many — silent truncation would make a
    forwarded buffer look complete when it is not.
    """

    def __init__(self, max_events: Optional[int] = None) -> None:
        if max_events is not None and max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.max_events = max_events
        self.events: List[ObsEvent] = []
        self.n_dropped = 0

    def emit(self, event: ObsEvent) -> None:
        self.events.append(event)
        if self.max_events is not None and len(self.events) > self.max_events:
            overflow = len(self.events) - self.max_events
            del self.events[:overflow]
            self.n_dropped += overflow

    def drain(self) -> List[ObsEvent]:
        """Return and clear the buffered events."""
        drained, self.events = self.events, []
        return drained

    def as_dicts(self) -> List[Dict[str, object]]:
        """The buffered events as plain dicts (queue transport)."""
        return [event.as_dict() for event in self.events]

    def __len__(self) -> int:
        return len(self.events)
