"""Live run snapshots: the data path behind ``cli top`` and metric export.

A replay publishes its progress as one small JSON file,
``<store>/live/snapshot.json``, rewritten atomically (tmp sibling +
``os.replace``) after every verdict-bearing flush — so any number of
``cli top`` processes can poll the file without locks and never observe a
torn write.  The publisher rides the ``progress`` callback both
:func:`repro.serving.loadgen.replay` and
:meth:`repro.parallel.WorkerFleet.score_stream` expose, so one publisher
serves the single-process and fleet paths alike.

Three consumers read the snapshot:

* :func:`render_top` — the refreshing terminal dashboard ``cli top``
  draws: progress, rps, in-flight depth, latency quantiles, per-SLO
  burn rates, restarts and active alerts;
* :func:`prometheus_exposition` — Prometheus text-format exposition of
  the embedded metrics registry snapshot (``cli export-metrics``);
* tests/CI — the payload is plain JSON with stable keys.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Union

import numpy as np

from repro.obs.instrument import Instrumentation
from repro.obs.slo import SLOMonitor

__all__ = ["LIVE_SNAPSHOT", "LivePublisher", "snapshot_path",
           "read_snapshot", "render_top", "prometheus_exposition"]

#: Snapshot location relative to the analytics-store root.
LIVE_SNAPSHOT = Path("live") / "snapshot.json"


def snapshot_path(store_root: Union[str, Path]) -> Path:
    """Where a run rooted at ``store_root`` publishes its live snapshot."""
    return Path(store_root) / LIVE_SNAPSHOT


def read_snapshot(store_root: Union[str, Path]) -> Optional[Dict[str, object]]:
    """The last published snapshot under ``store_root`` (None when absent)."""
    path = snapshot_path(store_root)
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        return None
    except ValueError:
        return None  # torn writes are impossible; a hand-edited file is not


class LivePublisher:
    """Progress-callback publisher of atomically-replaced live snapshots.

    Use it as the ``progress=`` callback of a replay.  Each call folds the
    fresh verdicts into running latency/status tallies, feeds the optional
    display-side :class:`~repro.obs.slo.SLOMonitor`, and (rate-limited to
    ``interval_s``) republishes the snapshot file.  ``finish`` forces a
    final publish carrying the end-of-run metrics snapshot.

    Parameters
    ----------
    store_root:
        Analytics-store root; the snapshot lands under ``live/``.
    instrumentation:
        Optional dispatcher-side :class:`~repro.obs.Instrumentation` whose
        metrics registry is embedded in each snapshot (queue gauges,
        counters — what ``export-metrics`` exposes).
    slo:
        Optional display-side monitor evaluated on the verdict stream the
        dispatcher sees; its statuses render as the dashboard's burn-rate
        rows.  Independent of the worker-side monitors that gate shedding.
    stamper:
        Optional :class:`~repro.obs.spans.TraceStamper` to close root
        spans as verdicts arrive (the single-process serving path; the
        fleet dispatcher finishes its own).
    interval_s:
        Minimum seconds between snapshot writes (the final ``finish``
        write always happens).
    """

    def __init__(self, store_root: Union[str, Path],
                 instrumentation: Optional[Instrumentation] = None,
                 slo: Optional[SLOMonitor] = None,
                 stamper=None,
                 interval_s: float = 0.5,
                 clock: Callable[[], float] = time.monotonic,
                 wall_clock: Callable[[], float] = time.time) -> None:
        self.path = snapshot_path(store_root)
        self._obs = instrumentation
        self._slo = slo
        self._stamper = stamper
        self.interval_s = float(interval_s)
        self._clock = clock
        self._wall_clock = wall_clock
        self._last_write: Optional[float] = None
        self._latencies: List[float] = []
        self._status_counts: Dict[str, int] = {}
        self._last_info: Dict[str, object] = {}
        self.n_published = 0

    def __call__(self, info: Mapping[str, object]) -> None:
        """Fold one progress tick; republish if the write interval passed."""
        fresh = info.get("new_verdicts") or []
        now = None
        if fresh:
            if self._stamper is not None:
                self._stamper.finish_all(fresh)
            for verdict in fresh:
                status = getattr(verdict, "status", "ok")
                self._status_counts[status] = \
                    self._status_counts.get(status, 0) + 1
                if status == "ok":
                    self._latencies.append(float(verdict.latency_ms))
                if self._slo is not None:
                    if now is None:
                        now = self._clock()
                    self._slo.observe_verdict(verdict, now=now)
            if self._slo is not None:
                self._slo.evaluate(now=now)
        self._last_info = {key: value for key, value in info.items()
                           if key != "new_verdicts"}
        elapsed = self._clock()
        if (self._last_write is None
                or elapsed - self._last_write >= self.interval_s):
            self.publish()

    def build(self) -> Dict[str, object]:
        """The current snapshot payload (JSON-safe plain types)."""
        info = self._last_info
        n_done = int(info.get("n_done", sum(self._status_counts.values())))
        n_expected = int(info.get("n_expected", 0))
        elapsed_s = float(info.get("elapsed_s", 0.0))
        latencies = np.asarray(self._latencies, dtype=np.float64)
        quantiles = {}
        if latencies.size:
            quantiles = {
                "p50_ms": float(np.percentile(latencies, 50)),
                "p99_ms": float(np.percentile(latencies, 99)),
                "max_ms": float(latencies.max()),
            }
        payload: Dict[str, object] = {
            "updated_at": self._wall_clock(),
            "n_done": n_done,
            "n_expected": n_expected,
            "in_flight": max(0, n_expected - n_done),
            "elapsed_s": elapsed_s,
            "rps": (n_done / elapsed_s if elapsed_s > 0 else 0.0),
            "latency": quantiles,
            "statuses": dict(self._status_counts),
            "restarts": int(info.get("restarts", 0)),
            "redispatches": int(info.get("redispatches", 0)),
            "slo": self._slo.snapshot() if self._slo is not None else [],
            "alerts": (sorted(self._slo.active_alerts)
                       if self._slo is not None else []),
            "metrics": (self._obs.metrics.snapshot()
                        if self._obs is not None else None),
        }
        return payload

    def publish(self, extra: Optional[Mapping[str, object]] = None) -> Path:
        """Atomically replace the snapshot file with the current payload."""
        payload = self.build()
        if extra:
            payload.update(extra)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp_path = self.path.with_name(f".tmp-{self.path.name}")
        tmp_path.write_text(json.dumps(payload, sort_keys=True, default=float),
                            encoding="utf-8")
        os.replace(tmp_path, self.path)  # readers never see a torn file
        self._last_write = self._clock()
        self.n_published += 1
        return self.path

    def finish(self, obs_snapshot: Optional[Mapping[str, object]] = None) -> Path:
        """Force the final publish, embedding the end-of-run metrics.

        ``obs_snapshot`` (an :meth:`Instrumentation.snapshot`, e.g. the
        fleet's merged one) overrides the dispatcher-local metrics so the
        exported exposition covers every replica.
        """
        extra: Dict[str, object] = {"finished": True}
        if obs_snapshot:
            extra["metrics"] = obs_snapshot.get("metrics")
        return self.publish(extra=extra)


# --------------------------------------------------------------------- #
# Rendering
# --------------------------------------------------------------------- #
def _fmt_ms(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.1f}ms"


def render_top(payload: Optional[Mapping[str, object]],
               now: Optional[float] = None) -> str:
    """The ``cli top`` dashboard text for one snapshot payload."""
    if payload is None:
        return ("repro top — no live snapshot yet\n"
                "(start a replay with `serve --observe --store DIR` "
                "pointing at this store)")
    age = ""
    if now is None:
        now = time.time()
    updated = payload.get("updated_at")
    if updated is not None:
        age = f"  (updated {max(0.0, now - float(updated)):.1f}s ago)"
    state = "finished" if payload.get("finished") else "running"
    lines = [f"repro top — {state}{age}"]

    n_done = int(payload.get("n_done", 0))
    n_expected = int(payload.get("n_expected", 0))
    share = f" ({n_done / n_expected:.0%})" if n_expected else ""
    lines.append(f"progress   {n_done}/{n_expected}{share}"
                 f"   elapsed {float(payload.get('elapsed_s', 0.0)):.1f}s"
                 f"   rps {float(payload.get('rps', 0.0)):,.1f}"
                 f"   in-flight {int(payload.get('in_flight', 0))}")

    latency = payload.get("latency") or {}
    lines.append(f"latency    p50 {_fmt_ms(latency.get('p50_ms'))}"
                 f"   p99 {_fmt_ms(latency.get('p99_ms'))}"
                 f"   max {_fmt_ms(latency.get('max_ms'))}")

    statuses = payload.get("statuses") or {}
    lines.append(f"fleet      restarts {int(payload.get('restarts', 0))}"
                 f"   redispatches {int(payload.get('redispatches', 0))}"
                 f"   shed {statuses.get('shed', 0)}"
                 f"   errors {statuses.get('error', 0)}")

    metrics = payload.get("metrics") or {}
    gauges = (metrics.get("gauges") or {}) if metrics else {}
    depth = gauges.get("batcher.queue_depth")
    if depth:
        lines.append(f"batcher    queue depth last {depth['value']:g} "
                     f"max {depth['max']:g}")

    for status in payload.get("slo") or []:
        flag = "BREACH" if status.get("breached") else (
            "active" if status.get("active") else "ok")
        lines.append(
            f"slo        {status['name']:<12}"
            f" attainment {float(status.get('attainment', 1.0)):.1%}"
            f"   burn fast {float(status.get('fast_burn', 0.0)):.1f}"
            f" / slow {float(status.get('slow_burn', 0.0)):.1f}"
            f"   {flag} ({status.get('on_breach', 'alert')})")

    alerts = payload.get("alerts") or []
    lines.append("alerts     " + (", ".join(alerts) if alerts else "none"))
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# Prometheus exposition
# --------------------------------------------------------------------- #
def _prom_name(name: str) -> str:
    safe = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    if safe and safe[0].isdigit():
        safe = f"_{safe}"
    return f"repro_{safe}"


def prometheus_exposition(metrics: Optional[Mapping[str, object]]) -> str:
    """Prometheus text-format exposition of a metrics-registry snapshot.

    ``metrics`` is the ``{"counters": ..., "gauges": ..., "histograms":
    ...}`` mapping a :meth:`MetricsRegistry.snapshot` produces (or the
    ``metrics`` key of a live snapshot).  Counters follow the ``_total``
    convention; histograms export ``_count`` / ``_sum`` plus ``_max``.
    """
    metrics = metrics or {}
    lines: List[str] = []
    for name, value in sorted((metrics.get("counters") or {}).items()):
        metric = f"{_prom_name(name)}_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {float(value):g}")
    for name, payload in sorted((metrics.get("gauges") or {}).items()):
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {float(payload['value']):g}")
        lines.append(f"# TYPE {metric}_max gauge")
        lines.append(f"{metric}_max {float(payload['max']):g}")
    for name, payload in sorted((metrics.get("histograms") or {}).items()):
        metric = _prom_name(name)
        count = float(payload.get("count", 0.0))
        mean = float(payload.get("mean", 0.0))
        lines.append(f"# TYPE {metric} summary")
        lines.append(f"{metric}_count {count:g}")
        lines.append(f"{metric}_sum {count * mean:g}")
        lines.append(f"{metric}_max {float(payload.get('max', 0.0)):g}")
    return "\n".join(lines) + ("\n" if lines else "")
