"""The attacker's substitute model (Table IV).

Table IV discloses the substitute architecture used for the grey-box
attacks: a 5-layer fully-connected DNN with layer widths
491 → 1200 → 1500 → 1300 → 2, trained with Adam (learning rate ``1e-3``,
batch size 256) on 57,170 balanced samples for 1000 epochs.  The synthetic
corpus is much easier than the real one, so scale profiles shrink the widths
and epochs while preserving the depth and optimiser configuration.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config import N_FEATURES, ScaleProfile
from repro.models.base import DetectorModel
from repro.nn.network import NeuralNetwork
from repro.utils.rng import RandomState

#: Table IV layer widths: 491-1200-1500-1300-2.
SUBSTITUTE_LAYER_SIZES = (N_FEATURES, 1200, 1500, 1300, 2)


class SubstituteModel(DetectorModel):
    """The attacker-trained stand-in used to craft transferable examples."""

    def __init__(self, layer_sizes: Optional[Sequence[int]] = None,
                 dropout: float = 0.0, random_state: RandomState = None,
                 name: str = "substitute_dnn") -> None:
        sizes = list(layer_sizes) if layer_sizes is not None else list(SUBSTITUTE_LAYER_SIZES)
        network = NeuralNetwork.mlp(sizes, activation="relu", dropout=dropout,
                                    name=name, random_state=random_state)
        super().__init__(network, name=name)

    @classmethod
    def for_scale(cls, scale: ScaleProfile, random_state: RandomState = None,
                  n_features: int = N_FEATURES, name: str = "substitute_dnn") -> "SubstituteModel":
        """Build a substitute whose hidden widths are scaled for ``scale``."""
        sizes = [n_features,
                 scale.scaled_hidden(SUBSTITUTE_LAYER_SIZES[1]),
                 scale.scaled_hidden(SUBSTITUTE_LAYER_SIZES[2]),
                 scale.scaled_hidden(SUBSTITUTE_LAYER_SIZES[3]),
                 2]
        return cls(layer_sizes=sizes, random_state=random_state, name=name)

    @staticmethod
    def table4_rows(scale: Optional[ScaleProfile] = None) -> list[tuple[str, str]]:
        """The rows of Table IV (optionally annotated with the scaled widths)."""
        rows = [("training data", "57170 balanced training data"),
                ("architecture", "5-layer DNN")]
        widths = SUBSTITUTE_LAYER_SIZES
        for index, width in enumerate(widths, start=1):
            scaled = "" if scale is None else f" (scaled: {scale.scaled_hidden(width) if 1 <= index - 1 <= 3 else width})"
            rows.append((f"{index}{'st' if index == 1 else 'nd' if index == 2 else 'rd' if index == 3 else 'th'} layer",
                         f"{width} nodes{scaled}"))
        return rows
