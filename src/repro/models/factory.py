"""Convenience constructors and trainers for the paper's models.

These functions encode the experimental setup of Sections II-B and III:
the defender trains the target DNN on the (synthetic) Table I training set;
the grey-box attacker trains a Table IV substitute on *their own* data with
the same 491 features (experiment 1) or with binary features (experiment 2).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.config import CLASS_CLEAN, CLASS_MALWARE, N_FEATURES, ScaleProfile, default_profile
from repro.data.dataset import Dataset
from repro.data.generator import CorpusBundle, CorpusGenerator
from repro.features.pipeline import FeaturePipeline
from repro.features.transformation import BinaryTransformer
from repro.models.substitute_model import SubstituteModel
from repro.models.target_model import TargetModel
from repro.nn.network import NeuralNetwork
from repro.nn.training import EarlyStopping
from repro.utils.rng import RandomState


def build_target_network(scale: Optional[ScaleProfile] = None,
                         random_state: RandomState = None,
                         n_features: int = N_FEATURES) -> TargetModel:
    """Instantiate an untrained target model sized for ``scale``."""
    scale = scale if scale is not None else default_profile()
    return TargetModel.for_scale(scale, random_state=random_state, n_features=n_features)


def build_substitute_network(scale: Optional[ScaleProfile] = None,
                             random_state: RandomState = None,
                             n_features: int = N_FEATURES,
                             name: str = "substitute_dnn") -> SubstituteModel:
    """Instantiate an untrained Table IV substitute sized for ``scale``."""
    scale = scale if scale is not None else default_profile()
    return SubstituteModel.for_scale(scale, random_state=random_state,
                                     n_features=n_features, name=name)


def train_target_model(bundle: CorpusBundle, scale: Optional[ScaleProfile] = None,
                       random_state: RandomState = 0) -> TargetModel:
    """Train the deployed target DNN on the corpus training split."""
    scale = scale if scale is not None else default_profile()
    model = build_target_network(scale, random_state=random_state,
                                 n_features=bundle.train.n_features)
    model.fit(bundle.train, bundle.validation,
              epochs=scale.target_epochs, batch_size=scale.batch_size,
              learning_rate=scale.learning_rate, random_state=random_state)
    return model


def train_substitute_model(attacker_data: Dataset, validation: Optional[Dataset] = None,
                           scale: Optional[ScaleProfile] = None,
                           random_state: RandomState = 1,
                           name: str = "substitute_dnn") -> SubstituteModel:
    """Train the Table IV substitute on the attacker's own featurised data.

    The paper trains with Adam, learning rate ``1e-3`` and batch size 256
    for 1000 epochs; the scale profile supplies equivalent (smaller) values
    for the synthetic corpus.
    """
    scale = scale if scale is not None else default_profile()
    model = build_substitute_network(scale, random_state=random_state,
                                     n_features=attacker_data.n_features, name=name)
    model.fit(attacker_data, validation,
              epochs=scale.substitute_epochs, batch_size=scale.batch_size,
              learning_rate=scale.learning_rate, random_state=random_state)
    return model


def train_binary_substitute_model(generator: CorpusGenerator,
                                  n_clean: int, n_malware: int,
                                  scale: Optional[ScaleProfile] = None,
                                  random_state: RandomState = 2) -> Tuple[SubstituteModel, FeaturePipeline]:
    """Train the second grey-box substitute: binary (presence/absence) features.

    This attacker knows the API names but not the target's count
    transformation, so they build their own pipeline with a
    :class:`~repro.features.transformation.BinaryTransformer` and train the
    Table IV architecture on it.  Returns the model together with the
    attacker's pipeline (needed to featurise candidate samples consistently).
    """
    scale = scale if scale is not None else default_profile()
    pipeline = FeaturePipeline(catalog=generator.catalog, transformer=BinaryTransformer())
    attacker_data = generator.generate_attacker_corpus(
        n_clean, n_malware, pipeline=pipeline, name="attacker_binary")
    model = train_substitute_model(attacker_data, scale=scale,
                                   random_state=random_state,
                                   name="substitute_binary_dnn")
    return model, pipeline
