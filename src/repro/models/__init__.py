"""Detector models: the proprietary-style target DNN and the attacker's substitutes."""

from repro.models.factory import (
    build_substitute_network,
    build_target_network,
    train_binary_substitute_model,
    train_substitute_model,
    train_target_model,
)
from repro.models.substitute_model import SUBSTITUTE_LAYER_SIZES, SubstituteModel
from repro.models.target_model import TARGET_LAYER_SIZES, TargetModel

__all__ = [
    "TargetModel",
    "TARGET_LAYER_SIZES",
    "SubstituteModel",
    "SUBSTITUTE_LAYER_SIZES",
    "build_target_network",
    "build_substitute_network",
    "train_target_model",
    "train_substitute_model",
    "train_binary_substitute_model",
]
