"""Shared wrapper around a trained detector network.

Both the target model and the substitute models expose the same surface:
probability / hard-label prediction, malware confidence scores, detection
rate on a batch, and persistence.  Keeping the interface identical is what
makes the transfer harness, the defenses and the evaluation code work on
either model unchanged.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from repro.config import CLASS_MALWARE
from repro.data.dataset import Dataset
from repro.exceptions import NotFittedError
from repro.nn.metrics import ClassificationReport, detection_rate
from repro.nn.network import NeuralNetwork
from repro.nn.optimizers import Adam
from repro.nn.training import EarlyStopping, Trainer, TrainingHistory
from repro.utils.rng import RandomState


class DetectorModel:
    """A malware detector backed by a :class:`~repro.nn.network.NeuralNetwork`."""

    def __init__(self, network: NeuralNetwork, name: str = "detector") -> None:
        self.network = network
        self.name = name
        self.history: Optional[TrainingHistory] = None

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def fit(self, train: Dataset, validation: Optional[Dataset] = None,
            epochs: int = 10, batch_size: int = 256, learning_rate: float = 1e-3,
            random_state: RandomState = None,
            early_stopping: Optional[EarlyStopping] = None) -> TrainingHistory:
        """Train the underlying network on ``train`` (optionally with validation)."""
        trainer = Trainer(
            self.network,
            optimizer=Adam(learning_rate=learning_rate),
            batch_size=batch_size,
            epochs=epochs,
            early_stopping=early_stopping,
            random_state=random_state,
        )
        x_val = validation.features if validation is not None else None
        y_val = validation.labels if validation is not None else None
        self.history = trainer.fit(train.features, train.labels, x_val, y_val)
        return self.history

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called (or weights were loaded)."""
        return self.history is not None

    # ------------------------------------------------------------------ #
    # Prediction
    # ------------------------------------------------------------------ #
    def predict(self, features: np.ndarray) -> np.ndarray:
        """Hard class decisions (0 clean, 1 malware)."""
        return self.network.predict(features)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Class-probability rows."""
        return self.network.predict_proba(features)

    def malware_confidence(self, features: np.ndarray) -> np.ndarray:
        """Malware-class probability per sample (the engine's confidence)."""
        return self.network.malware_score(features)

    def detection_rate(self, features: np.ndarray) -> float:
        """Fraction of the batch flagged as malware."""
        return detection_rate(self.predict(features), positive_class=CLASS_MALWARE)

    def report(self, dataset: Dataset) -> ClassificationReport:
        """Confusion-matrix rates on a dataset."""
        return ClassificationReport.from_predictions(dataset.labels,
                                                     self.predict(dataset.features))

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, path: str | Path) -> Path:
        """Persist the underlying network."""
        return self.network.save(path)

    @classmethod
    def load(cls, path: str | Path, name: str = "detector") -> "DetectorModel":
        """Restore a detector from a network bundle."""
        model = cls.__new__(cls)
        DetectorModel.__init__(model, NeuralNetwork.load(path), name=name)
        model.history = TrainingHistory()
        return model

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r}, sizes={self.network.layer_sizes})"
