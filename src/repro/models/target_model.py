"""The target model: the deployed ML malware engine under attack.

The paper's target is a proprietary 4-layer fully-connected DNN trained on
millions of samples; only its depth is disclosed.  We reproduce that shape —
four layers of nodes (input, two hidden, output) — trained on the synthetic
corpus.  It consumes the 491-dimensional normalised count features.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config import N_FEATURES, ScaleProfile
from repro.models.base import DetectorModel
from repro.nn.network import NeuralNetwork
from repro.utils.rng import RandomState

#: Paper-scale layer widths for the 4-layer target DNN (input, 2 hidden, output).
TARGET_LAYER_SIZES = (N_FEATURES, 1024, 512, 2)


class TargetModel(DetectorModel):
    """The deployed detector (defender-owned, attacker-unknown in grey-box)."""

    def __init__(self, layer_sizes: Optional[Sequence[int]] = None,
                 dropout: float = 0.1, random_state: RandomState = None,
                 name: str = "target_dnn") -> None:
        sizes = list(layer_sizes) if layer_sizes is not None else list(TARGET_LAYER_SIZES)
        network = NeuralNetwork.mlp(sizes, activation="relu", dropout=dropout,
                                    name=name, random_state=random_state)
        super().__init__(network, name=name)

    @classmethod
    def for_scale(cls, scale: ScaleProfile, random_state: RandomState = None,
                  n_features: int = N_FEATURES) -> "TargetModel":
        """Build a target whose hidden widths are scaled for ``scale``."""
        sizes = [n_features,
                 scale.scaled_hidden(TARGET_LAYER_SIZES[1]),
                 scale.scaled_hidden(TARGET_LAYER_SIZES[2]),
                 2]
        return cls(layer_sizes=sizes, random_state=random_state)
