"""Persistent on-disk cache for expensive experiment artifacts.

Every experiment process used to retrain the target, substitute and defended
models — and regenerate the corpus — from scratch before it could measure
anything.  :class:`ArtifactCache` persists those artifacts to disk, keyed by
a content hash of everything that determines them (scale profile, master
seed, compute dtype, artifact kind, plus any extra configuration), so warm
runs of the CLI, the examples and the benchmark harness skip straight to the
measurement.

Layout and invalidation rules
-----------------------------
Artifacts live under ``<root>/<kind>/<key>/`` where ``root`` defaults to the
``REPRO_CACHE_DIR`` environment variable, falling back to
``~/.cache/repro-dsn2019``.  The ``key`` is the first 16 hex digits of the
SHA-256 of the canonical JSON encoding of the key components, which always
include:

* ``schema`` — :data:`CACHE_SCHEMA_VERSION`, bumped whenever the stored
  format or the *meaning* of an artifact changes (a bump orphans every old
  entry rather than risking stale loads);
* the artifact ``kind`` (``corpus``, ``target``, ``substitute``, ...);
* the full scale-profile field dict, the master seed and the compute dtype
  (models trained under ``float32`` and ``float64`` are distinct artifacts).

A directory only counts as cached once its ``COMPLETE`` marker file exists,
and entries are published *atomically*: builds write into a hidden
``.tmp-<key>-...`` sibling directory (meta and marker included) that is
renamed over the final path in one ``os.replace`` — a crash mid-save leaves
only a temp directory that the next builder sweeps away, never a
half-written entry, and a concurrent reader sees either the old complete
entry or the new one, nothing in between.  Builds additionally serialise on
a per-entry ``<key>.lock`` file, so N parallel workers warm-starting from
one cache directory cannot corrupt or double-build an entry: the first
builder builds while the rest wait, then load the published result.  Every
complete entry also
carries a ``cache-meta.json`` stamping the ``repro`` package version that
wrote it: entries written under a *different* package version (or lacking
the stamp entirely, i.e. written before versions were stamped) are refused
on load and transparently rebuilt, so upgrading the package can never serve
stale artifacts trained by old code.  Beyond that there is no staleness
check: if you change generator or training *code* within a version in a way
that should invalidate entries, bump :data:`CACHE_SCHEMA_VERSION` or call
:meth:`ArtifactCache.clear`.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, List, Optional, TypeVar

try:  # POSIX advisory locks; the portable spin-lock below covers the rest.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro.exceptions import SerializationError
from repro.obs.instrument import current as current_instrumentation
from repro.reliability.faults import FaultInjector, maybe_fire
from repro.version import __version__

_ENV_CACHE_VAR = "REPRO_CACHE_DIR"
_MARKER = "COMPLETE"
_ENTRY_META = "cache-meta.json"
_LOCK_SUFFIX = ".lock"
_TMP_PREFIX = ".tmp-"
#: How often a waiter re-polls a held per-entry lock (seconds).
_LOCK_POLL_S = 0.05

#: Bump when the on-disk format or artifact semantics change.
CACHE_SCHEMA_VERSION = 1

T = TypeVar("T")


def default_cache_root() -> Path:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-dsn2019``."""
    env = os.environ.get(_ENV_CACHE_VAR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-dsn2019"


def _canonical(value: Any) -> Any:
    """Reduce key components to canonical JSON-encodable values."""
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, bool)) or value is None:
        return value
    if isinstance(value, float):
        return float(value)
    if isinstance(value, int):
        return int(value)
    return str(value)


@dataclass(frozen=True)
class CacheEntry:
    """Metadata of one on-disk cache entry (for ``cache-info`` style listings)."""

    kind: str
    key: str
    path: Path
    complete: bool
    package_version: Optional[str]
    created_at: Optional[float]
    size_bytes: int
    n_files: int

    @property
    def compatible(self) -> bool:
        """Whether this entry was written by the running package version."""
        return self.complete and self.package_version == __version__


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` is a live process (signal-0 probe)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - pid exists, owned elsewhere
        return True
    except OSError:  # pragma: no cover - defensive
        return True
    return True


def _dir_stats(path: Path) -> tuple[int, int]:
    """(total size in bytes, file count) of a directory tree."""
    size = 0
    n_files = 0
    for child in path.rglob("*"):
        if child.is_file():
            size += child.stat().st_size
            n_files += 1
    return size, n_files


class ArtifactCache:
    """Content-addressed directory store for experiment artifacts.

    Parameters
    ----------
    root:
        Cache directory (created lazily).  Defaults to
        :func:`default_cache_root`.
    lock_timeout_s:
        How long a builder waits for another process/thread building the
        same entry before giving up with :class:`SerializationError`.  The
        default comfortably covers a full model-training build.
    injector:
        Optional :class:`~repro.reliability.faults.FaultInjector`; when
        armed, every acquired build lock announces itself at the
        ``cache.lock`` site (an ``exit`` fault there simulates a lock
        holder dying without releasing).

    The holder's PID is recorded inside every lock file.  On the ``flock``
    path that is pure observability (the kernel releases the lock when its
    holder dies), but on the portable ``O_EXCL`` spin path it is what lets
    waiters *sweep* a dead holder's stale lock file immediately — counted
    in :attr:`n_stale_locks_swept` — instead of stalling until
    ``lock_timeout_s``.
    """

    def __init__(self, root: Optional[str | Path] = None,
                 lock_timeout_s: float = 600.0,
                 injector: Optional[FaultInjector] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.lock_timeout_s = float(lock_timeout_s)
        self.injector = injector
        #: Dead-owner lock files removed instead of waited on (spin path).
        self.n_stale_locks_swept = 0

    # ------------------------------------------------------------------ #
    # Keys and paths
    # ------------------------------------------------------------------ #
    def key_for(self, kind: str, **components: Any) -> str:
        """Deterministic 16-hex-digit key for ``kind`` + ``components``."""
        payload = {"schema": CACHE_SCHEMA_VERSION, "kind": kind,
                   **{k: _canonical(v) for k, v in components.items()}}
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def path_for(self, kind: str, key: str) -> Path:
        """Directory that holds (or will hold) the artifact."""
        return self.root / kind / key

    def _entry_metadata(self, path: Path) -> Optional[dict]:
        """The entry's ``cache-meta.json`` contents, or None when absent/corrupt."""
        meta_path = path / _ENTRY_META
        if not meta_path.exists():
            return None
        try:
            return json.loads(meta_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None

    def has(self, kind: str, key: str) -> bool:
        """Whether a complete, version-compatible artifact is cached.

        An entry written under a different ``repro`` package version (or
        with no version stamp at all) does not count: serving it would risk
        loading artifacts whose semantics changed between releases, so it is
        treated as a miss and rebuilt by :meth:`load_or_build`.
        """
        path = self.path_for(kind, key)
        if not (path / _MARKER).exists():
            return False
        meta = self._entry_metadata(path)
        return meta is not None and meta.get("package_version") == __version__

    # ------------------------------------------------------------------ #
    # Per-entry locking
    # ------------------------------------------------------------------ #
    def _lock_path(self, kind: str, key: str) -> Path:
        return self.root / kind / f"{key}{_LOCK_SUFFIX}"

    @staticmethod
    def _read_lock_pid(lock_path: Path) -> Optional[int]:
        """The holder PID recorded in ``lock_path`` (None when unreadable).

        An empty file is a holder caught between creating the lock and
        stamping its PID — it must be treated as live, never swept.
        """
        try:
            text = lock_path.read_text(encoding="ascii").strip()
            return int(text) if text else None
        except (OSError, ValueError):
            return None

    @staticmethod
    def _stamp_lock_pid(fd: int) -> None:
        """Record the holder's PID inside the (held) lock file."""
        try:
            os.ftruncate(fd, 0)
            os.pwrite(fd, str(os.getpid()).encode("ascii"), 0)
        except OSError:  # pragma: no cover - observability only
            pass

    def _sweep_stale_lock(self, lock_path: Path, holder: int) -> bool:
        """Remove a lock file whose recorded holder is dead.

        The rename is the single-winner step: of N waiters that all saw the
        dead PID, exactly one moves the file aside and deletes it; the rest
        fall through and race for a fresh ``O_EXCL`` create.
        """
        stale_path = lock_path.with_name(
            f"{lock_path.name}.stale-{uuid.uuid4().hex[:8]}")
        try:
            os.rename(lock_path, stale_path)
        except OSError:
            return False
        stale_path.unlink(missing_ok=True)
        self.n_stale_locks_swept += 1
        return True

    @contextmanager
    def _entry_lock(self, kind: str, key: str):
        """Hold the per-entry build lock (exclusive across processes/threads).

        Uses a blocking-with-timeout ``flock`` poll where available (the
        lock dies with its holder, so crashes never wedge the cache) and an
        ``O_EXCL`` spin lock elsewhere.  On the spin path a lock file whose
        recorded holder PID is dead is swept immediately rather than waited
        on until ``lock_timeout_s``.  A contended ``flock`` lock file is
        never deleted — waiters hold fds to its inode.
        """
        lock_path = self._lock_path(kind, key)
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        deadline = time.monotonic() + self.lock_timeout_s
        if fcntl is not None:
            fd = os.open(lock_path, os.O_CREAT | os.O_RDWR, 0o644)
            try:
                while True:
                    try:
                        fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                        break
                    except OSError:
                        if time.monotonic() >= deadline:
                            raise SerializationError(
                                f"timed out after {self.lock_timeout_s:.0f}s "
                                f"waiting for the build lock on {kind}/{key} "
                                f"(held by another worker?)") from None
                        time.sleep(_LOCK_POLL_S)
                self._stamp_lock_pid(fd)
                maybe_fire(self.injector, "cache.lock", kind=kind, key=key)
                try:
                    yield
                finally:
                    fcntl.flock(fd, fcntl.LOCK_UN)
            finally:
                os.close(fd)
        else:
            while True:
                try:
                    fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_RDWR)
                    break
                except FileExistsError:
                    holder = self._read_lock_pid(lock_path)
                    if holder is not None and not _pid_alive(holder):
                        if self._sweep_stale_lock(lock_path, holder):
                            continue
                    if time.monotonic() >= deadline:
                        raise SerializationError(
                            f"timed out after {self.lock_timeout_s:.0f}s "
                            f"waiting for the build lock on {kind}/{key}; "
                            f"remove {lock_path} if its holder crashed") from None
                    time.sleep(_LOCK_POLL_S)
            try:
                self._stamp_lock_pid(fd)
                maybe_fire(self.injector, "cache.lock", kind=kind, key=key)
                yield
            finally:
                os.close(fd)
                lock_path.unlink(missing_ok=True)

    def _sweep_stale_tmp(self, kind: str, key: str) -> None:
        """Remove leftover temp directories of crashed builds (lock held)."""
        kind_dir = self.root / kind
        if not kind_dir.exists():
            return
        for stale in kind_dir.glob(f"{_TMP_PREFIX}{key}-*"):
            shutil.rmtree(stale, ignore_errors=True)

    # ------------------------------------------------------------------ #
    # Store / retrieve
    # ------------------------------------------------------------------ #
    def load_or_build(self, kind: str, key: str,
                      build: Callable[[], T],
                      save: Callable[[T, Path], None],
                      load: Callable[[Path], T]) -> T:
        """Return the cached artifact, building and persisting it on a miss.

        Builds are safe under concurrency: writers serialise on a per-entry
        lock file (so the artifact is built exactly once even when N
        workers miss simultaneously — late arrivals load what the winner
        published), ``save(artifact, path)`` writes into a hidden temp
        directory, and the entry — meta and ``COMPLETE`` marker included —
        is published with one atomic rename.  Interrupted saves therefore
        leave no partial entry behind.  A corrupt entry (marker present but
        ``load`` failing) is evicted and rebuilt rather than propagated, as
        is an entry stamped with a different package version.

        When an ambient :class:`~repro.obs.Instrumentation` is active,
        warm loads count in ``cache.hits``, builds in ``cache.misses``,
        and each build's wall time lands in the ``cache.build_seconds``
        histogram (tagged with the artifact kind in the event stream).
        """
        obs = current_instrumentation()
        path = self.path_for(kind, key)
        if self.has(kind, key):
            try:
                artifact = load(path)
                if obs is not None:
                    obs.count("cache.hits", kind=kind)
                return artifact
            except (SerializationError, OSError, KeyError, ValueError):
                self.invalidate(kind, key)
        with self._entry_lock(kind, key):
            # Another worker may have published while we waited on the lock.
            if self.has(kind, key):
                try:
                    artifact = load(path)
                    if obs is not None:
                        obs.count("cache.hits", kind=kind)
                    return artifact
                except (SerializationError, OSError, KeyError, ValueError):
                    self.invalidate(kind, key)
            self._sweep_stale_tmp(kind, key)
            if obs is not None:
                obs.count("cache.misses", kind=kind)
                build_started = time.monotonic()
            artifact = build()
            if obs is not None:
                obs.observe("cache.build_seconds",
                            time.monotonic() - build_started, kind=kind)
            tmp_path = path.parent / (f"{_TMP_PREFIX}{key}-{os.getpid()}-"
                                      f"{uuid.uuid4().hex[:8]}")
            try:
                tmp_path.mkdir(parents=True)
                save(artifact, tmp_path)
                (tmp_path / _ENTRY_META).write_text(
                    json.dumps({"package_version": __version__,
                                "schema": CACHE_SCHEMA_VERSION,
                                "kind": kind, "key": key,
                                "created_at": time.time()},
                               indent=2, sort_keys=True),
                    encoding="utf-8")
                (tmp_path / _MARKER).touch()
                if path.exists():
                    shutil.rmtree(path)
                os.replace(tmp_path, path)
            except BaseException:
                shutil.rmtree(tmp_path, ignore_errors=True)
                raise
        return artifact

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def entries(self) -> List[CacheEntry]:
        """Every entry on disk (complete or not), sorted by kind then key."""
        found: List[CacheEntry] = []
        if not self.root.exists():
            return found
        for kind_dir in sorted(self.root.iterdir()):
            if not kind_dir.is_dir():
                continue
            for entry_dir in sorted(kind_dir.iterdir()):
                # Lock files are plain files; in-flight builds live in hidden
                # ``.tmp-*`` directories.  Neither is an entry.
                if not entry_dir.is_dir() or entry_dir.name.startswith("."):
                    continue
                meta = self._entry_metadata(entry_dir) or {}
                size_bytes, n_files = _dir_stats(entry_dir)
                found.append(CacheEntry(
                    kind=kind_dir.name,
                    key=entry_dir.name,
                    path=entry_dir,
                    complete=(entry_dir / _MARKER).exists(),
                    package_version=meta.get("package_version"),
                    created_at=meta.get("created_at"),
                    size_bytes=size_bytes,
                    n_files=n_files,
                ))
        return found

    def total_size_bytes(self) -> int:
        """Total on-disk footprint of every cache entry."""
        return sum(entry.size_bytes for entry in self.entries())

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def invalidate(self, kind: str, key: str) -> bool:
        """Drop one cached artifact; returns whether anything was removed."""
        path = self.path_for(kind, key)
        if path.exists():
            shutil.rmtree(path)
            return True
        return False

    def clear(self) -> int:
        """Drop every cached artifact; returns the number of entries removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for kind_dir in self.root.iterdir():
            if not kind_dir.is_dir():
                continue
            for entry in kind_dir.iterdir():
                if entry.is_dir():
                    shutil.rmtree(entry)
                    # Hidden ``.tmp-*`` build leftovers are swept but are
                    # not cache entries.
                    removed += not entry.name.startswith(".")
                # Per-entry ``.lock`` files are deliberately left in place:
                # unlinking one a concurrent builder holds via flock would
                # let a second builder lock a fresh inode at the same path,
                # breaking the build-exactly-once guarantee.  They are a few
                # bytes each and invisible to entries().
            if not any(kind_dir.iterdir()):
                kind_dir.rmdir()
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArtifactCache(root={str(self.root)!r})"
