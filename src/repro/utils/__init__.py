"""Shared utilities: seeded RNG handling, validation helpers, serialization,
and the persistent experiment-artifact cache."""

from repro.utils.artifact_cache import ArtifactCache, default_cache_root
from repro.utils.rng import SeedSequence, as_rng, spawn_rngs
from repro.utils.validation import (
    check_fraction,
    check_in_unit_interval,
    check_matrix,
    check_labels,
    check_positive_int,
    check_probability_matrix,
)

__all__ = [
    "ArtifactCache",
    "default_cache_root",
    "SeedSequence",
    "as_rng",
    "spawn_rngs",
    "check_fraction",
    "check_in_unit_interval",
    "check_matrix",
    "check_labels",
    "check_positive_int",
    "check_probability_matrix",
]
