"""Lightweight serialization helpers (JSON metadata + ``.npz`` arrays).

Models and feature pipelines are persisted as a directory containing a
``meta.json`` file with hyper-parameters plus an ``arrays.npz`` file with
weights.  Keeping the format human-inspectable makes experiment artifacts
easy to audit, and avoids pickle's arbitrary-code-execution hazard.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro.exceptions import SerializationError

_META_FILENAME = "meta.json"
_ARRAYS_FILENAME = "arrays.npz"


def _jsonable(value: Any) -> Any:
    """Convert numpy scalars/arrays into JSON-serialisable equivalents."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def save_bundle(path: str | Path, meta: Mapping[str, Any],
                arrays: Mapping[str, np.ndarray]) -> Path:
    """Persist ``meta`` and ``arrays`` under directory ``path``.

    Returns the directory path.  Overwrites existing files at that location.
    """
    directory = Path(path)
    directory.mkdir(parents=True, exist_ok=True)
    try:
        with open(directory / _META_FILENAME, "w", encoding="utf-8") as handle:
            json.dump(_jsonable(dict(meta)), handle, indent=2, sort_keys=True)
        np.savez_compressed(directory / _ARRAYS_FILENAME,
                            **{key: np.asarray(val) for key, val in arrays.items()})
    except (OSError, TypeError, ValueError) as exc:
        raise SerializationError(f"failed to save bundle to {directory}: {exc}") from exc
    return directory


def load_bundle(path: str | Path) -> tuple[dict[str, Any], dict[str, np.ndarray]]:
    """Load a bundle written by :func:`save_bundle`."""
    directory = Path(path)
    meta_path = directory / _META_FILENAME
    arrays_path = directory / _ARRAYS_FILENAME
    if not meta_path.exists() or not arrays_path.exists():
        raise SerializationError(
            f"{directory} does not contain a bundle ({_META_FILENAME} + {_ARRAYS_FILENAME})"
        )
    try:
        with open(meta_path, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
        with np.load(arrays_path) as data:
            arrays = {key: data[key] for key in data.files}
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        raise SerializationError(f"failed to load bundle from {directory}: {exc}") from exc
    return meta, arrays
