"""Input validation helpers shared across the library.

Validation errors surface as :class:`repro.exceptions.ShapeError` or
:class:`repro.exceptions.ConfigurationError` so that user mistakes are
reported with actionable messages instead of deep numpy tracebacks.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError


def check_positive_int(value: int, name: str, minimum: int = 1) -> int:
    """Validate that ``value`` is an integer ``>= minimum`` and return it."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    if value < minimum:
        raise ConfigurationError(f"{name} must be >= {minimum}, got {value}")
    return int(value)


def check_fraction(value: float, name: str, inclusive_low: bool = True,
                   inclusive_high: bool = True) -> float:
    """Validate that ``value`` lies in the unit interval and return it."""
    if not isinstance(value, (int, float, np.floating, np.integer)) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a number in [0, 1], got {value!r}")
    value = float(value)
    low_ok = value >= 0.0 if inclusive_low else value > 0.0
    high_ok = value <= 1.0 if inclusive_high else value < 1.0
    if not (low_ok and high_ok):
        raise ConfigurationError(f"{name} must lie in the unit interval, got {value}")
    return value


def check_matrix(x: np.ndarray, name: str = "X",
                 n_features: Optional[int] = None) -> np.ndarray:
    """Validate a 2-D float matrix ``(n_samples, n_features)`` and return it.

    1-D inputs are promoted to a single-row matrix, matching the convenience
    behaviour users expect when scoring a single sample.
    """
    arr = np.asarray(x, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ShapeError(f"{name} must be 2-D (n_samples, n_features), got shape {arr.shape}")
    if arr.shape[0] == 0:
        raise ShapeError(f"{name} must contain at least one sample")
    if n_features is not None and arr.shape[1] != n_features:
        raise ShapeError(
            f"{name} has {arr.shape[1]} features but {n_features} were expected"
        )
    if not np.all(np.isfinite(arr)):
        raise ShapeError(f"{name} contains NaN or infinite values")
    return arr


def check_labels(y: np.ndarray, n_samples: Optional[int] = None,
                 name: str = "y", n_classes: int = 2) -> np.ndarray:
    """Validate an integer label vector in ``[0, n_classes)`` and return it."""
    arr = np.asarray(y)
    if arr.ndim != 1:
        raise ShapeError(f"{name} must be 1-D, got shape {arr.shape}")
    if n_samples is not None and arr.shape[0] != n_samples:
        raise ShapeError(
            f"{name} has {arr.shape[0]} entries but {n_samples} samples were provided"
        )
    if arr.size and not np.issubdtype(arr.dtype, np.integer):
        if not np.all(arr == np.round(arr)):
            raise ShapeError(f"{name} must contain integer class labels")
        arr = arr.astype(np.int64)
    arr = arr.astype(np.int64)
    if arr.size and (arr.min() < 0 or arr.max() >= n_classes):
        raise ShapeError(
            f"{name} must contain labels in [0, {n_classes}), "
            f"got range [{arr.min()}, {arr.max()}]"
        )
    return arr


def check_in_unit_interval(x: np.ndarray, name: str = "X", atol: float = 1e-9) -> np.ndarray:
    """Validate that every entry of ``x`` lies in ``[0, 1]`` (within ``atol``)."""
    arr = np.asarray(x, dtype=np.float64)
    if arr.size and (arr.min() < -atol or arr.max() > 1.0 + atol):
        raise ShapeError(
            f"{name} must have entries in [0, 1]; observed range "
            f"[{arr.min():.6g}, {arr.max():.6g}]"
        )
    return np.clip(arr, 0.0, 1.0)


def check_probability_matrix(p: np.ndarray, name: str = "probabilities",
                             atol: float = 1e-6) -> np.ndarray:
    """Validate that rows of ``p`` are probability distributions."""
    arr = np.asarray(p, dtype=np.float64)
    if arr.ndim != 2:
        raise ShapeError(f"{name} must be 2-D, got shape {arr.shape}")
    if np.any(arr < -atol) or np.any(arr > 1 + atol):
        raise ShapeError(f"{name} entries must lie in [0, 1]")
    sums = arr.sum(axis=1)
    if not np.allclose(sums, 1.0, atol=max(atol, 1e-4)):
        raise ShapeError(f"{name} rows must sum to 1 (max deviation {np.abs(sums - 1).max():.3g})")
    return arr
