"""Deterministic top-k selection for the attack hot paths.

Every greedy attack step ranks all 491 features and keeps only the best
handful, so a full ``np.argsort`` (O(d log d) per sample per step) is wasted
work.  :func:`top_k_indices` selects the k best entries with
``np.argpartition`` (O(d)) and then orders only the selected slice.

Determinism contract: ties are broken towards the *lower* feature index.
``np.argpartition`` alone leaves both the boundary choice and the slice
order unspecified, so the partitioned indices are first restored to
ascending index order and then ranked with a stable sort — the same result
``np.argsort(-scores, kind="stable")`` would produce, at a fraction of the
cost when ``k << d``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["top_k_indices", "kth_largest"]


def top_k_indices(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest entries per row, best first.

    Parameters
    ----------
    scores:
        Array of shape ``(n, d)`` (or ``(d,)``, treated as one row).  ``-inf``
        entries are valid and sort last.
    k:
        Number of entries to select per row (``1 <= k``; values ``>= d``
        degrade to a full stable sort).

    Returns
    -------
    Array of shape ``(n, k)`` (or ``(k,)`` for 1-D input): per-row indices of
    the largest scores in descending score order, ties broken towards the
    lower index.
    """
    scores = np.asarray(scores)
    squeeze = scores.ndim == 1
    if squeeze:
        scores = scores.reshape(1, -1)
    d = scores.shape[1]
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if k >= d:
        order = np.argsort(-scores, axis=1, kind="stable")[:, :k]
    else:
        # An argpartition slice alone would pick an *arbitrary* member of a
        # tie group straddling the k boundary.  Select explicitly instead:
        # everything strictly above the k-th largest value, then the
        # lowest-index entries tied with it, which is exactly the stable
        # argsort's choice (and what trajectory-replay parity relies on).
        thresholds = kth_largest(scores, k)[:, None]
        above = scores > thresholds
        fill = (k - above.sum(axis=1))[:, None]
        tied = scores == thresholds
        selected = above | (tied & (np.cumsum(tied, axis=1) <= fill))
        cols = np.nonzero(selected)[1].reshape(scores.shape[0], k)
        rank = np.argsort(-np.take_along_axis(scores, cols, axis=1),
                          axis=1, kind="stable")
        order = np.take_along_axis(cols, rank, axis=1)
    return order[0] if squeeze else order


def kth_largest(values: np.ndarray, k: int) -> np.ndarray:
    """The ``k``-th largest value per row (1-based), via O(d) partition.

    Equivalent to ``np.sort(values, axis=1)[:, -k]`` — the threshold the
    FGSM budget filter keeps components against — without the full sort.
    """
    values = np.asarray(values)
    if values.ndim != 2:
        raise ValueError(f"values must be 2-D, got shape {values.shape}")
    if not 1 <= k <= values.shape[1]:
        raise ValueError(f"k must be in [1, {values.shape[1]}], got {k}")
    return np.partition(values, values.shape[1] - k, axis=1)[:, values.shape[1] - k]
