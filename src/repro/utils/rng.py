"""Deterministic random-number-generator helpers.

Every stochastic component in the library (dataset generation, weight
initialisation, dropout, attacks that sample, train/test splitting) accepts
either an integer seed or a :class:`numpy.random.Generator`.  Centralising
the conversion in :func:`as_rng` keeps experiments reproducible end to end:
a single integer seed at the experiment level is fanned out into independent
child generators with :func:`spawn_rngs` so that changing the number of draws
in one component does not perturb another component's stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Union

import numpy as np

RandomState = Union[None, int, np.random.Generator]


def as_rng(random_state: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``random_state``.

    Parameters
    ----------
    random_state:
        ``None`` for a non-deterministic generator, an ``int`` seed, or an
        existing generator (returned unchanged).
    """
    if random_state is None:
        return np.random.default_rng()
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, (int, np.integer)):
        if random_state < 0:
            raise ValueError(f"seed must be non-negative, got {random_state}")
        return np.random.default_rng(int(random_state))
    raise TypeError(
        "random_state must be None, an int seed, or a numpy Generator; "
        f"got {type(random_state).__name__}"
    )


def spawn_rngs(random_state: RandomState, count: int) -> list[np.random.Generator]:
    """Split ``random_state`` into ``count`` independent child generators."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    rng = as_rng(random_state)
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(seed)) for seed in seeds]


@dataclass
class SeedSequence:
    """Named, reproducible seed fan-out used by experiment drivers.

    An experiment takes a single ``master_seed`` and derives per-component
    seeds by name.  Derivation is order-independent: the child seed only
    depends on ``(master_seed, name)``, so adding a new component never
    changes the seeds of existing components.
    """

    master_seed: int = 0
    _cache: dict[str, int] = field(default_factory=dict, repr=False)

    def seed_for(self, name: str) -> int:
        """Return a deterministic 63-bit seed derived from ``name``."""
        if name not in self._cache:
            # Stable string hash (Python's hash() is salted per process).
            digest = np.uint64(1469598103934665603)  # FNV-1a offset basis
            prime = np.uint64(1099511628211)
            with np.errstate(over="ignore"):
                for byte in f"{self.master_seed}:{name}".encode("utf-8"):
                    digest = np.uint64(digest ^ np.uint64(byte)) * prime
            self._cache[name] = int(digest % np.uint64(2**63 - 1))
        return self._cache[name]

    def rng_for(self, name: str) -> np.random.Generator:
        """Return a generator seeded for ``name``."""
        return np.random.default_rng(self.seed_for(name))

    def rngs_for(self, names: Iterable[str]) -> dict[str, np.random.Generator]:
        """Return one generator per name."""
        return {name: self.rng_for(name) for name in names}
