"""Table schemas of the append-only analytics store.

Every table is a flat numpy structured dtype plus a per-column default.
Segments written by old package versions may lack columns that were added
later; :func:`upgrade` widens such a segment on *read* by filling the new
columns with their defaults, so the store never needs a migration step and
two writers on different versions can share one store root.

Tables
------
``runs``
    One row per recorded run (a ``serve`` replay, an imported benchmark).
``verdicts``
    One row per scored request of a serve run — the verdict stream the
    drift report is computed from.
``metrics``
    Flat (name, kind, value) samples per run: latency quantiles,
    throughput, and every instrumentation counter/gauge/histogram stat.
``events``
    Raw :class:`~repro.obs.ObsEvent` records (span timings included) for
    runs recorded with an event sink attached.
``spans``
    One row per finished request-scoped span — the flat form of the trace
    trees :class:`~repro.obs.SpanCollector` assembles, so "where did
    request X spend its time?" is answerable from the store alone.
``alerts``
    One row per SLO burn-rate alert fired during a run, with the burn
    rates and attainment observed at fire time.
``curves``
    (x, y) samples of named per-run curves — e.g. a γ-sweep's
    evasion-rate curve — so sweep shapes can be diffed across runs.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.exceptions import AnalyticsError

__all__ = ["TABLES", "table_dtype", "empty_table", "make_rows", "upgrade",
           "row_dicts"]

#: ``table -> ((column, numpy-dtype, default), ...)``.  Append new columns
#: at the end with a sensible default; never re-type or remove a column —
#: that is the whole schema-evolution contract.
TABLES: Dict[str, Tuple[Tuple[str, str, object], ...]] = {
    "runs": (
        ("run_id", "U64", ""),
        ("kind", "U16", "serve"),
        ("model_version", "U24", ""),
        ("scenario", "U64", ""),
        ("started_at", "f8", 0.0),
        ("n_requests", "i8", 0),
        ("elapsed_s", "f8", 0.0),
    ),
    "verdicts": (
        ("run_id", "U64", ""),
        ("request_id", "U64", ""),
        ("traffic", "U16", "other"),
        ("label", "i4", -1),
        ("probability", "f8", 0.0),
        ("latency_ms", "f8", 0.0),
        ("status", "U16", "ok"),
        ("model_version", "U24", ""),
    ),
    "metrics": (
        ("run_id", "U64", ""),
        ("name", "U80", ""),
        ("kind", "U16", "counter"),
        ("value", "f8", 0.0),
    ),
    "events": (
        ("run_id", "U64", ""),
        ("kind", "U16", ""),
        ("name", "U80", ""),
        ("value", "f8", 0.0),
        ("span_id", "i8", 0),
        ("parent_id", "i8", 0),
        ("trace_id", "U64", ""),
    ),
    "spans": (
        ("run_id", "U64", ""),
        ("trace_id", "U64", ""),
        ("span_id", "i8", 0),
        ("parent_id", "i8", 0),
        ("name", "U80", ""),
        ("duration_ms", "f8", 0.0),
        ("error", "i1", 0),
        ("worker", "i4", -1),
    ),
    "alerts": (
        ("run_id", "U64", ""),
        ("slo", "U64", ""),
        ("on_breach", "U16", "alert"),
        ("fast_burn", "f8", 0.0),
        ("slow_burn", "f8", 0.0),
        ("attainment", "f8", 1.0),
    ),
    "curves": (
        ("run_id", "U64", ""),
        ("curve", "U32", ""),
        ("x", "f8", 0.0),
        ("y", "f8", 0.0),
    ),
}


def _columns(table: str) -> Tuple[Tuple[str, str, object], ...]:
    try:
        return TABLES[table]
    except KeyError:
        raise AnalyticsError(
            f"unknown analytics table {table!r}; "
            f"known: {', '.join(sorted(TABLES))}") from None


def table_dtype(table: str) -> np.dtype:
    """The current structured dtype of ``table``."""
    return np.dtype([(name, dtype) for name, dtype, _ in _columns(table)])


def empty_table(table: str) -> np.ndarray:
    """A zero-row array carrying ``table``'s current schema."""
    return np.empty(0, dtype=table_dtype(table))


def make_rows(table: str, rows: Sequence[Mapping[str, object]]) -> np.ndarray:
    """Build a structured array for ``table`` from row dicts.

    Missing keys take the column default; unknown keys are an error (they
    would be silently dropped otherwise, which always hides a typo).
    """
    columns = _columns(table)
    known = {name for name, _, _ in columns}
    array = np.empty(len(rows), dtype=table_dtype(table))
    for index, row in enumerate(rows):
        unknown = set(row) - known
        if unknown:
            raise AnalyticsError(
                f"unknown column(s) {sorted(unknown)} for table {table!r}")
        for name, _, default in columns:
            array[name][index] = row.get(name, default)
    return array


def upgrade(table: str, array: np.ndarray) -> np.ndarray:
    """Widen ``array`` (possibly an old segment) to the current schema.

    Columns the segment already has are copied; columns added since it was
    written are filled with their defaults.  Columns the current schema no
    longer knows are dropped (forward compatibility for rolled-back
    readers).
    """
    if array.dtype == table_dtype(table):
        return array
    existing = set(array.dtype.names or ())
    upgraded = np.empty(len(array), dtype=table_dtype(table))
    for name, _, default in _columns(table):
        if name in existing:
            upgraded[name] = array[name]
        else:
            upgraded[name] = default
    return upgraded


def row_dicts(array: np.ndarray) -> List[Dict[str, object]]:
    """Plain-python row dicts of a structured array (for JSON surfaces)."""
    names = array.dtype.names or ()
    return [{name: record[name].item() for name in names} for record in array]
