"""The append-only columnar store behind ``cli report``.

:class:`AnalyticsStore` persists runs as numpy structured-array *segments*:
every :meth:`~AnalyticsStore.append` writes one immutable ``.npy`` file
under ``<root>/<table>/`` and never touches an existing one.  Publication
follows the artifact-cache discipline — write to a ``.tmp-`` sibling, then
``os.replace`` — and segment names embed ``pid`` plus a random suffix, so
two fleet workers (or two concurrent CLI invocations) can record into the
same store without locks: the worst interleaving yields two complete
segments, never a torn file.

Reads are schema-evolution tolerant: :meth:`~AnalyticsStore.scan` upgrades
segments written before a column existed by filling the new column's
default (see :mod:`repro.analytics.schema`).

The query API is deliberately small — :meth:`query` (column filters),
:meth:`group_by` (single-pass aggregation) and :meth:`top_k` — and runs on
pure numpy.  When the optional ``duckdb`` dependency is importable,
:meth:`sql` exposes the same segments to ad-hoc SQL; the package never
*requires* it.
"""

from __future__ import annotations

import os
import uuid
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.analytics import schema
from repro.exceptions import AnalyticsError

try:  # pragma: no cover - exercised only where duckdb is installed
    import duckdb  # type: ignore

    _HAS_DUCKDB = True
except ImportError:  # pragma: no cover - the baked image has no duckdb
    duckdb = None
    _HAS_DUCKDB = False

__all__ = ["AnalyticsStore"]

_TMP_PREFIX = ".tmp-"

#: Aggregations :meth:`AnalyticsStore.group_by` understands.
_AGGREGATIONS: Dict[str, Callable[[np.ndarray], float]] = {
    "mean": lambda values: float(values.mean()),
    "sum": lambda values: float(values.sum()),
    "min": lambda values: float(values.min()),
    "max": lambda values: float(values.max()),
    "count": lambda values: int(values.size),
}

#: A ``where`` value: exact match, an explicit set, or a predicate over the
#: whole column (vectorised, must return a boolean mask).
Condition = Union[object, Sequence[object], Callable[[np.ndarray], np.ndarray]]


class AnalyticsStore:
    """Columnar run/verdict/metric storage rooted at one directory."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def append(self, table: str,
               rows: Union[np.ndarray, Sequence[Mapping[str, object]]]) -> Optional[Path]:
        """Persist ``rows`` as one new immutable segment of ``table``.

        ``rows`` may be row dicts (missing columns take their defaults) or
        a ready structured array.  Empty input writes nothing.  Returns the
        published segment path (``None`` for empty input).
        """
        if isinstance(rows, np.ndarray):
            array = schema.upgrade(table, rows)
        else:
            array = schema.make_rows(table, list(rows))
        if len(array) == 0:
            return None
        table_dir = self.root / table
        table_dir.mkdir(parents=True, exist_ok=True)
        name = f"seg-{os.getpid()}-{uuid.uuid4().hex[:12]}.npy"
        tmp_path = table_dir / f"{_TMP_PREFIX}{name}"
        final_path = table_dir / name
        with open(tmp_path, "wb") as handle:
            np.save(handle, array, allow_pickle=False)
        os.replace(tmp_path, final_path)  # atomic publication
        return final_path

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def segments(self, table: str) -> List[Path]:
        """The published segment files of ``table`` (sorted, stable)."""
        schema.table_dtype(table)  # validate the table name
        table_dir = self.root / table
        if not table_dir.is_dir():
            return []
        return sorted(path for path in table_dir.glob("seg-*.npy")
                      if not path.name.startswith(_TMP_PREFIX))

    def scan(self, table: str) -> np.ndarray:
        """Every row of ``table`` across all segments (current schema).

        Old segments missing newer columns are upgraded in memory; an
        empty or missing table scans to a zero-row array with the current
        schema, so downstream filters never special-case emptiness.
        """
        parts = []
        for path in self.segments(table):
            try:
                array = np.load(path, allow_pickle=False)
            except (OSError, ValueError) as error:
                raise AnalyticsError(
                    f"unreadable analytics segment {path}: {error}") from error
            parts.append(schema.upgrade(table, array))
        if not parts:
            return schema.empty_table(table)
        return np.concatenate(parts)

    def query(self, table: str,
              where: Optional[Mapping[str, Condition]] = None,
              columns: Optional[Sequence[str]] = None) -> np.ndarray:
        """Filtered scan: rows matching every ``where`` condition.

        Conditions combine with AND.  A scalar matches exactly, a
        list/tuple/set matches membership, and a callable receives the
        whole column and must return a boolean mask.
        """
        array = self.scan(table)
        if where:
            mask = np.ones(len(array), dtype=bool)
            for column, condition in where.items():
                if column not in (array.dtype.names or ()):
                    raise AnalyticsError(
                        f"unknown column {column!r} for table {table!r}")
                values = array[column]
                if callable(condition):
                    mask &= np.asarray(condition(values), dtype=bool)
                elif isinstance(condition, (list, tuple, set, frozenset)):
                    mask &= np.isin(values, list(condition))
                else:
                    mask &= values == condition
            array = array[mask]
        if columns is not None:
            array = array[list(columns)]
        return array

    def group_by(self, table: str, key: Union[str, Sequence[str]],
                 value: str, agg: str = "mean",
                 where: Optional[Mapping[str, Condition]] = None) -> Dict:
        """``{key: agg(value)}`` over the (optionally filtered) table.

        ``key`` may be one column name or several (tuple keys in the
        result).  ``agg`` is one of ``mean``/``sum``/``min``/``max``/
        ``count``.
        """
        if agg not in _AGGREGATIONS:
            raise AnalyticsError(
                f"unknown aggregation {agg!r}; "
                f"known: {', '.join(sorted(_AGGREGATIONS))}")
        array = self.query(table, where=where)
        keys = [key] if isinstance(key, str) else list(key)
        result: Dict = {}
        if len(array) == 0:
            return result
        reduce = _AGGREGATIONS[agg]
        key_view = array[keys[0]] if len(keys) == 1 else array[keys]
        groups, inverse = np.unique(key_view, return_inverse=True)
        values = array[value]
        for index, group in enumerate(groups):
            label = group.item() if len(keys) == 1 else tuple(
                group[name].item() for name in keys)
            result[label] = reduce(values[inverse == index])
        return result

    def top_k(self, table: str, value: str, k: int = 5,
              where: Optional[Mapping[str, Condition]] = None,
              largest: bool = True) -> np.ndarray:
        """The ``k`` rows with the largest (or smallest) ``value``."""
        if k < 1:
            raise AnalyticsError(f"top_k needs k >= 1, got {k}")
        array = self.query(table, where=where)
        if len(array) == 0:
            return array
        order = np.argsort(array[value], kind="stable")
        if largest:
            order = order[::-1]
        return array[order[:k]]

    # ------------------------------------------------------------------ #
    # Run helpers
    # ------------------------------------------------------------------ #
    def run_ids(self) -> List[str]:
        """Distinct recorded run ids (sorted)."""
        runs = self.scan("runs")
        return sorted(set(runs["run_id"].tolist()))

    def runs(self) -> np.ndarray:
        """One row per run id, earliest ``started_at`` wins on duplicates.

        Re-recording a run id (a crashed CLI retried, two fleet workers
        double-reporting) appends a duplicate ``runs`` row; the merge rule
        here makes that harmless rather than corrupting cross-run reports.
        """
        runs = self.scan("runs")
        if len(runs) == 0:
            return runs
        order = np.argsort(runs["started_at"], kind="stable")
        runs = runs[order]
        _, first = np.unique(runs["run_id"], return_index=True)
        deduped = runs[np.sort(first)]
        return deduped[np.argsort(deduped["started_at"], kind="stable")]

    # ------------------------------------------------------------------ #
    # Optional SQL surface
    # ------------------------------------------------------------------ #
    @property
    def has_sql(self) -> bool:
        """Whether the optional DuckDB-backed :meth:`sql` path is usable."""
        return _HAS_DUCKDB

    def sql(self, query: str):  # pragma: no cover - needs optional duckdb
        """Run ad-hoc SQL over the store's tables (requires ``duckdb``).

        Every table is registered under its name; returns DuckDB's
        ``fetchall`` rows.  Raises :class:`AnalyticsError` when duckdb is
        not installed — the numpy query API above is the supported
        fallback.
        """
        if not _HAS_DUCKDB:
            raise AnalyticsError(
                "the SQL query path needs the optional 'duckdb' package; "
                "use query()/group_by()/top_k() instead")
        connection = duckdb.connect(":memory:")
        try:
            for table in schema.TABLES:
                array = self.scan(table)
                columns = {name: array[name] for name in array.dtype.names}
                connection.register(table, columns)
            return connection.execute(query).fetchall()
        finally:
            connection.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AnalyticsStore(root={str(self.root)!r})"
