"""Cross-run analysis: the engine behind ``cli report``.

:func:`build_report` reads **recorded** runs out of an
:class:`~repro.analytics.store.AnalyticsStore` — it never re-runs scoring —
and computes what an operator of the detector wants first:

* **evasion-rate drift** — the fraction of adversarial traffic scored
  clean, per serve run, with first→last deltas per model version and the
  spread across versions;
* **p99 latency regressions** — per-run ``latency.p99_ms`` with the delta
  against the previous serve run (a regression beyond
  :data:`P99_REGRESSION_THRESHOLD` is flagged);
* **shed / fallback / error rates** — degradation counters relative to
  request volume;
* **SLO alerts** — burn-rate breaches recorded in the ``alerts`` table,
  grouped per SLO with the worst observed fast burn.

:func:`render_report` prints the summary-first text view: headline lines
up top, the per-run tables after.  Sections a store cannot support yet
(no adversarial verdicts, fewer than two runs with latency metrics) say
so explicitly instead of silently vanishing — a runs-only store renders
a diagnosis, not a blank report.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.analytics.store import AnalyticsStore
from repro.config import CLASS_CLEAN

__all__ = ["P99_REGRESSION_THRESHOLD", "build_report", "render_report"]

#: Relative p99 increase (vs the previous serve run) flagged as a regression.
P99_REGRESSION_THRESHOLD = 0.10


def _metric_map(store: AnalyticsStore, names: List[str]) -> Dict[str, Dict[str, float]]:
    """``{run_id: {name: value}}`` for the requested metric names."""
    rows = store.query("metrics", where={"name": names})
    result: Dict[str, Dict[str, float]] = {}
    for row in rows:
        result.setdefault(row["run_id"].item(), {})[row["name"].item()] = \
            float(row["value"])
    return result


def _evasion_rates(store: AnalyticsStore) -> Dict[str, Optional[float]]:
    """Per-run fraction of scored adversarial traffic labelled clean."""
    adv = store.query("verdicts", where={"traffic": "adv", "status": "ok"})
    rates: Dict[str, Optional[float]] = {}
    if len(adv) == 0:
        return rates
    evaded = (adv["label"] == CLASS_CLEAN).astype(np.float64)
    run_ids, inverse = np.unique(adv["run_id"], return_inverse=True)
    for index, run_id in enumerate(run_ids):
        rates[run_id.item()] = float(evaded[inverse == index].mean())
    return rates


def build_report(store: AnalyticsStore) -> Dict[str, object]:
    """The cross-run report as a JSON-able dict (see the module docs)."""
    runs = store.runs()
    serve_mask = runs["kind"] == "serve" if len(runs) else np.zeros(0, bool)
    serve_runs = runs[serve_mask]
    bench_runs = runs[~serve_mask] if len(runs) else runs

    metric_names = ["latency.p99_ms", "throughput.rps", "serve.sheds",
                    "serve.fallbacks", "serve.errors"]
    metrics = _metric_map(store, metric_names)
    evasion = _evasion_rates(store)

    per_run: List[Dict[str, object]] = []
    previous_p99: Optional[float] = None
    for row in serve_runs:  # store.runs() is already started_at-ordered
        run_id = row["run_id"].item()
        run_metrics = metrics.get(run_id, {})
        n_requests = int(row["n_requests"])
        p99 = run_metrics.get("latency.p99_ms")
        p99_delta = None
        if p99 is not None and previous_p99 is not None and previous_p99 > 0:
            p99_delta = (p99 - previous_p99) / previous_p99
        record: Dict[str, object] = {
            "run_id": run_id,
            "model_version": row["model_version"].item(),
            "started_at": float(row["started_at"]),
            "n_requests": n_requests,
            "evasion_rate": evasion.get(run_id),
            "p99_ms": p99,
            "p99_delta": p99_delta,
            "p99_regression": (p99_delta is not None
                               and p99_delta > P99_REGRESSION_THRESHOLD),
            "rps": run_metrics.get("throughput.rps"),
            "shed_rate": (run_metrics.get("serve.sheds", 0.0) / n_requests
                          if n_requests else 0.0),
            "fallback_rate": (run_metrics.get("serve.fallbacks", 0.0) / n_requests
                              if n_requests else 0.0),
            "errors": run_metrics.get("serve.errors", 0.0),
        }
        if p99 is not None:
            previous_p99 = p99
        per_run.append(record)

    # First→last evasion drift per model version, then the spread across
    # versions (the "did the new model version get weaker?" question).
    drift_by_version: Dict[str, Dict[str, object]] = {}
    for record in per_run:
        if record["evasion_rate"] is None:
            continue
        version = record["model_version"] or "(unversioned)"
        entry = drift_by_version.setdefault(version, {
            "first": record["evasion_rate"], "last": record["evasion_rate"],
            "first_run": record["run_id"], "last_run": record["run_id"],
            "n_runs": 0})
        entry["last"] = record["evasion_rate"]
        entry["last_run"] = record["run_id"]
        entry["n_runs"] += 1
    for entry in drift_by_version.values():
        entry["delta"] = float(entry["last"]) - float(entry["first"])
    version_means = {version: (entry["first"] + entry["last"]) / 2.0
                     for version, entry in drift_by_version.items()}
    across_versions = None
    if len(version_means) >= 2:
        ordered = sorted(version_means.items(), key=lambda item: item[1])
        across_versions = {
            "lowest": {"model_version": ordered[0][0], "rate": ordered[0][1]},
            "highest": {"model_version": ordered[-1][0], "rate": ordered[-1][1]},
            "spread": ordered[-1][1] - ordered[0][1],
        }

    regressions = [record for record in per_run if record["p99_regression"]]
    worst_regression = (max(regressions, key=lambda r: r["p99_delta"])
                        if regressions else None)

    alerts = store.scan("alerts")
    alerts_by_slo: Dict[str, Dict[str, object]] = {}
    for row in alerts:
        entry = alerts_by_slo.setdefault(row["slo"].item(), {
            "n_alerts": 0, "worst_fast_burn": 0.0,
            "on_breach": row["on_breach"].item()})
        entry["n_alerts"] += 1
        entry["worst_fast_burn"] = max(float(entry["worst_fast_burn"]),
                                       float(row["fast_burn"]))

    n_with_p99 = sum(1 for record in per_run if record["p99_ms"] is not None)

    return {
        "n_runs": int(len(runs)),
        "n_serve_runs": int(len(serve_runs)),
        "n_bench_runs": int(len(bench_runs)),
        "model_versions": sorted({record["model_version"]
                                  for record in per_run
                                  if record["model_version"]}),
        "serve_runs": per_run,
        "evasion_drift": {"by_model_version": drift_by_version,
                          "across_versions": across_versions},
        "p99": {"threshold": P99_REGRESSION_THRESHOLD,
                "n_regressions": len(regressions),
                "n_runs_with_p99": n_with_p99,
                "worst": worst_regression},
        "alerts": {"n_alerts": int(len(alerts)),
                   "by_slo": alerts_by_slo},
        "bench_runs": [row["run_id"].item() for row in bench_runs],
    }


def _fmt(value, pattern: str = "{:.3f}", missing: str = "-") -> str:
    return missing if value is None else pattern.format(value)


def render_report(report: Dict[str, object], store_root: str = "") -> str:
    """Summary-first text rendering of :func:`build_report`'s payload."""
    from repro.evaluation.reports import format_table

    lines = [f"analytics report{f' — store {store_root}' if store_root else ''}"]
    if report["n_runs"] == 0:
        lines.append("(no recorded runs — record one with "
                     "`serve --store DIR` or `report --import-bench`)")
        return "\n".join(lines)
    lines.append(f"{report['n_runs']} recorded runs "
                 f"({report['n_serve_runs']} serve, "
                 f"{report['n_bench_runs']} bench), "
                 f"{len(report['model_versions'])} model versions")

    drift = report["evasion_drift"]
    if not drift["by_model_version"]:
        lines.append("evasion drift: skipped — no adversarial verdicts "
                     "recorded (serve with adversarial traffic to populate)")
    for version, entry in sorted(drift["by_model_version"].items()):
        lines.append(
            f"evasion drift [{version}]: {entry['first']:.3f} → "
            f"{entry['last']:.3f} ({entry['delta']:+.3f} over "
            f"{entry['n_runs']} runs)")
    across = drift["across_versions"]
    if across is not None:
        lines.append(
            f"evasion across versions: {across['lowest']['model_version']} "
            f"{across['lowest']['rate']:.3f} vs "
            f"{across['highest']['model_version']} "
            f"{across['highest']['rate']:.3f} "
            f"(spread {across['spread']:+.3f})")

    p99 = report["p99"]
    if p99["worst"] is not None:
        worst = p99["worst"]
        lines.append(
            f"p99 regressions: {p99['n_regressions']} runs over "
            f"+{p99['threshold']:.0%} — worst {worst['run_id']} "
            f"({worst['p99_delta']:+.1%} to {worst['p99_ms']:.3f}ms)")
    elif p99.get("n_runs_with_p99", report["n_serve_runs"]) < 2:
        lines.append("p99 regressions: skipped — need at least 2 serve runs "
                     "with latency metrics")
    else:
        lines.append(f"p99 regressions: none over +{p99['threshold']:.0%}")

    alerts = report.get("alerts") or {"n_alerts": 0, "by_slo": {}}
    if alerts["n_alerts"]:
        parts = ", ".join(
            f"{slo} ×{entry['n_alerts']} "
            f"(worst burn {entry['worst_fast_burn']:.1f}, "
            f"{entry['on_breach']})"
            for slo, entry in sorted(alerts["by_slo"].items()))
        lines.append(f"slo alerts: {alerts['n_alerts']} fired — {parts}")
    else:
        lines.append("slo alerts: none recorded")

    if report["serve_runs"]:
        rows = [[record["run_id"], record["model_version"] or "-",
                 str(record["n_requests"]),
                 _fmt(record["evasion_rate"]),
                 _fmt(record["p99_ms"]),
                 (_fmt(record["p99_delta"], "{:+.1%}")
                  + (" !" if record["p99_regression"] else "")),
                 _fmt(record["rps"], "{:,.0f}"),
                 f"{record['shed_rate']:.3f}",
                 f"{record['fallback_rate']:.3f}"]
                for record in report["serve_runs"]]
        lines.append("")
        lines.append(format_table(
            ["run", "model version", "reqs", "evasion", "p99 ms",
             "Δp99", "req/s", "shed", "fallback"],
            rows, title="serve runs (oldest first)"))
    if report["bench_runs"]:
        lines.append("")
        lines.append("imported benchmarks: " + ", ".join(report["bench_runs"]))
    return "\n".join(lines)
