"""repro.analytics — the append-only columnar run store and report engine.

The second half of the observability layer (:mod:`repro.obs` is the
first): persists verdict streams, latency samples, instrumentation
snapshots and sweep curves per ``(run_id, model_version, scenario)``, and
answers cross-run questions — evasion-rate drift, per-model-version
deltas, shed/fallback rates, p99 regressions — from the records alone,
without re-running any scoring.

* :mod:`repro.analytics.schema` — table schemas with evolution-on-read;
* :mod:`repro.analytics.store` — :class:`AnalyticsStore`: atomic-rename
  numpy segments, lock-free concurrent writers, filter/group-by/top-k
  queries (DuckDB SQL when importable, never required);
* :mod:`repro.analytics.ingest` — serve-run recording and idempotent
  ``BENCH_*.json`` import;
* :mod:`repro.analytics.report` — the summary-first ``cli report``.
"""

from repro.analytics import schema
from repro.analytics.ingest import import_bench, record_serve_run, traffic_kind
from repro.analytics.report import (
    P99_REGRESSION_THRESHOLD,
    build_report,
    render_report,
)
from repro.analytics.store import AnalyticsStore

__all__ = [
    "schema",
    "AnalyticsStore",
    "record_serve_run",
    "import_bench",
    "traffic_kind",
    "build_report",
    "render_report",
    "P99_REGRESSION_THRESHOLD",
]
