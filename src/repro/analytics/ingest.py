"""Recording runs into the analytics store.

Two producers feed the store:

* :func:`record_serve_run` — called by ``cli serve --store`` (and tests)
  with the verdict stream, the :class:`~repro.serving.stats
  .ThroughputReport` and, when instrumentation was on, the
  :meth:`~repro.obs.Instrumentation.snapshot` payload.  One call appends
  one ``runs`` row plus the per-request ``verdicts`` rows, flat
  ``metrics`` samples, raw ``events``, and — when the snapshot carries
  traced spans or SLO alerts — queryable ``spans`` / ``alerts`` rows.
* :func:`import_bench` — folds existing ``BENCH_*.json`` files (the
  benchmark harness's artifacts) into ``bench:*`` runs, so throughput
  history lands next to serve history without re-running anything.
  Importing is idempotent per run id.

Request ids encode their traffic kind as a prefix (``clean-…``,
``malware-…``, ``adv-…`` — see :mod:`repro.serving.loadgen`);
:func:`traffic_kind` recovers it so the drift report can compute evasion
rates over adversarial traffic only.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.analytics.store import AnalyticsStore
from repro.exceptions import AnalyticsError

__all__ = ["traffic_kind", "record_serve_run", "import_bench"]

_TRAFFIC_KINDS = ("clean", "malware", "adv")


def traffic_kind(request_id: str) -> str:
    """The traffic class encoded in a load-generator request id."""
    prefix = str(request_id).split("-", 1)[0]
    return prefix if prefix in _TRAFFIC_KINDS else "other"


def _verdict_fields(verdict) -> Mapping[str, object]:
    if isinstance(verdict, Mapping):
        return verdict
    return verdict.as_dict()


def record_serve_run(store: AnalyticsStore, run_id: str, verdicts: Sequence,
                     model_version: str = "",
                     scenario: str = "",
                     started_at: Optional[float] = None,
                     throughput=None,
                     obs_snapshot: Optional[Mapping[str, object]] = None,
                     curves: Optional[Mapping[str, Sequence]] = None) -> str:
    """Append one serve run (verdicts + metrics + events) to ``store``.

    ``verdicts`` are :class:`~repro.serving.service.Verdict` objects or
    their ``as_dict`` payloads.  ``throughput`` (a ``ThroughputReport``)
    becomes ``latency.*`` / ``throughput.rps`` metric samples;
    ``obs_snapshot`` contributes every counter/gauge/histogram stat and the
    buffered event stream.  ``curves`` maps curve names to ``(x, y)`` pair
    sequences.  Returns ``run_id``.
    """
    if not run_id:
        raise AnalyticsError("run_id must be a non-empty string")
    started_at = float(time.time() if started_at is None else started_at)
    verdict_rows: List[Dict[str, object]] = []
    for verdict in verdicts:
        fields = _verdict_fields(verdict)
        verdict_rows.append({
            "run_id": run_id,
            "request_id": fields["request_id"],
            "traffic": traffic_kind(fields["request_id"]),
            "label": int(fields["label"]),
            "probability": float(fields["malware_probability"]),
            "latency_ms": float(fields["latency_ms"]),
            "status": fields["status"],
            "model_version": fields.get("model_version", model_version),
        })
    if not model_version and verdict_rows:
        model_version = str(verdict_rows[0]["model_version"])

    metric_rows: List[Dict[str, object]] = []
    elapsed_s = 0.0
    if throughput is not None:
        summary = (throughput if isinstance(throughput, Mapping)
                   else throughput.as_dict())
        elapsed_s = float(summary.get("elapsed_s", 0.0))
        metric_rows.append({"run_id": run_id, "name": "throughput.rps",
                            "kind": "latency",
                            "value": float(summary["requests_per_s"])})
        for stat in ("mean_ms", "p50_ms", "p95_ms", "p99_ms", "max_ms"):
            metric_rows.append({"run_id": run_id, "name": f"latency.{stat}",
                                "kind": "latency",
                                "value": float(summary[stat])})
    event_rows: List[Dict[str, object]] = []
    if obs_snapshot:
        metrics = obs_snapshot.get("metrics") or {}
        for name, value in (metrics.get("counters") or {}).items():
            metric_rows.append({"run_id": run_id, "name": name,
                                "kind": "counter", "value": float(value)})
        for name, payload in (metrics.get("gauges") or {}).items():
            metric_rows.append({"run_id": run_id, "name": f"{name}.max",
                                "kind": "gauge",
                                "value": float(payload["max"])})
        for name, payload in (metrics.get("histograms") or {}).items():
            for stat in ("count", "mean", "max"):
                metric_rows.append({"run_id": run_id,
                                    "name": f"{name}.{stat}",
                                    "kind": "histogram",
                                    "value": float(payload[stat])})
        for event in obs_snapshot.get("events") or []:
            event_rows.append({"run_id": run_id, "kind": event["kind"],
                               "name": event["name"],
                               "value": float(event["value"]),
                               "span_id": int(event.get("span_id", 0)),
                               "parent_id": int(event.get("parent_id", 0)),
                               "trace_id": str(event.get("trace_id", ""))})
    span_rows, alert_rows = _trace_rows(run_id, obs_snapshot)

    curve_rows: List[Dict[str, object]] = []
    for curve_name, pairs in (curves or {}).items():
        for x, y in pairs:
            curve_rows.append({"run_id": run_id, "curve": curve_name,
                               "x": float(x), "y": float(y)})

    store.append("runs", [{
        "run_id": run_id, "kind": "serve", "model_version": model_version,
        "scenario": scenario, "started_at": started_at,
        "n_requests": len(verdict_rows), "elapsed_s": elapsed_s,
    }])
    store.append("verdicts", verdict_rows)
    store.append("metrics", metric_rows)
    store.append("events", event_rows)
    store.append("spans", span_rows)
    store.append("alerts", alert_rows)
    store.append("curves", curve_rows)
    return run_id


def _trace_rows(run_id: str, obs_snapshot: Optional[Mapping[str, object]]):
    """Derive ``spans`` / ``alerts`` rows from a snapshot's event stream.

    Spans carrying a ``trace_id`` (the per-request hops) land in the
    ``spans`` table in queryable form; ``alert`` events (the SLO monitor's
    burn-rate breaches) land in ``alerts`` with the burn rates and
    attainment read from their tags.
    """
    span_rows: List[Dict[str, object]] = []
    alert_rows: List[Dict[str, object]] = []
    for event in (obs_snapshot or {}).get("events") or []:
        kind = event.get("kind")
        tags = event.get("tags") or {}
        if kind == "span" and event.get("trace_id"):
            worker = tags.get("worker")
            span_rows.append({
                "run_id": run_id,
                "trace_id": str(event["trace_id"]),
                "span_id": int(event.get("span_id", 0)),
                "parent_id": int(event.get("parent_id", 0)),
                "name": str(event.get("name", "")),
                "duration_ms": float(event.get("value", 0.0)) * 1000.0,
                "error": int(bool(tags.get("error"))),
                "worker": int(worker) if worker is not None else -1,
            })
        elif kind == "alert":
            alert_rows.append({
                "run_id": run_id,
                "slo": str(event.get("name", "")),
                "on_breach": str(tags.get("on_breach", "alert")),
                "fast_burn": float(event.get("value", 0.0)),
                "slow_burn": float(tags.get("slow_burn", 0.0)),
                "attainment": float(tags.get("attainment", 1.0)),
            })
    return span_rows, alert_rows


def import_bench(store: AnalyticsStore,
                 paths: Iterable[Union[str, Path]]) -> List[str]:
    """Fold ``BENCH_*.json`` files into ``bench:*`` runs (idempotent).

    Each file becomes one run (``run_id = bench:<stem>``) whose numeric
    leaves flatten into ``metrics`` rows named ``<section>.<metric>``.  A
    run id already present in the store is skipped, so re-importing after
    new benchmark runs only picks up new files.  Returns the imported run
    ids.
    """
    existing = set(store.run_ids())
    imported: List[str] = []
    for path in sorted(Path(p) for p in paths):
        run_id = f"bench:{path.stem}"
        if run_id in existing:
            continue
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as error:
            raise AnalyticsError(
                f"unreadable benchmark file {path}: {error}") from error
        if not isinstance(payload, Mapping):
            raise AnalyticsError(
                f"{path} must hold a JSON object of benchmark sections")
        metric_rows = []
        for section, metrics in payload.items():
            if not isinstance(metrics, Mapping):
                continue
            for name, value in metrics.items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    metric_rows.append({
                        "run_id": run_id, "name": f"{section}.{name}",
                        "kind": "bench", "value": float(value)})
        store.append("runs", [{
            "run_id": run_id, "kind": "bench", "scenario": path.stem,
            "started_at": path.stat().st_mtime, "n_requests": 0,
        }])
        store.append("metrics", metric_rows)
        existing.add(run_id)
        imported.append(run_id)
    return imported
