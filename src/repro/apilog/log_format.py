"""API-log record format, rendering and parsing.

Table II of the paper shows an excerpt of a monitored-execution log::

    GetStartupInfoW:7FEFDD39C37 ()"61468"
    GetProcAddress:13FBC34D6 (76D30000,"FlsAlloc")"61484"

i.e. ``<ApiName>:<ReturnAddress> (<args>)"<ThreadId>"``.  This module defines
:class:`LogRecord` for one such line, :class:`ApiLog` for a whole execution
trace (with the sample / OS metadata the generator attaches), and round-trip
``format_line`` / ``parse_line`` helpers used by the feature-extraction
pipeline and by the tests that validate the substrate end to end.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import SandboxError

_LINE_RE = re.compile(
    r"^(?P<api>[A-Za-z_][A-Za-z0-9_]*)"      # API name
    r":(?P<address>[0-9A-Fa-f]+)"             # return address (hex)
    r"\s+\((?P<args>.*)\)"                    # argument list (possibly empty)
    r"\"(?P<thread>\d+)\"$"                   # thread identifier
)


@dataclass(frozen=True)
class LogRecord:
    """A single monitored API call."""

    api: str
    address: int
    args: Tuple[str, ...] = ()
    thread_id: int = 0

    def canonical_api(self) -> str:
        """The lower-cased API name used for feature lookup."""
        return self.api.lower()


def format_line(record: LogRecord) -> str:
    """Render a :class:`LogRecord` in the Table II line format."""
    args = ",".join(record.args)
    return f"{record.api}:{record.address:X} ({args})\"{record.thread_id}\""


def parse_line(line: str) -> LogRecord:
    """Parse a Table II-format line back into a :class:`LogRecord`.

    Raises
    ------
    SandboxError
        If the line does not match the expected format.
    """
    match = _LINE_RE.match(line.strip())
    if match is None:
        raise SandboxError(f"malformed log line: {line!r}")
    args_text = match.group("args")
    args = tuple(part for part in args_text.split(",") if part) if args_text else ()
    return LogRecord(
        api=match.group("api"),
        address=int(match.group("address"), 16),
        args=args,
        thread_id=int(match.group("thread")),
    )


@dataclass
class ApiLog:
    """A full execution trace for one sample.

    Attributes
    ----------
    sample_id:
        Identifier of the source sample that produced the log.
    os_version:
        The simulated OS the sample was executed on (``win7``, ``winxp``,
        ``win8``, ``win10``) — the paper's "mixed data".
    label:
        Ground-truth class of the sample (0 clean, 1 malware) when known.
    records:
        Ordered monitored API calls.
    """

    sample_id: str
    os_version: str
    label: Optional[int] = None
    records: List[LogRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self.records)

    def append(self, record: LogRecord) -> None:
        """Append one record to the trace."""
        self.records.append(record)

    def api_names(self) -> List[str]:
        """Lower-cased API name of every record, in call order."""
        return [record.canonical_api() for record in self.records]

    def api_counts(self) -> dict[str, int]:
        """Raw per-API call counts (the detector's raw feature values)."""
        counts: dict[str, int] = {}
        for record in self.records:
            key = record.canonical_api()
            counts[key] = counts.get(key, 0) + 1
        return counts

    def to_text(self) -> str:
        """Render the whole log in the Table II text format."""
        return "\n".join(format_line(record) for record in self.records)

    @classmethod
    def from_text(cls, text: str, sample_id: str = "unknown",
                  os_version: str = "win7", label: Optional[int] = None) -> "ApiLog":
        """Parse a Table II-format text blob into an :class:`ApiLog`."""
        records = [parse_line(line) for line in text.splitlines() if line.strip()]
        return cls(sample_id=sample_id, os_version=os_version, label=label,
                   records=records)

    def head(self, n: int = 10) -> "ApiLog":
        """A copy containing only the first ``n`` records (for excerpts)."""
        return ApiLog(sample_id=self.sample_id, os_version=self.os_version,
                      label=self.label, records=list(self.records[:n]))
