"""Parametric behaviour profiles for clean software and malware families.

The proprietary corpus cannot be redistributed, so the synthetic substrate
describes each *family* of samples (a benign application category or a
malware family) as a :class:`BehaviorProfile`: a set of API-usage groups,
each with an activation probability and a per-API count distribution.
Sampling a profile yields the per-API raw call counts of one concrete sample
— exactly the quantity the feature extractor computes from a real log — and
the sandbox turns the same counts into a Table II-style log when the full
end-to-end path is exercised.

The default library (:func:`default_profile_library`) encodes well-known
behavioural differences between goodware and malware (process injection,
registry persistence, network beaconing, anti-debugging, mass file
encryption, keylogging, ...) with enough overlap that a trained detector
lands near the paper's operating point (TNR ~0.96, TPR ~0.88 on a shifted
test distribution) rather than at a trivially perfect separation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.config import CLASS_CLEAN, CLASS_MALWARE
from repro.exceptions import ConfigurationError
from repro.utils.rng import RandomState, as_rng


@dataclass(frozen=True)
class ApiUsage:
    """Usage statistics of one API inside a behaviour group.

    ``mean_count`` is the expected number of calls when the group is active;
    counts are drawn from a negative-binomial-like mixture so that heavy
    tails (e.g. a packer calling ``virtualalloc`` hundreds of times) occur.
    """

    api: str
    mean_count: float
    dispersion: float = 1.0

    def __post_init__(self) -> None:
        if self.mean_count <= 0:
            raise ConfigurationError(f"mean_count must be positive for {self.api!r}")
        if self.dispersion <= 0:
            raise ConfigurationError(f"dispersion must be positive for {self.api!r}")


@dataclass(frozen=True)
class BehaviorGroup:
    """A coherent group of API calls that activate together.

    Examples: "startup runtime", "registry persistence", "process injection".
    """

    name: str
    activation_probability: float
    usages: Tuple[ApiUsage, ...]

    def __post_init__(self) -> None:
        if not 0.0 <= self.activation_probability <= 1.0:
            raise ConfigurationError(
                f"activation_probability must be in [0, 1] for group {self.name!r}"
            )
        if not self.usages:
            raise ConfigurationError(f"group {self.name!r} has no API usages")


@dataclass(frozen=True)
class BehaviorProfile:
    """A family of samples: a label plus a set of behaviour groups."""

    name: str
    label: int
    groups: Tuple[BehaviorGroup, ...]
    #: Families only present in the independent test corpus model the
    #: distribution shift between the training data (McAfee Labs, Jan-Feb
    #: 2018) and the test data (VirusTotal).
    novel: bool = False

    def __post_init__(self) -> None:
        if self.label not in (CLASS_CLEAN, CLASS_MALWARE):
            raise ConfigurationError(f"label must be 0 or 1, got {self.label}")
        if not self.groups:
            raise ConfigurationError(f"profile {self.name!r} has no behaviour groups")

    def api_names(self) -> List[str]:
        """Every API referenced by the profile (with duplicates removed)."""
        seen: Dict[str, None] = {}
        for group in self.groups:
            for usage in group.usages:
                seen.setdefault(usage.api, None)
        return list(seen)

    def sample_counts(self, rng: np.random.Generator,
                      intensity: float = 1.0) -> Dict[str, int]:
        """Draw the raw API-call counts of one concrete sample.

        Parameters
        ----------
        rng:
            Source of randomness.
        intensity:
            Global multiplier on the expected counts (the sandbox uses this
            to model OS-dependent runtime differences).
        """
        if intensity <= 0:
            raise ConfigurationError(f"intensity must be positive, got {intensity}")
        counts: Dict[str, int] = {}
        for group in self.groups:
            if rng.random() > group.activation_probability:
                continue
            for usage in group.usages:
                mean = usage.mean_count * intensity
                # Gamma-Poisson mixture == negative binomial: heavy-tailed
                # counts with controllable dispersion.
                rate = rng.gamma(shape=usage.dispersion, scale=mean / usage.dispersion)
                count = int(rng.poisson(rate))
                if count > 0:
                    counts[usage.api] = counts.get(usage.api, 0) + count
        return counts


def _usages(entries: Mapping[str, float], dispersion: float = 1.5) -> Tuple[ApiUsage, ...]:
    """Shorthand to build a tuple of :class:`ApiUsage` from ``{api: mean}``."""
    return tuple(ApiUsage(api=api, mean_count=mean, dispersion=dispersion)
                 for api, mean in entries.items())


# --------------------------------------------------------------------------- #
# Shared behaviour groups
# --------------------------------------------------------------------------- #
def _runtime_startup_group(probability: float = 1.0) -> BehaviorGroup:
    """The C-runtime startup sequence visible in Table II."""
    return BehaviorGroup(
        name="runtime_startup",
        activation_probability=probability,
        usages=_usages({
            "getstartupinfow": 2.0,
            "getfiletype": 2.5,
            "getmodulehandlew": 3.0,
            "getprocaddress": 12.0,
            "getstdhandle": 2.0,
            "freeenvironmentstringsw": 1.2,
            "getcpinfo": 1.5,
            "getcommandlinea": 1.2,
            "getcommandlinew": 1.2,
            "heapalloc": 25.0,
            "heapfree": 20.0,
            "tlsgetvalue": 8.0,
            "flsalloc": 1.1,
            "getlasterror": 6.0,
            "multibytetowidechar": 4.0,
            "initializecriticalsection": 3.0,
            "entercriticalsection": 15.0,
            "leavecriticalsection": 15.0,
            "closehandle": 8.0,
        }),
    )


def _gui_group(probability: float) -> BehaviorGroup:
    return BehaviorGroup(
        name="gui",
        activation_probability=probability,
        usages=_usages({
            "createwindowexw": 4.0,
            "registerclassexw": 2.0,
            "showwindow": 3.0,
            "updatewindow": 2.0,
            "getmessagew": 30.0,
            "dispatchmessagew": 28.0,
            "translatemessage": 28.0,
            "defwindowprocw": 20.0,
            "loadiconw": 1.5,
            "loadcursorw": 1.5,
            "getdc": 3.0,
            "releasedc": 3.0,
            "bitblt": 4.0,
            "selectobject": 6.0,
            "deleteobject": 5.0,
            "getsystemmetrics": 4.0,
            "messageboxw": 0.8,
            "peekmessagew": 10.0,
            "waitmessage": 2.0,
            "windowfromdc": 0.7,
        }),
    )


def _file_io_group(probability: float, scale: float = 1.0) -> BehaviorGroup:
    return BehaviorGroup(
        name="file_io",
        activation_probability=probability,
        usages=_usages({
            "createfilew": 6.0 * scale,
            "readfile": 18.0 * scale,
            "writefile": 10.0 * scale,
            "setfilepointer": 8.0 * scale,
            "getfilesize": 3.0 * scale,
            "findfirstfilew": 2.5 * scale,
            "findnextfilew": 9.0 * scale,
            "findclose": 2.5 * scale,
            "getfileattributesw": 5.0 * scale,
            "deletefilew": 0.8 * scale,
            "copyfilew": 0.6 * scale,
            "flushfilebuffers": 1.0 * scale,
            "createdirectoryw": 0.8 * scale,
            "gettemppathw": 0.8 * scale,
        }),
    )


def _registry_read_group(probability: float) -> BehaviorGroup:
    return BehaviorGroup(
        name="registry_read",
        activation_probability=probability,
        usages=_usages({
            "regopenkeyexw": 6.0,
            "regqueryvalueexw": 10.0,
            "regclosekey": 6.0,
            "regenumkeyexw": 3.0,
            "regqueryinfokeyw": 2.0,
        }),
    )


def _network_client_group(probability: float, scale: float = 1.0) -> BehaviorGroup:
    return BehaviorGroup(
        name="network_client",
        activation_probability=probability,
        usages=_usages({
            "socket": 1.5 * scale,
            "connect": 1.5 * scale,
            "send": 4.0 * scale,
            "recv": 5.0 * scale,
            "closesocket": 1.5 * scale,
            "gethostbyname": 1.2 * scale,
            "getaddrinfo": 1.5 * scale,
            "internetopenw": 1.0 * scale,
            "internetconnectw": 1.2 * scale,
            "httpopenrequestw": 1.5 * scale,
            "httpsendrequestw": 1.5 * scale,
            "internetreadfile": 5.0 * scale,
            "internetclosehandle": 1.5 * scale,
        }),
    )


# --------------------------------------------------------------------------- #
# Malware-specific behaviour groups
# --------------------------------------------------------------------------- #
def _process_injection_group(probability: float) -> BehaviorGroup:
    return BehaviorGroup(
        name="process_injection",
        activation_probability=probability,
        usages=_usages({
            "openprocess": 2.5,
            "virtualallocex": 2.0,
            "writeprocessmemory": 3.5,
            "createremotethread": 1.5,
            "virtualprotectex": 1.5,
            "readprocessmemory": 2.0,
            "createtoolhelp32snapshot": 1.5,
            "process32firstw": 1.2,
            "process32nextw": 12.0,
            "queueuserapc": 0.8,
            "setthreadcontext": 0.7,
            "ntwritevirtualmemory": 1.5,
            "ntmapviewofsection": 0.9,
        }, dispersion=1.2),
    )


def _persistence_group(probability: float) -> BehaviorGroup:
    return BehaviorGroup(
        name="registry_persistence",
        activation_probability=probability,
        usages=_usages({
            "regcreatekeyexw": 2.5,
            "regsetvalueexw": 3.0,
            "regsetvalueexa": 1.5,
            "regclosekey": 3.0,
            "createservicew": 0.8,
            "openscmanagerw": 0.9,
            "startservicew": 0.7,
            "copyfilew": 1.5,
            "movefileexw": 1.0,
            "shgetspecialfolderpathw": 1.2,
            "writeprivateprofilestringa": 0.9,
            "writeprivateprofilestringw": 0.7,
        }, dispersion=1.2),
    )


def _beaconing_group(probability: float) -> BehaviorGroup:
    return BehaviorGroup(
        name="c2_beaconing",
        activation_probability=probability,
        usages=_usages({
            "internetopena": 1.2,
            "internetconnecta": 2.0,
            "httpopenrequesta": 3.0,
            "httpsendrequesta": 3.0,
            "internetreadfile": 6.0,
            "urldownloadtofilea": 1.0,
            "gethostbyname": 2.0,
            "socket": 2.0,
            "connect": 2.5,
            "send": 6.0,
            "recv": 6.0,
            "wsastartup": 1.1,
            "wsacleanup": 1.0,
            "sleep": 14.0,
            "gettickcount": 6.0,
        }, dispersion=1.2),
    )


def _anti_analysis_group(probability: float) -> BehaviorGroup:
    return BehaviorGroup(
        name="anti_analysis",
        activation_probability=probability,
        usages=_usages({
            "isdebuggerpresent": 2.0,
            "checkremotedebuggerpresent": 1.2,
            "gettickcount": 8.0,
            "queryperformancecounter": 3.0,
            "sleep": 10.0,
            "getsysteminfo": 1.5,
            "globalmemorystatusex": 1.2,
            "getmodulehandlea": 3.0,
            "outputdebugstringa": 1.0,
            "ntqueryinformationprocess": 1.5,
            "ntdelayexecution": 2.0,
        }, dispersion=1.2),
    )


def _self_unpacking_group(probability: float) -> BehaviorGroup:
    return BehaviorGroup(
        name="self_unpacking",
        activation_probability=probability,
        usages=_usages({
            "virtualalloc": 12.0,
            "virtualprotect": 8.0,
            "loadlibrarya": 5.0,
            "getprocaddress": 40.0,
            "virtualfree": 4.0,
            "rtlmovememory": 6.0,
            "ldrloaddll": 2.0,
            "ldrgetprocedureaddress": 8.0,
        }, dispersion=1.1),
    )


def _mass_encryption_group(probability: float) -> BehaviorGroup:
    return BehaviorGroup(
        name="mass_file_encryption",
        activation_probability=probability,
        usages=_usages({
            "findfirstfilew": 4.0,
            "findnextfilew": 80.0,
            "createfilew": 60.0,
            "readfile": 70.0,
            "writefile": 70.0,
            "movefileexw": 25.0,
            "deletefilew": 30.0,
            "cryptacquirecontextw": 1.2,
            "cryptgenkey": 1.0,
            "cryptencrypt": 60.0,
            "cryptgenrandom": 2.0,
            "getlogicaldrivestringsw": 1.2,
            "getdrivetypew": 4.0,
        }, dispersion=1.0),
    )


def _keylogging_group(probability: float) -> BehaviorGroup:
    return BehaviorGroup(
        name="keylogging",
        activation_probability=probability,
        usages=_usages({
            "setwindowshookexa": 1.2,
            "setwindowshookexw": 1.0,
            "getasynckeystate": 60.0,
            "getkeystate": 30.0,
            "getforegroundwindow": 12.0,
            "getwindowtextw": 10.0,
            "mapvirtualkeya": 8.0,
            "callnexthookex": 20.0,
            "attachthreadinput": 1.0,
            "openclipboard": 2.0,
            "getclipboarddata": 2.0,
        }, dispersion=1.2),
    )


def _credential_theft_group(probability: float) -> BehaviorGroup:
    return BehaviorGroup(
        name="credential_theft",
        activation_probability=probability,
        usages=_usages({
            "openprocesstoken": 1.5,
            "adjusttokenprivileges": 1.2,
            "lookupprivilegevaluew": 1.2,
            "cryptunprotectdata": 2.5,
            "regopenkeyexw": 5.0,
            "regqueryvalueexw": 8.0,
            "readprocessmemory": 4.0,
            "logonuserw": 0.6,
            "getusernamew": 1.0,
            "findfirstfilew": 3.0,
            "readfile": 8.0,
        }, dispersion=1.2),
    )


def _dropper_group(probability: float) -> BehaviorGroup:
    return BehaviorGroup(
        name="dropper",
        activation_probability=probability,
        usages=_usages({
            "gettemppathw": 1.5,
            "gettempfilenamew": 1.2,
            "createfilew": 3.0,
            "writefile": 5.0,
            "createprocessw": 1.5,
            "createprocessa": 0.8,
            "winexec": 0.9,
            "shellexecutea": 0.9,
            "shellexecutew": 0.8,
            "urldownloadtofilea": 1.2,
            "movefileexw": 1.0,
            "setfileattributesw": 1.2,
            "deletefilew": 1.0,
        }, dispersion=1.2),
    )


# --------------------------------------------------------------------------- #
# Clean-software-specific groups
# --------------------------------------------------------------------------- #
def _document_editing_group(probability: float) -> BehaviorGroup:
    return BehaviorGroup(
        name="document_editing",
        activation_probability=probability,
        usages=_usages({
            "createfilew": 8.0,
            "readfile": 25.0,
            "writefile": 12.0,
            "createfontindirectw": 3.0,
            "textoutw": 20.0,
            "gettextmetricsw": 4.0,
            "settextcolor": 5.0,
            "getprivateprofilestringw": 3.0,
            "writeprivateprofilestringw": 1.0,
            "getprofilestringw": 2.0,
            "getfullpathnamew": 2.0,
            "shgetfolderpathw": 1.5,
        }),
    )


def _installer_group(probability: float) -> BehaviorGroup:
    return BehaviorGroup(
        name="installer",
        activation_probability=probability,
        usages=_usages({
            "createdirectoryw": 4.0,
            "copyfilew": 8.0,
            "writefile": 20.0,
            "createfilew": 12.0,
            "regcreatekeyexw": 3.0,
            "regsetvalueexw": 5.0,
            "createprocessw": 1.5,
            "shfileoperationw": 1.2,
            "getversionexw": 1.5,
            "getwindowsdirectoryw": 1.5,
            "getsystemdirectoryw": 1.5,
            "findresourcew": 3.0,
            "loadresource": 3.0,
            "sizeofresource": 3.0,
        }),
    )


def _updater_network_group(probability: float) -> BehaviorGroup:
    return BehaviorGroup(
        name="updater",
        activation_probability=probability,
        usages=_usages({
            "internetopenw": 1.2,
            "internetopenurlw": 1.5,
            "internetreadfile": 8.0,
            "internetclosehandle": 1.5,
            "httpqueryinfow": 2.0,
            "getaddrinfo": 1.5,
            "certgetcertificatechain": 1.0,
            "certverifycertificatechainpolicy": 1.0,
            "cryptcreatehash": 1.2,
            "crypthashdata": 3.0,
            "writefile": 4.0,
            "createfilew": 2.0,
        }),
    )


def _media_group(probability: float) -> BehaviorGroup:
    return BehaviorGroup(
        name="media_playback",
        activation_probability=probability,
        usages=_usages({
            "createcompatibledc": 4.0,
            "createcompatiblebitmap": 4.0,
            "stretchblt": 12.0,
            "bitblt": 18.0,
            "getdibits": 6.0,
            "setdibits": 6.0,
            "playsoundw": 1.2,
            "mcisendstringw": 20.0,
            "timegettime": 15.0,
            "timebeginperiod": 1.2,
            "createthread": 3.0,
            "waitforsingleobject": 8.0,
        }),
    )


def _developer_tool_group(probability: float) -> BehaviorGroup:
    """Clean tools that *legitimately* touch debug / process APIs.

    This group creates the benign/malicious overlap responsible for most
    false positives, keeping the detector's operating point realistic.
    """
    return BehaviorGroup(
        name="developer_tools",
        activation_probability=probability,
        usages=_usages({
            "openprocess": 2.0,
            "readprocessmemory": 3.0,
            "enumprocesses": 1.5,
            "enumprocessmodules": 2.0,
            "getmodulebasenamew": 3.0,
            "isdebuggerpresent": 1.0,
            "debugactiveprocess": 0.6,
            "getthreadcontext": 1.0,
            "virtualqueryex": 3.0,
            "createtoolhelp32snapshot": 1.2,
            "process32nextw": 10.0,
            "outputdebugstringa": 4.0,
        }),
    )


# --------------------------------------------------------------------------- #
# Profile library
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ProfileLibrary:
    """A collection of behaviour profiles with class-conditional sampling."""

    profiles: Tuple[BehaviorProfile, ...]

    def __post_init__(self) -> None:
        if not self.profiles:
            raise ConfigurationError("profile library is empty")
        names = [p.name for p in self.profiles]
        if len(names) != len(set(names)):
            raise ConfigurationError("profile names must be unique")

    def __len__(self) -> int:
        return len(self.profiles)

    def __iter__(self):
        return iter(self.profiles)

    def by_name(self, name: str) -> BehaviorProfile:
        """Look a profile up by name."""
        for profile in self.profiles:
            if profile.name == name:
                return profile
        raise KeyError(f"no profile named {name!r}")

    def for_label(self, label: int, include_novel: bool = False) -> List[BehaviorProfile]:
        """All profiles of one class, optionally including test-only families."""
        return [p for p in self.profiles
                if p.label == label and (include_novel or not p.novel)]

    def sample_profile(self, label: int, rng: np.random.Generator,
                       include_novel: bool = False,
                       novel_probability: float = 0.0) -> BehaviorProfile:
        """Draw a family for a new sample of class ``label``.

        ``novel_probability`` is the chance of drawing a test-only family
        when ``include_novel`` is set; it models the fraction of VirusTotal
        samples whose families were absent from the January/February 2018
        training collection.
        """
        novel = [p for p in self.profiles if p.label == label and p.novel]
        known = [p for p in self.profiles if p.label == label and not p.novel]
        if include_novel and novel and rng.random() < novel_probability:
            pool = novel
        else:
            pool = known if known else novel
        if not pool:
            raise ConfigurationError(f"no profiles available for label {label}")
        return pool[int(rng.integers(len(pool)))]


def default_profile_library() -> ProfileLibrary:
    """The built-in clean / malware family library."""
    clean_profiles = [
        BehaviorProfile(
            name="clean_gui_utility", label=CLASS_CLEAN,
            groups=(
                _runtime_startup_group(),
                _gui_group(0.95),
                _file_io_group(0.8, scale=0.6),
                _registry_read_group(0.7),
            ),
        ),
        BehaviorProfile(
            name="clean_document_editor", label=CLASS_CLEAN,
            groups=(
                _runtime_startup_group(),
                _gui_group(0.9),
                _document_editing_group(0.95),
                _registry_read_group(0.6),
                _file_io_group(0.7, scale=0.8),
            ),
        ),
        BehaviorProfile(
            name="clean_installer", label=CLASS_CLEAN,
            groups=(
                _runtime_startup_group(),
                _installer_group(0.95),
                _gui_group(0.5),
                _registry_read_group(0.8),
                _file_io_group(0.9, scale=1.2),
            ),
        ),
        BehaviorProfile(
            name="clean_updater_service", label=CLASS_CLEAN,
            groups=(
                _runtime_startup_group(),
                _updater_network_group(0.9),
                _network_client_group(0.6, scale=0.7),
                _file_io_group(0.7, scale=0.7),
                _registry_read_group(0.7),
            ),
        ),
        BehaviorProfile(
            name="clean_media_player", label=CLASS_CLEAN,
            groups=(
                _runtime_startup_group(),
                _gui_group(0.9),
                _media_group(0.95),
                _file_io_group(0.8, scale=1.0),
            ),
        ),
        BehaviorProfile(
            name="clean_developer_tool", label=CLASS_CLEAN,
            groups=(
                _runtime_startup_group(),
                _developer_tool_group(0.9),
                _gui_group(0.5),
                _file_io_group(0.7, scale=0.7),
                _registry_read_group(0.5),
            ),
        ),
        BehaviorProfile(
            name="clean_console_tool", label=CLASS_CLEAN, novel=True,
            groups=(
                _runtime_startup_group(),
                _file_io_group(0.95, scale=1.4),
                _registry_read_group(0.3),
                _network_client_group(0.2, scale=0.4),
            ),
        ),
    ]

    malware_profiles = [
        BehaviorProfile(
            name="malware_trojan_injector", label=CLASS_MALWARE,
            groups=(
                _runtime_startup_group(),
                _self_unpacking_group(0.9),
                _process_injection_group(0.95),
                _persistence_group(0.8),
                _anti_analysis_group(0.7),
                _file_io_group(0.5, scale=0.5),
            ),
        ),
        BehaviorProfile(
            name="malware_ransomware", label=CLASS_MALWARE,
            groups=(
                _runtime_startup_group(),
                _mass_encryption_group(0.95),
                _persistence_group(0.6),
                _beaconing_group(0.5),
                _anti_analysis_group(0.6),
            ),
        ),
        BehaviorProfile(
            name="malware_spyware_keylogger", label=CLASS_MALWARE,
            groups=(
                _runtime_startup_group(),
                _keylogging_group(0.95),
                _credential_theft_group(0.7),
                _beaconing_group(0.8),
                _persistence_group(0.7),
                _gui_group(0.4),
            ),
        ),
        BehaviorProfile(
            name="malware_botnet_client", label=CLASS_MALWARE,
            groups=(
                _runtime_startup_group(),
                _beaconing_group(0.95),
                _persistence_group(0.8),
                _dropper_group(0.6),
                _anti_analysis_group(0.7),
                _self_unpacking_group(0.6),
            ),
        ),
        BehaviorProfile(
            name="malware_dropper", label=CLASS_MALWARE,
            groups=(
                _runtime_startup_group(),
                _dropper_group(0.95),
                _network_client_group(0.7, scale=1.0),
                _persistence_group(0.6),
                _anti_analysis_group(0.5),
            ),
        ),
        # Test-only ("novel") families: stealthier behaviour that overlaps
        # heavily with clean software, responsible for the ~12% of test
        # malware the paper's detector misses (TPR 0.883).
        BehaviorProfile(
            name="malware_stealthy_backdoor", label=CLASS_MALWARE, novel=True,
            groups=(
                _runtime_startup_group(),
                _gui_group(0.6),
                _file_io_group(0.8, scale=0.8),
                _registry_read_group(0.7),
                _network_client_group(0.7, scale=0.8),
                _process_injection_group(0.25),
                _persistence_group(0.35),
            ),
        ),
        BehaviorProfile(
            name="malware_living_off_the_land", label=CLASS_MALWARE, novel=True,
            groups=(
                _runtime_startup_group(),
                _developer_tool_group(0.8),
                _file_io_group(0.8, scale=0.9),
                _registry_read_group(0.8),
                _updater_network_group(0.5),
                _persistence_group(0.3),
                _credential_theft_group(0.25),
            ),
        ),
    ]
    return ProfileLibrary(tuple(clean_profiles + malware_profiles))
