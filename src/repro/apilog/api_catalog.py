"""The canonical catalog of the 491 monitored API names.

The paper's feature vector has one entry per monitored Windows API call
(Section II-A).  Table III shows an excerpt of the catalog — entries 475 to
484 — revealing two properties we reproduce exactly:

* names are lower-cased and alphabetically ordered,
* index 475 is ``waitmessage`` and index 484 is ``writeprofilestringa``.

The full list is not published, so :func:`build_catalog` assembles a
491-name catalog from a large base list of real Windows API names (kernel32,
user32, advapi32, gdi32, ws2_32, wininet, shell32, ...), padded with the
standard ``a``/``w``/``ex`` API-variant suffixes when needed, under the
constraint that the Table III excerpt lands at the published indices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.config import N_FEATURES
from repro.exceptions import ConfigurationError

#: Table III of the paper: catalog entries 475-484 (0-based), verbatim.
TABLE_III_EXCERPT: Tuple[str, ...] = (
    "waitmessage",
    "windowfromdc",
    "winexec",
    "writeconsolea",
    "writeconsolew",
    "writefile",
    "writeprivateprofilestringa",
    "writeprivateprofilestringw",
    "writeprocessmemory",
    "writeprofilestringa",
)

#: Index of the first excerpt entry in the catalog (paper Table III).
TABLE_III_START_INDEX = 475

#: Entries that close the catalog after the excerpt (indices 485-490).
_CATALOG_TAIL: Tuple[str, ...] = (
    "writeprofilestringw",
    "wsacleanup",
    "wsaconnect",
    "wsarecv",
    "wsasend",
    "wsastartup",
)

#: Base list of real Windows API names (lower-cased).  Only names that sort
#: strictly before ``waitmessage`` are eligible for the head of the catalog;
#: the builder filters and, if necessary, extends this list with standard
#: ``a``/``w``/``ex`` variants to reach the required 475 head entries.
_BASE_API_NAMES: Tuple[str, ...] = (
    # kernel32 — processes, threads, memory, modules
    "createprocessa", "createprocessw", "createprocessasusera", "createprocessasuserw",
    "createthread", "createremotethread", "exitprocess", "exitthread",
    "terminateprocess", "terminatethread", "openprocess", "openthread",
    "getcurrentprocess", "getcurrentprocessid", "getcurrentthread", "getcurrentthreadid",
    "getexitcodeprocess", "getexitcodethread", "resumethread", "suspendthread",
    "virtualalloc", "virtualallocex", "virtualfree", "virtualfreeex",
    "virtualprotect", "virtualprotectex", "virtualquery", "virtualqueryex",
    "heapalloc", "heapcreate", "heapdestroy", "heapfree", "heaprealloc", "heapsize",
    "globalalloc", "globalfree", "globallock", "globalunlock", "globalmemorystatus",
    "globalmemorystatusex", "localalloc", "localfree", "locallock", "localunlock",
    "readprocessmemory", "loadlibrarya", "loadlibraryw", "loadlibraryexa", "loadlibraryexw",
    "freelibrary", "getmodulehandlea", "getmodulehandlew", "getmodulehandleexa",
    "getmodulehandleexw", "getmodulefilenamea", "getmodulefilenamew", "getprocaddress",
    "createtoolhelp32snapshot", "process32first", "process32firstw", "process32next",
    "process32nextw", "thread32first", "thread32next", "module32first", "module32next",
    "queueuserapc", "setthreadcontext", "getthreadcontext", "setthreadpriority",
    "getthreadpriority", "setpriorityclass", "getpriorityclass", "switchtothread",
    "flushinstructioncache", "iswow64process", "getnativesysteminfo", "getsysteminfo",
    # kernel32 — files and directories
    "createfilea", "createfilew", "readfile", "readfileex", "writefileex",
    "deletefilea", "deletefilew", "copyfilea", "copyfilew", "copyfileexa", "copyfileexw",
    "movefilea", "movefilew", "movefileexa", "movefileexw", "getfilesize", "getfilesizeex",
    "getfiletype", "getfiletime", "setfiletime", "getfileattributesa", "getfileattributesw",
    "setfileattributesa", "setfileattributesw", "setfilepointer", "setfilepointerex",
    "setendoffile", "flushfilebuffers", "lockfile", "unlockfile", "createdirectorya",
    "createdirectoryw", "removedirectorya", "removedirectoryw", "getcurrentdirectorya",
    "getcurrentdirectoryw", "setcurrentdirectorya", "setcurrentdirectoryw",
    "gettemppatha", "gettemppathw", "gettempfilenamea", "gettempfilenamew",
    "getsystemdirectorya", "getsystemdirectoryw", "getwindowsdirectorya",
    "getwindowsdirectoryw", "findfirstfilea", "findfirstfilew", "findnextfilea",
    "findnextfilew", "findclose", "getlogicaldrives", "getlogicaldrivestringsa",
    "getlogicaldrivestringsw", "getdrivetypea", "getdrivetypew", "getdiskfreespacea",
    "getdiskfreespacew", "getdiskfreespaceexa", "getdiskfreespaceexw",
    "getfullpathnamea", "getfullpathnamew", "getlongpathnamea", "getlongpathnamew",
    "getshortpathnamea", "getshortpathnamew", "searchpatha", "searchpathw",
    "createfilemappinga", "createfilemappingw", "mapviewoffile", "mapviewoffileex",
    "unmapviewoffile", "openfilemappinga", "openfilemappingw",
    # kernel32 — synchronisation, pipes, console, misc
    "createmutexa", "createmutexw", "openmutexa", "openmutexw", "releasemutex",
    "createeventa", "createeventw", "openeventa", "openeventw", "setevent", "resetevent",
    "createsemaphorea", "createsemaphorew", "releasesemaphore", "waitforsingleobject",
    "waitformultipleobjects", "createnamedpipea", "createnamedpipew", "connectnamedpipe",
    "disconnectnamedpipe", "peeknamedpipe", "createpipe", "transactnamedpipe",
    "callnamedpipea", "callnamedpipew", "getstdhandle", "setstdhandle",
    "allocconsole", "freeconsole", "getconsolewindow", "setconsoletitlea",
    "setconsoletitlew", "readconsolea", "readconsolew", "getconsolemode", "setconsolemode",
    "getstartupinfoa", "getstartupinfow", "getcommandlinea", "getcommandlinew",
    "getenvironmentvariablea", "getenvironmentvariablew", "setenvironmentvariablea",
    "setenvironmentvariablew", "getenvironmentstringsa", "getenvironmentstringsw",
    "freeenvironmentstringsa", "freeenvironmentstringsw", "expandenvironmentstringsa",
    "expandenvironmentstringsw", "getcomputernamea", "getcomputernamew",
    "getversion", "getversionexa", "getversionexw", "getsystemtime", "getlocaltime",
    "getsystemtimeasfiletime", "gettickcount", "gettickcount64", "queryperformancecounter",
    "queryperformancefrequency", "sleep", "sleepex", "getlasterror", "setlasterror",
    "outputdebugstringa", "outputdebugstringw", "isdebuggerpresent",
    "checkremotedebuggerpresent", "debugactiveprocess", "debugbreak",
    "getcpinfo", "getacp", "getoemcp", "multibytetowidechar", "widechartomultibyte",
    "lstrcata", "lstrcatw", "lstrcmpa", "lstrcmpw", "lstrcmpia", "lstrcmpiw",
    "lstrcpya", "lstrcpyw", "lstrcpyna", "lstrcpynw", "lstrlena", "lstrlenw",
    "interlockedincrement", "interlockeddecrement", "interlockedexchange",
    "interlockedcompareexchange", "initializecriticalsection", "deletecriticalsection",
    "entercriticalsection", "leavecriticalsection", "tlsalloc", "tlsfree",
    "tlsgetvalue", "tlssetvalue", "flsalloc", "flsfree", "flsgetvalue", "flssetvalue",
    "duplicatehandle", "closehandle", "createjobobjecta", "createjobobjectw",
    "assignprocesstojobobject", "setinformationjobobject", "getbinarytypea",
    "getbinarytypew", "beginupdateresourcea", "beginupdateresourcew",
    "endupdateresourcea", "endupdateresourcew", "updateresourcea", "updateresourcew",
    "findresourcea", "findresourcew", "loadresource", "lockresource", "sizeofresource",
    "setunhandledexceptionfilter", "unhandledexceptionfilter", "raiseexception",
    "addvectoredexceptionhandler", "removevectoredexceptionhandler",
    "deviceiocontrol", "definedosdevicea", "definedosdevicew", "querydosdevicea",
    "querydosdevicew", "getprofileinta", "getprofileintw", "getprofilestringa",
    "getprofilestringw", "getprivateprofileinta", "getprivateprofileintw",
    "getprivateprofilestringa", "getprivateprofilestringw", "getprivateprofilesectiona",
    "getprivateprofilesectionw", "getcurrentconsolefont", "setprocessdeppolicy",
    "getprocessheap", "getprocessheaps", "getprocesstimes", "getprocessworkingsetsize",
    "setprocessworkingsetsize", "getthreadtimes", "createwaitabletimera",
    "createwaitabletimerw", "setwaitabletimer", "cancelwaitabletimer",
    # user32 — windows, messages, input, hooks
    "createwindowexa", "createwindowexw", "destroywindow", "showwindow", "updatewindow",
    "findwindowa", "findwindoww", "findwindowexa", "findwindowexw", "getforegroundwindow",
    "setforegroundwindow", "getdesktopwindow", "getwindowtexta", "getwindowtextw",
    "setwindowtexta", "setwindowtextw", "getwindowrect", "setwindowpos", "movewindow",
    "getclassnamea", "getclassnamew", "registerclassa", "registerclassw",
    "registerclassexa", "registerclassexw", "defwindowproca", "defwindowprocw",
    "getmessagea", "getmessagew", "peekmessagea", "peekmessagew", "postmessagea",
    "postmessagew", "sendmessagea", "sendmessagew", "sendmessagetimeouta",
    "sendmessagetimeoutw", "dispatchmessagea", "dispatchmessagew", "translatemessage",
    "postquitmessage", "postthreadmessagea", "postthreadmessagew",
    "setwindowshookexa", "setwindowshookexw", "unhookwindowshookex", "callnexthookex",
    "getasynckeystate", "getkeystate", "getkeyboardstate", "getkeyboardlayout",
    "mapvirtualkeya", "mapvirtualkeyw", "keybd_event", "mouse_event", "sendinput",
    "getcursorpos", "setcursorpos", "showcursor", "setcapture", "releasecapture",
    "clipcursor", "attachthreadinput", "blockinput", "enablewindow", "iswindowvisible",
    "iswindowenabled", "getwindowthreadprocessid", "getwindowlonga", "getwindowlongw",
    "setwindowlonga", "setwindowlongw", "getsystemmetrics", "systemparametersinfoa",
    "systemparametersinfow", "messageboxa", "messageboxw", "messagebeep",
    "loadicona", "loadiconw", "loadcursora", "loadcursorw", "loadimagea", "loadimagew",
    "destroyicon", "destroycursor", "drawicon", "drawiconex", "getdc", "getwindowdc",
    "releasedc", "begindeferwindowpos", "enddeferwindowpos", "openclipboard",
    "closeclipboard", "emptyclipboard", "getclipboarddata", "setclipboarddata",
    "registerhotkey", "unregisterhotkey", "exitwindowsex", "lockworkstation",
    "getuserobjectinformationa", "getuserobjectinformationw", "openinputdesktop",
    "enumwindows", "enumchildwindows", "enumdesktopwindows", "getwindow",
    "getparent", "setparent", "gettopwindow", "getactivewindow", "setactivewindow",
    "flashwindow", "flashwindowex", "printwindow",
    # gdi32
    "bitblt", "stretchblt", "patblt", "createcompatibledc", "createcompatiblebitmap",
    "createbitmap", "createdibsection", "deletedc", "deleteobject", "selectobject",
    "getdibits", "setdibits", "getpixel", "setpixel", "textouta", "textoutw",
    "createfonta", "createfontw", "createfontindirecta", "createfontindirectw",
    "getstockobject", "createsolidbrush", "createpen", "rectangle", "ellipse",
    "getdevicecaps", "getobjecta", "getobjectw", "settextcolor", "setbkcolor", "setbkmode",
    # advapi32 — registry, services, tokens, crypto
    "regopenkeya", "regopenkeyw", "regopenkeyexa", "regopenkeyexw", "regcreatekeya",
    "regcreatekeyw", "regcreatekeyexa", "regcreatekeyexw", "regclosekey",
    "regdeletekeya", "regdeletekeyw", "regdeletevaluea", "regdeletevaluew",
    "regqueryvaluea", "regqueryvaluew", "regqueryvalueexa", "regqueryvalueexw",
    "regsetvaluea", "regsetvaluew", "regsetvalueexa", "regsetvalueexw",
    "regenumkeya", "regenumkeyw", "regenumkeyexa", "regenumkeyexw", "regenumvaluea",
    "regenumvaluew", "regqueryinfokeya", "regqueryinfokeyw", "regsavekeya", "regsavekeyw",
    "regloadkeya", "regloadkeyw", "regflushkey", "regconnectregistrya", "regconnectregistryw",
    "openscmanagera", "openscmanagerw", "openservicea", "openservicew",
    "createservicea", "createservicew", "deleteservice", "startservicea", "startservicew",
    "controlservice", "queryservicestatus", "queryservicestatusex", "queryserviceconfiga",
    "queryserviceconfigw", "changeserviceconfiga", "changeserviceconfigw",
    "enumservicesstatusa", "enumservicesstatusw", "closeservicehandle",
    "openprocesstoken", "openthreadtoken", "adjusttokenprivileges", "lookupprivilegevaluea",
    "lookupprivilegevaluew", "gettokeninformation", "settokeninformation",
    "duplicatetoken", "duplicatetokenex", "impersonateloggedonuser", "reverttoself",
    "logonusera", "logonuserw", "getusernamea", "getusernamew", "lookupaccountsida",
    "lookupaccountsidw", "lookupaccountnamea", "lookupaccountnamew",
    "initializesecuritydescriptor", "setsecuritydescriptordacl", "getsecurityinfo",
    "setsecurityinfo", "cryptacquirecontexta", "cryptacquirecontextw", "cryptreleasecontext",
    "cryptcreatehash", "cryptdestroyhash", "crypthashdata", "cryptgethashparam",
    "cryptderivekey", "cryptgenkey", "cryptdestroykey", "cryptencrypt", "cryptdecrypt",
    "cryptexportkey", "cryptimportkey", "cryptgenrandom", "cryptsignhasha", "cryptsignhashw",
    "cryptverifysignaturea", "cryptverifysignaturew", "cryptprotectdata",
    "cryptunprotectdata", "allocateandinitializesid", "freesid", "checktokenmembership",
    "createprocesswithlogonw", "createprocesswithtokenw", "eventwrite", "regnotifychangekeyvalue",
    # ws2_32 / wsock32 — networking
    "socket", "closesocket", "connect", "bind", "listen", "accept", "send", "sendto",
    "recv", "recvfrom", "select", "shutdown", "ioctlsocket", "setsockopt", "getsockopt",
    "gethostbyname", "gethostbyaddr", "gethostname", "getaddrinfo", "getnameinfo",
    "freeaddrinfo", "inet_addr", "inet_ntoa", "htons", "htonl", "ntohs", "ntohl",
    "getpeername", "getsockname",
    # wininet / winhttp / urlmon
    "internetopena", "internetopenw", "internetopenurla", "internetopenurlw",
    "internetconnecta", "internetconnectw", "internetreadfile", "internetwritefile",
    "internetclosehandle", "internetsetoptiona", "internetsetoptionw",
    "internetqueryoptiona", "internetqueryoptionw", "internetgetconnectedstate",
    "internetcheckconnectiona", "internetcheckconnectionw", "internetcrackurla",
    "internetcrackurlw", "httpopenrequesta", "httpopenrequestw", "httpsendrequesta",
    "httpsendrequestw", "httpqueryinfoa", "httpqueryinfow", "httpaddrequestheadersa",
    "httpaddrequestheadersw", "ftpgetfilea", "ftpgetfilew", "ftpputfilea", "ftpputfilew",
    "ftpopenfilea", "ftpopenfilew", "urldownloadtofilea", "urldownloadtofilew",
    "urldownloadtocachefilea", "urldownloadtocachefilew",
    # shell32 / shlwapi / ole32
    "shellexecutea", "shellexecutew", "shellexecuteexa", "shellexecuteexw",
    "shgetfolderpatha", "shgetfolderpathw", "shgetspecialfolderpatha",
    "shgetspecialfolderpathw", "shgetknownfolderpath", "shfileoperationa",
    "shfileoperationw", "shcreatedirectoryexa", "shcreatedirectoryexw",
    "shellnotifyicona", "shellnotifyiconw", "extracticona", "extracticonw",
    "pathfileexistsa", "pathfileexistsw", "pathappenda", "pathappendw",
    "pathcombinea", "pathcombinew", "pathfindextensiona", "pathfindextensionw",
    "pathfindfilenamea", "pathfindfilenamew", "strstra", "strstrw", "strstria", "strstriw",
    "coinitialize", "coinitializeex", "couninitialize", "cocreateinstance",
    "cocreateinstanceex", "cogetclassobject", "cosetproxyblanket", "cotaskmemalloc",
    "cotaskmemfree", "olerun", "oleinitialize", "oleuninitialize",
    "createstreamonhglobal", "getrunningobjecttable",
    # ntdll
    "ntallocatevirtualmemory", "ntprotectvirtualmemory", "ntreadvirtualmemory",
    "ntwritevirtualmemory", "ntcreatefile", "ntopenfile", "ntreadfile", "ntwritefile",
    "ntclose", "ntcreatesection", "ntmapviewofsection", "ntunmapviewofsection",
    "ntopenprocess", "ntterminateprocess", "ntcreatethreadex", "ntresumethread",
    "ntsuspendthread", "ntqueryinformationprocess", "ntsetinformationprocess",
    "ntqueryinformationthread", "ntquerysysteminformation", "ntquerydirectoryfile",
    "ntdelayexecution", "ntcreatekey", "ntopenkey", "ntsetvaluekey", "ntquerryvaluekey",
    "ntenumeratekey", "ntdeletekey", "ntloaddriver", "ntunloaddriver",
    "rtlcreateuserthread", "rtlmovememory", "rtlzeromemory", "rtlcopymemory",
    "rtladdvectoredexceptionhandler", "rtlgetversion", "ldrloaddll", "ldrgetprocedureaddress",
    # psapi / toolhelp / version / imagehlp
    "enumprocesses", "enumprocessmodules", "enumprocessmodulesex", "getmodulebasenamea",
    "getmodulebasenamew", "getmodulefilenameexa", "getmodulefilenameexw",
    "getprocessimagefilenamea", "getprocessimagefilenamew", "getprocessmemoryinfo",
    "getfileversioninfoa", "getfileversioninfow", "getfileversioninfosizea",
    "getfileversioninfosizew", "verqueryvaluea", "verqueryvaluew",
    "imagehlpchecksummappedfile", "mapfileandchecksuma", "mapfileandchecksumw",
    "checksummappedfile", "imagentheader", "imagedirectoryentrytodata",
    # crt-style / miscellaneous monitored calls
    "memcpy", "memset", "memmove", "malloc", "calloc", "realloc", "free", "strcpy",
    "strncpy", "strcat", "strncat", "strcmp", "strncmp", "strlen", "sprintf", "swprintf",
    "fopen", "fclose", "fread", "fwrite", "fprintf", "fscanf", "fseek", "ftell",
    "system", "getpwnam", "rand", "srand", "time", "clock", "atexit", "signal", "abort",
    "setjmp", "longjmp", "getenv", "putenv", "tmpfile", "tmpnam", "remove", "rename",
    # user32/misc that sort after most but before "wait"
    "validaterect", "valuename", "vkkeyscana", "vkkeyscanw", "verifyversioninfoa",
    "verifyversioninfow", "vprintf", "queryfullprocessimagenamea",
    "queryfullprocessimagenamew", "timegettime", "timesetevent", "timebeginperiod",
    "timeendperiod", "getcharwidtha", "getcharwidthw", "gettextmetricsa", "gettextmetricsw",
    "getnetworkparams", "getadaptersinfo", "getadaptersaddresses", "icmpcreatefile",
    "icmpsendecho", "netshareenum", "netuseradd", "netuserenum", "netusergetinfo",
    "netlocalgroupaddmembers", "netapibufferfree", "dnsquery_a", "dnsquery_w",
    "certopenstore", "certclosestore", "certfindcertificateinstore",
    "certgetcertificatechain", "certverifycertificatechainpolicy",
    "bcryptopenalgorithmprovider", "bcryptclosealgorithmprovider", "bcryptgenrandom",
    "bcryptencrypt", "bcryptdecrypt", "bcrypthashdata", "bcryptcreatehash",
    "ncryptopenstorageprovider", "ncryptopenkey", "ncryptencrypt", "ncryptdecrypt",
    "wnetaddconnection2a", "wnetaddconnection2w", "wnetopenenuma", "wnetopenenumw",
    "wnetenumresourcea", "wnetenumresourcew", "wnetcancelconnection2a",
    "wnetcancelconnection2w", "waveoutopen", "waveoutwrite", "waveinopen",
    "playsounda", "playsoundw", "mcisendstringa", "mcisendstringw",
    "vfwprintf", "ualstrcpya",
)


@dataclass(frozen=True)
class ApiCatalog:
    """Immutable, ordered catalog mapping API names to feature indices."""

    names: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.names) != len(set(self.names)):
            raise ConfigurationError("catalog contains duplicate API names")
        if list(self.names) != sorted(self.names):
            raise ConfigurationError("catalog names must be alphabetically sorted")
        object.__setattr__(self, "_index", {name: i for i, name in enumerate(self.names)})

    def __len__(self) -> int:
        return len(self.names)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._index

    def __iter__(self):
        return iter(self.names)

    def index_of(self, name: str) -> int:
        """Return the feature index of ``name`` (case-insensitive).

        Raises
        ------
        KeyError
            If the API is not monitored (not part of the catalog).
        """
        key = name.lower()
        if key not in self._index:
            raise KeyError(f"API {name!r} is not in the monitored catalog")
        return self._index[key]

    def name_of(self, index: int) -> str:
        """Return the API name at feature ``index``."""
        return self.names[index]

    def monitored(self, name: str) -> bool:
        """Whether ``name`` is a monitored API."""
        return name.lower() in self._index

    def indices_of(self, names: Iterable[str]) -> List[int]:
        """Feature indices for several API names (unknown names are skipped)."""
        return [self._index[n.lower()] for n in names if n.lower() in self._index]

    def excerpt(self, start: int, stop: int) -> List[Tuple[int, str]]:
        """Return ``(index, name)`` pairs for ``start <= index < stop``.

        ``catalog.excerpt(475, 485)`` reproduces Table III.
        """
        return [(i, self.names[i]) for i in range(start, min(stop, len(self.names)))]


def _head_candidates() -> List[str]:
    """All candidate head names: base names (plus variants) < 'waitmessage'."""
    first_excerpt = TABLE_III_EXCERPT[0]
    seen = set(TABLE_III_EXCERPT) | set(_CATALOG_TAIL)
    candidates: List[str] = []
    for name in _BASE_API_NAMES:
        lowered = name.lower()
        if lowered in seen or lowered >= first_excerpt:
            continue
        seen.add(lowered)
        candidates.append(lowered)
    # If the base list were ever too small, extend it with the standard
    # Windows "ex"-variant naming convention.  This is deterministic and
    # keeps every generated name a plausible API identifier.
    for suffix in ("ex", "exa", "exw", "2"):
        if len(candidates) >= 2 * N_FEATURES:
            break
        for name in list(candidates):
            variant = name + suffix
            if variant in seen or variant >= first_excerpt:
                continue
            seen.add(variant)
            candidates.append(variant)
    return sorted(candidates)


def build_catalog(n_features: int = N_FEATURES,
                  must_include: Iterable[str] = ()) -> ApiCatalog:
    """Build the canonical catalog of ``n_features`` monitored API names.

    The returned catalog is alphabetically ordered, contains the Table III
    excerpt verbatim at indices 475-484 (when ``n_features`` is the paper's
    491), and is deterministic across runs.

    ``must_include`` names (lower-cased) are guaranteed a slot as long as
    they sort strictly before the Table III excerpt or already belong to the
    excerpt/tail; names that would break the excerpt's contiguity are
    silently dropped, mirroring how an instrumentation catalog only hooks a
    fixed set of APIs.
    """
    must_keep = {name.lower() for name in must_include}
    if n_features != N_FEATURES:
        # Reduced catalogs (for toy examples) keep the head structure but do
        # not pin the Table III alignment, which only exists at 491 features.
        candidates = _head_candidates()
        names = sorted(candidates + list(TABLE_III_EXCERPT) + list(_CATALOG_TAIL))
        if n_features > len(names):
            raise ConfigurationError(
                f"cannot build a catalog of {n_features} names; only {len(names)} available"
            )
        step = len(names) / n_features
        picked = sorted({names[int(i * step)] for i in range(n_features)})
        index = 0
        while len(picked) < n_features:
            if names[index] not in picked:
                picked.append(names[index])
            index += 1
        return ApiCatalog(tuple(sorted(picked)))

    head_needed = TABLE_III_START_INDEX
    tail_needed = n_features - head_needed - len(TABLE_III_EXCERPT)
    if tail_needed != len(_CATALOG_TAIL):
        raise ConfigurationError(
            f"catalog tail must contain {tail_needed} names, got {len(_CATALOG_TAIL)}"
        )
    first_excerpt = TABLE_III_EXCERPT[0]
    candidates = _head_candidates()
    candidate_set = set(candidates)
    extra_must_keep = sorted(name for name in must_keep
                             if name < first_excerpt and name not in candidate_set)
    candidates = sorted(candidates + extra_must_keep)
    if len(candidates) < head_needed:
        raise ConfigurationError(
            f"need {head_needed} head API names but only {len(candidates)} are available"
        )
    forced = [name for name in candidates if name in must_keep]
    if len(forced) > head_needed:
        raise ConfigurationError(
            f"must_include forces {len(forced)} head names but only {head_needed} fit"
        )
    # Deterministically thin the optional candidates to fill the remaining
    # head slots while preserving alphabetical spread.
    optional = [name for name in candidates if name not in must_keep]
    optional_needed = head_needed - len(forced)
    positions = np.linspace(0, len(optional) - 1, optional_needed) if optional_needed else []
    picked_indices = sorted({int(round(p)) for p in positions})
    cursor = 0
    while len(picked_indices) < optional_needed:
        if cursor not in picked_indices:
            picked_indices.append(cursor)
            picked_indices.sort()
        cursor += 1
    head = sorted(forced + [optional[i] for i in sorted(picked_indices)[:optional_needed]])
    names = tuple(head) + TABLE_III_EXCERPT + _CATALOG_TAIL
    return ApiCatalog(names)


_DEFAULT_CATALOG: ApiCatalog | None = None


def _behavioural_must_include() -> set[str]:
    """Every API the synthetic substrate actually exercises.

    The default catalog guarantees slots for the APIs used by the behaviour
    profiles and by the sandbox's OS preambles, so that the synthetic
    samples' behaviour is fully visible to the detector (a real monitored-API
    list would likewise be chosen to cover the behaviours of interest).
    """
    from repro.apilog.behavior_profiles import default_profile_library
    from repro.apilog.sandbox import _OS_PREAMBLE

    apis = {usage.api for profile in default_profile_library()
            for group in profile.groups for usage in group.usages}
    apis.update(api for preamble in _OS_PREAMBLE.values() for api, _ in preamble)
    return apis


def default_catalog() -> ApiCatalog:
    """Return the module-level cached 491-API catalog."""
    global _DEFAULT_CATALOG
    if _DEFAULT_CATALOG is None:
        _DEFAULT_CATALOG = build_catalog(must_include=_behavioural_must_include())
    return _DEFAULT_CATALOG
