"""Editable "source programs" — the object the live grey-box attack mutates.

In the paper's third grey-box experiment a security researcher takes the
*source code* of a malware sample, adds one API call (repeatedly), rebuilds
it, and re-submits it to the DNN engine, watching the malware confidence
drop from 98.43% to 0%.  :class:`SourceSample` is the synthetic stand-in for
that source file: an explicit multiset of API calls (plus the family profile
it was generated from) that the :class:`~repro.apilog.sandbox.Sandbox`
"executes" to produce a Table II-style log.  Adding an API call to the
source is therefore a semantic-preserving mutation, exactly like the paper's
manual source edit: existing behaviour is never removed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

import numpy as np

from repro.exceptions import ConfigurationError, SandboxError
from repro.utils.rng import RandomState, as_rng


@dataclass
class SourceSample:
    """A synthetic PE sample represented by its intended API calls.

    Attributes
    ----------
    sample_id:
        Unique identifier (e.g. ``malware_trojan_injector-000017``).
    label:
        Ground-truth class (0 clean, 1 malware).
    family:
        Name of the behaviour profile the sample was generated from.
    api_calls:
        Mapping ``api name -> number of call sites`` in the source.  This is
        the program's *intrinsic* behaviour; the sandbox adds OS-dependent
        runtime calls on top when executing it.
    injected_calls:
        API calls added *after* generation (by an attacker performing the
        source-modification attack).  Kept separate so experiments can report
        exactly what was injected and so functionality-preservation checks
        can verify nothing was removed.
    """

    sample_id: str
    label: int
    family: str
    api_calls: Dict[str, int] = field(default_factory=dict)
    injected_calls: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.label not in (0, 1):
            raise ConfigurationError(f"label must be 0 or 1, got {self.label}")
        for api, count in list(self.api_calls.items()):
            if count < 0:
                raise ConfigurationError(f"negative call count for {api!r}")
            if count == 0:
                del self.api_calls[api]
        self.api_calls = {api.lower(): int(count) for api, count in self.api_calls.items()}
        self.injected_calls = {api.lower(): int(count)
                               for api, count in self.injected_calls.items()}

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def total_calls(self) -> int:
        """Total number of API call sites (original + injected)."""
        return sum(self.api_calls.values()) + sum(self.injected_calls.values())

    def combined_calls(self) -> Dict[str, int]:
        """Original and injected call counts merged into one mapping."""
        combined = dict(self.api_calls)
        for api, count in self.injected_calls.items():
            combined[api] = combined.get(api, 0) + count
        return combined

    def uses_api(self, api: str) -> bool:
        """Whether the sample (including injections) calls ``api``."""
        key = api.lower()
        return key in self.api_calls or key in self.injected_calls

    # ------------------------------------------------------------------ #
    # Mutation (the attack surface)
    # ------------------------------------------------------------------ #
    def add_api_call(self, api: str, times: int = 1) -> "SourceSample":
        """Return a copy with ``times`` extra calls to ``api`` injected.

        This mirrors the paper's manual source edit: the added call does not
        interfere with existing behaviour, so the sample's functionality is
        preserved by construction.  The original object is not modified.
        """
        if times < 1:
            raise ConfigurationError(f"times must be >= 1, got {times}")
        injected = dict(self.injected_calls)
        injected[api.lower()] = injected.get(api.lower(), 0) + int(times)
        return SourceSample(
            sample_id=self.sample_id,
            label=self.label,
            family=self.family,
            api_calls=dict(self.api_calls),
            injected_calls=injected,
        )

    def add_api_calls(self, additions: Mapping[str, int]) -> "SourceSample":
        """Inject several APIs at once (mapping ``api -> times``)."""
        sample = self
        for api, times in additions.items():
            if times > 0:
                sample = sample.add_api_call(api, times)
        return sample

    def preserves_functionality_of(self, original: "SourceSample") -> bool:
        """Check the add-only invariant against ``original``.

        True iff every original call site is still present with at least its
        original multiplicity — i.e. the mutation only *added* behaviour.
        """
        combined = self.combined_calls()
        return all(combined.get(api, 0) >= count
                   for api, count in original.combined_calls().items())

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_profile(cls, profile, sample_id: str,
                     random_state: RandomState = None) -> "SourceSample":
        """Generate a concrete source sample from a behaviour profile."""
        rng = as_rng(random_state)
        counts = profile.sample_counts(rng)
        if not counts:
            # Degenerate draw (every group inactive): fall back to the
            # profile's first group so the sample is never empty.
            first_group = profile.groups[0]
            counts = {usage.api: max(1, int(round(usage.mean_count)))
                      for usage in first_group.usages}
        return cls(sample_id=sample_id, label=profile.label, family=profile.name,
                   api_calls=counts)

    def describe(self) -> str:
        """Short human-readable description used by examples and logs."""
        injected = sum(self.injected_calls.values())
        return (f"SourceSample(id={self.sample_id}, family={self.family}, "
                f"label={self.label}, call_sites={self.total_calls()}, "
                f"injected={injected})")
