"""A simulated multi-OS sandbox that executes source samples into API logs.

The paper's corpus was built by running PE samples in instrumented
environments on Windows 7, XP, 8 and 10 ("the mixed data") and capturing
monitored API calls into log files (Table II).  :class:`Sandbox` reproduces
that pipeline for the synthetic substrate:

* every execution starts with an OS-specific *runtime preamble* (loader and
  C-runtime calls whose mix differs between OS versions — this is what makes
  the data "mixed"),
* the sample's own API call sites are then executed, with call counts jittered
  by an OS-dependent intensity factor,
* each call is rendered as a Table II log line with realistic return
  addresses and thread identifiers.

The sandbox is intentionally deterministic given ``(sample, os_version,
random_state)`` so that end-to-end experiments are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.apilog.log_format import ApiLog, LogRecord
from repro.apilog.source_sample import SourceSample
from repro.exceptions import SandboxError
from repro.utils.rng import RandomState, as_rng

#: The OS versions the paper's "mixed data" was generated on.
SUPPORTED_OS_VERSIONS = ("win7", "winxp", "win8", "win10")

#: OS-specific intensity multiplier applied to the sample's own call counts
#: (newer runtimes issue slightly more helper calls per program action).
_OS_INTENSITY = {"winxp": 0.85, "win7": 1.0, "win8": 1.08, "win10": 1.15}

#: OS-specific runtime preamble: (api, mean count).  These calls appear in
#: (nearly) every log regardless of the program, mirroring the loader /
#: CRT startup sequence visible in Table II.
_OS_PREAMBLE: Dict[str, Sequence[tuple[str, float]]] = {
    "winxp": (
        ("getmodulehandlea", 2.0), ("getprocaddress", 6.0), ("getversion", 1.0),
        ("getstartupinfoa", 1.0), ("getcommandlinea", 1.0), ("heapcreate", 1.0),
        ("heapalloc", 10.0), ("tlsalloc", 1.0), ("getacp", 1.0),
    ),
    "win7": (
        ("getstartupinfow", 1.0), ("getfiletype", 2.0), ("getmodulehandlew", 2.0),
        ("getprocaddress", 8.0), ("getstdhandle", 2.0), ("freeenvironmentstringsw", 1.0),
        ("getcpinfo", 1.0), ("flsalloc", 1.0), ("heapalloc", 12.0),
        ("getcommandlinew", 1.0), ("getsystemtimeasfiletime", 1.0),
    ),
    "win8": (
        ("getstartupinfow", 1.0), ("getfiletype", 2.0), ("getmodulehandlew", 3.0),
        ("getprocaddress", 9.0), ("getstdhandle", 2.0), ("getcpinfo", 1.0),
        ("flsalloc", 1.0), ("heapalloc", 14.0), ("getcommandlinew", 1.0),
        ("getsystemtimeasfiletime", 1.0), ("gettickcount64", 1.0),
        ("iswow64process", 1.0),
    ),
    "win10": (
        ("getstartupinfow", 1.0), ("getfiletype", 2.0), ("getmodulehandlew", 3.0),
        ("getmodulehandleexw", 1.0), ("getprocaddress", 10.0), ("getstdhandle", 2.0),
        ("getcpinfo", 1.0), ("flsalloc", 1.0), ("heapalloc", 16.0),
        ("getcommandlinew", 1.0), ("getsystemtimeasfiletime", 1.0),
        ("gettickcount64", 2.0), ("iswow64process", 1.0),
        ("queryperformancecounter", 1.0),
    ),
}

#: Plausible argument templates rendered into log lines for a few well-known
#: APIs; everything else gets an empty argument list like most Table II rows.
_ARG_TEMPLATES: Dict[str, Sequence[str]] = {
    "getprocaddress": ("{module:08X}", '"{symbol}"'),
    "loadlibrarya": ('"{dll}"',),
    "loadlibraryw": ('"{dll}"',),
    "createfilew": ('"{path}"', "40000000", "3"),
    "regopenkeyexw": ("80000002", '"{regpath}"',),
    "connect": ("{sock}", '"{ip}:{port}"'),
    "writeprocessmemory": ("{handle:08X}", "{module:08X}", "{size}"),
}

_SYMBOLS = ("FlsAlloc", "FlsFree", "FlsGetValue", "FlsSetValue", "EncodePointer",
            "DecodePointer", "IsProcessorFeaturePresent", "InitializeCriticalSectionEx",
            "CreateEventExW", "SetThreadStackGuarantee")
_DLLS = ("kernel32.dll", "user32.dll", "advapi32.dll", "ws2_32.dll", "wininet.dll",
         "shell32.dll", "ole32.dll", "crypt32.dll")
_PATHS = ("C:\\\\Users\\\\victim\\\\AppData\\\\Local\\\\Temp\\\\~tmp01.dat",
          "C:\\\\ProgramData\\\\cache.bin", "C:\\\\Windows\\\\System32\\\\config.nt",
          "C:\\\\Users\\\\victim\\\\Documents\\\\report.docx")
_REGPATHS = ("SOFTWARE\\\\Microsoft\\\\Windows\\\\CurrentVersion\\\\Run",
             "SOFTWARE\\\\Microsoft\\\\Windows NT\\\\CurrentVersion",
             "SYSTEM\\\\CurrentControlSet\\\\Services")


@dataclass
class SandboxRun:
    """The result of executing one sample: the log plus run metadata."""

    log: ApiLog
    os_version: str
    intensity: float
    preamble_calls: int
    sample_calls: int

    @property
    def total_calls(self) -> int:
        """Total number of monitored calls recorded."""
        return len(self.log)


class Sandbox:
    """Simulated instrumented execution environment.

    Parameters
    ----------
    os_version:
        One of ``win7``, ``winxp``, ``win8``, ``win10``.
    random_state:
        Seed or generator controlling count jitter, addresses and thread ids.
    record_args:
        Whether to render plausible argument strings into log lines (slower;
        disabled for bulk corpus generation, enabled for the Table II demo).
    """

    def __init__(self, os_version: str = "win7", random_state: RandomState = None,
                 record_args: bool = True) -> None:
        if os_version not in SUPPORTED_OS_VERSIONS:
            raise SandboxError(
                f"unsupported OS {os_version!r}; expected one of {SUPPORTED_OS_VERSIONS}"
            )
        self.os_version = os_version
        self.record_args = bool(record_args)
        self._rng = as_rng(random_state)

    # ------------------------------------------------------------------ #
    # Count-level execution (fast path shared with the dataset generator)
    # ------------------------------------------------------------------ #
    def execute_counts(self, sample: SourceSample,
                       rng: Optional[np.random.Generator] = None) -> Dict[str, int]:
        """Return the per-API call counts the execution would produce.

        This is the fast path used for bulk corpus generation: it produces
        exactly the distribution the full log path produces (the full path
        renders these counts into log lines), without materialising text.
        """
        rng = self._rng if rng is None else rng
        intensity = _OS_INTENSITY[self.os_version]
        counts: Dict[str, int] = {}
        for api, mean in _OS_PREAMBLE[self.os_version]:
            count = int(rng.poisson(mean))
            if count > 0:
                counts[api] = counts.get(api, 0) + count
        for api, sites in sample.combined_calls().items():
            # Each call site executes at least once; loops add a few repeats.
            repeats = sites + int(rng.poisson(max(sites * (intensity - 0.8), 0.05)))
            if repeats > 0:
                counts[api] = counts.get(api, 0) + repeats
        return counts

    # ------------------------------------------------------------------ #
    # Full log generation (Table II path)
    # ------------------------------------------------------------------ #
    def _render_args(self, api: str, rng: np.random.Generator) -> tuple[str, ...]:
        if not self.record_args:
            return ()
        template = _ARG_TEMPLATES.get(api)
        if template is None:
            return ()
        values = {
            "module": int(rng.integers(0x10000000, 0x7FFFFFFF)),
            "symbol": _SYMBOLS[int(rng.integers(len(_SYMBOLS)))],
            "dll": _DLLS[int(rng.integers(len(_DLLS)))],
            "path": _PATHS[int(rng.integers(len(_PATHS)))],
            "regpath": _REGPATHS[int(rng.integers(len(_REGPATHS)))],
            "sock": int(rng.integers(0x100, 0xFFF)),
            "ip": ".".join(str(int(rng.integers(1, 255))) for _ in range(4)),
            "port": int(rng.integers(1024, 65535)),
            "handle": int(rng.integers(0x100, 0xFFFF)),
            "size": int(rng.integers(0x1000, 0x40000)),
        }
        return tuple(part.format(**values) for part in template)

    def execute(self, sample: SourceSample) -> SandboxRun:
        """Execute ``sample`` and return the full :class:`ApiLog`.

        The log interleaves the OS runtime preamble with the sample's own
        calls in a plausible order: preamble first (as in Table II), then the
        program body with call sites shuffled into a call sequence.
        """
        rng = self._rng
        counts_rng = np.random.default_rng(int(rng.integers(2**63 - 1)))
        preamble_counts: Dict[str, int] = {}
        for api, mean in _OS_PREAMBLE[self.os_version]:
            count = int(counts_rng.poisson(mean))
            if count > 0:
                preamble_counts[api] = count

        intensity = _OS_INTENSITY[self.os_version]
        body_counts: Dict[str, int] = {}
        for api, sites in sample.combined_calls().items():
            repeats = sites + int(counts_rng.poisson(max(sites * (intensity - 0.8), 0.05)))
            if repeats > 0:
                body_counts[api] = repeats

        log = ApiLog(sample_id=sample.sample_id, os_version=self.os_version,
                     label=sample.label)
        thread_main = int(rng.integers(40000, 99999))
        thread_worker = thread_main + int(rng.integers(8, 64))
        base_address = int(rng.integers(0x13F000000, 0x140000000))
        runtime_address = int(rng.integers(0x7FEFD000000, 0x7FEFE000000))

        def _emit(api: str, count: int, thread_id: int, base: int) -> None:
            for _ in range(count):
                address = base + int(rng.integers(0x100, 0xFFFF))
                log.append(LogRecord(api=api, address=address,
                                     args=self._render_args(api, rng),
                                     thread_id=thread_id))

        preamble_calls = 0
        for api, count in preamble_counts.items():
            _emit(api, count, thread_main, runtime_address)
            preamble_calls += count

        # The program body: expand counts into a flat call sequence and
        # shuffle it so related APIs interleave like a real trace.
        body_sequence: List[str] = []
        for api, count in body_counts.items():
            body_sequence.extend([api] * count)
        rng.shuffle(body_sequence)
        sample_calls = len(body_sequence)
        for index, api in enumerate(body_sequence):
            thread_id = thread_main if index % 7 else thread_worker
            _emit(api, 1, thread_id, base_address)

        return SandboxRun(log=log, os_version=self.os_version, intensity=intensity,
                          preamble_calls=preamble_calls, sample_calls=sample_calls)

    def execute_to_text(self, sample: SourceSample) -> str:
        """Execute ``sample`` and return the log rendered as Table II text."""
        return self.execute(sample).log.to_text()
