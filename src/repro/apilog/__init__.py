"""Synthetic API-call-log substrate.

The paper's detector consumes 491 API-call-count features extracted from
sandbox logs of Windows PE samples (Section II-A, Tables II and III).  The
corpus itself is proprietary (McAfee Labs + VirusTotal), so this package
builds the closest synthetic equivalent that exercises the same code paths:

* :mod:`api_catalog` — the canonical, alphabetically ordered catalog of the
  491 monitored API names, aligned so that indices 475-484 reproduce the
  Table III excerpt exactly;
* :mod:`log_format` — the log-line record format of Table II
  (``GetProcAddress:13FBC34D6 (76D30000,"FlsAlloc")"61484"``), a parser and
  a renderer;
* :mod:`behavior_profiles` — parametric behaviour profiles (clean software
  families and malware families) describing which APIs a sample calls and
  how often;
* :mod:`source_sample` — an explicit "source program" representation whose
  API calls can be edited, which is what the live grey-box experiment of
  Section III-B mutates;
* :mod:`sandbox` — a simulated multi-OS (Win7/WinXP/Win8/Win10) sandbox that
  executes a source sample and emits an API log, adding the OS-specific
  runtime preamble that creates the "mixed data" of the paper.
"""

from repro.apilog.api_catalog import ApiCatalog, build_catalog
from repro.apilog.behavior_profiles import (
    BehaviorProfile,
    ProfileLibrary,
    default_profile_library,
)
from repro.apilog.log_format import ApiLog, LogRecord, format_line, parse_line
from repro.apilog.sandbox import Sandbox, SandboxRun
from repro.apilog.source_sample import SourceSample

__all__ = [
    "ApiCatalog",
    "build_catalog",
    "LogRecord",
    "ApiLog",
    "format_line",
    "parse_line",
    "BehaviorProfile",
    "ProfileLibrary",
    "default_profile_library",
    "SourceSample",
    "Sandbox",
    "SandboxRun",
]
