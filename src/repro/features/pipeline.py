"""The end-to-end, serialisable ``log → feature vector`` pipeline."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.apilog.api_catalog import ApiCatalog, build_catalog, default_catalog
from repro.apilog.log_format import ApiLog
from repro.exceptions import NotFittedError, SerializationError
from repro.features.extraction import CountExtractor, CountSource
from repro.features.transformation import (
    CountTransformer,
    FeatureTransformer,
    transformer_from_config,
)
from repro.utils.serialization import load_bundle, save_bundle


class FeaturePipeline:
    """Extraction + transformation, fitted on raw training counts.

    This is the object the *defender* owns (and the first grey-box attacker
    is assumed to know): it fixes both the catalog ordering and the count
    normalisation.  The second grey-box attacker builds their own pipeline
    with a :class:`~repro.features.transformation.BinaryTransformer` instead.
    """

    def __init__(self, catalog: Optional[ApiCatalog] = None,
                 transformer: Optional[FeatureTransformer] = None) -> None:
        self.extractor = CountExtractor(catalog if catalog is not None else default_catalog())
        self.transformer = transformer if transformer is not None else CountTransformer()

    @property
    def catalog(self) -> ApiCatalog:
        """The monitored-API catalog the pipeline extracts against."""
        return self.extractor.catalog

    @property
    def n_features(self) -> int:
        """Feature dimensionality (491 for the canonical catalog)."""
        return self.extractor.n_features

    @property
    def is_fitted(self) -> bool:
        """Whether the transformation has been fitted."""
        return self.transformer.is_fitted

    # ------------------------------------------------------------------ #
    # Fitting / transforming
    # ------------------------------------------------------------------ #
    def fit_counts(self, raw_counts: np.ndarray) -> "FeaturePipeline":
        """Fit the transformation on a matrix of raw counts."""
        self.transformer.fit(raw_counts)
        return self

    def fit(self, sources: Iterable[CountSource]) -> "FeaturePipeline":
        """Fit the transformation on logs / count mappings."""
        return self.fit_counts(self.extractor.extract_batch(sources))

    def transform_counts(self, raw_counts: np.ndarray) -> np.ndarray:
        """Transform a matrix of raw counts into model-input features.

        A zero-row matrix (an empty scoring batch) maps to a zero-row
        feature matrix; a zero *vector* (an empty or fully-unmonitored log)
        transforms like any other row, yielding the all-zero feature vector.
        """
        if not self.is_fitted:
            raise NotFittedError("FeaturePipeline must be fitted before transform")
        raw = np.asarray(raw_counts, dtype=np.float64)
        if raw.ndim == 2 and raw.shape[0] == 0:
            return np.zeros((0, self.n_features), dtype=np.float64)
        return self.transformer.transform(raw)

    def transform(self, sources: Iterable[CountSource]) -> np.ndarray:
        """Transform logs / count mappings into model-input features."""
        return self.transform_counts(self.extractor.extract_batch(sources))

    def transform_one(self, source: CountSource) -> np.ndarray:
        """Transform a single log / count mapping into one feature row."""
        return self.transform([source])[0]

    def fit_transform(self, sources: Iterable[CountSource]) -> np.ndarray:
        """Fit then transform the same sources."""
        raw = self.extractor.extract_batch(sources)
        self.transformer.fit(raw)
        return self.transformer.transform(raw)

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, path: str | Path) -> Path:
        """Persist the pipeline (catalog + fitted transformation)."""
        meta = {
            "catalog": list(self.catalog.names),
            "transformer": self.transformer.get_config(),
        }
        arrays = {}
        if isinstance(self.transformer, CountTransformer) and self.transformer.is_fitted:
            arrays["scales"] = self.transformer.scales
        return save_bundle(path, meta, arrays)

    @classmethod
    def load(cls, path: str | Path) -> "FeaturePipeline":
        """Restore a pipeline saved with :meth:`save`."""
        meta, arrays = load_bundle(path)
        catalog = ApiCatalog(tuple(meta["catalog"]))
        transformer = transformer_from_config(meta["transformer"])
        pipeline = cls(catalog=catalog, transformer=transformer)
        if isinstance(transformer, CountTransformer):
            if "scales" not in arrays:
                raise SerializationError("CountTransformer bundle is missing its scales")
            transformer._scales = arrays["scales"].astype(np.float64)
        return pipeline
