"""Feature transformations: raw counts → model inputs.

The paper (Section II-A) applies a transformation to the raw API counts and
normalises the result to ``[0, 1]``.  :class:`CountTransformer` scales each
count by the per-feature maximum observed on the training set (linear by
default, ``log1p`` as an ablation), which lands every value in ``[0, 1]``
and keeps the "add API calls" attack surface monotonic (more calls → larger
feature value, saturating at 1).

:class:`BinaryTransformer` is the featurisation the second grey-box
experiment assumes the attacker uses: 1 when the API appears, 0 otherwise.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError, NotFittedError, ShapeError
from repro.utils.serialization import load_bundle, save_bundle
from repro.utils.validation import check_matrix


class FeatureTransformer:
    """Interface: ``fit`` on raw training counts, ``transform`` to model space."""

    def fit(self, raw_counts: np.ndarray) -> "FeatureTransformer":
        """Learn any data-dependent parameters from training raw counts."""
        raise NotImplementedError

    def transform(self, raw_counts: np.ndarray) -> np.ndarray:
        """Map raw counts to model-input features in ``[0, 1]``."""
        raise NotImplementedError

    def fit_transform(self, raw_counts: np.ndarray) -> np.ndarray:
        """Convenience: fit then transform the same matrix."""
        return self.fit(raw_counts).transform(raw_counts)

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called (stateless transforms are always fitted)."""
        return True

    def get_config(self) -> dict:
        """JSON-serialisable description."""
        return {"type": type(self).__name__}


class CountTransformer(FeatureTransformer):
    """Per-feature count scaling normalised to ``[0, 1]``.

    Two scaling modes are supported:

    * ``"linear"`` (default): ``feature_j = min(1, count_j / scale_j)`` where
      ``scale_j`` is the maximum training count of feature j (floored at
      ``min_scale_count``).  Because common APIs have large maxima, a typical
      *present* API maps to a small value — which is what makes a θ=0.1
      perturbation a large change relative to natural feature values, the
      regime the paper's attacks operate in.
    * ``"log"``: ``feature_j = min(1, log(1 + count_j) / log(1 + scale_j))``,
      a smoother alternative kept for ablations.
    """

    def __init__(self, min_scale_count: float = 100.0, scaling: str = "linear") -> None:
        if min_scale_count <= 0:
            raise ConfigurationError("min_scale_count must be positive")
        if scaling not in ("linear", "log"):
            raise ConfigurationError(f"scaling must be 'linear' or 'log', got {scaling!r}")
        self.min_scale_count = float(min_scale_count)
        self.scaling = scaling
        self._scales: Optional[np.ndarray] = None

    @property
    def is_fitted(self) -> bool:
        return self._scales is not None

    @property
    def scales(self) -> np.ndarray:
        """Per-feature normalisation denominators (after fitting)."""
        if self._scales is None:
            raise NotFittedError("CountTransformer has not been fitted")
        return self._scales

    def fit(self, raw_counts: np.ndarray) -> "CountTransformer":
        counts = check_matrix(raw_counts, name="raw_counts")
        if np.any(counts < 0):
            raise ShapeError("raw counts must be non-negative")
        max_counts = np.maximum(counts.max(axis=0), self.min_scale_count)
        self._scales = np.log1p(max_counts) if self.scaling == "log" else max_counts
        return self

    def transform(self, raw_counts: np.ndarray) -> np.ndarray:
        if self._scales is None:
            raise NotFittedError("CountTransformer must be fitted before transform")
        counts = check_matrix(raw_counts, name="raw_counts", n_features=self._scales.shape[0])
        if np.any(counts < 0):
            raise ShapeError("raw counts must be non-negative")
        numerator = np.log1p(counts) if self.scaling == "log" else counts
        return np.clip(numerator / self._scales, 0.0, 1.0)

    def inverse_count(self, features: np.ndarray) -> np.ndarray:
        """Map feature values back to (approximate) raw counts.

        Used by the live grey-box tooling to translate "increase feature j by
        theta" into "add roughly N calls to API j in the source".  Values at
        the saturation point map to the fitted maximum count.
        """
        if self._scales is None:
            raise NotFittedError("CountTransformer must be fitted before inverse_count")
        feats = check_matrix(features, name="features", n_features=self._scales.shape[0])
        feats = np.clip(feats, 0.0, 1.0)
        if self.scaling == "log":
            return np.expm1(feats * self._scales)
        return feats * self._scales

    def get_config(self) -> dict:
        return {"type": "CountTransformer", "min_scale_count": self.min_scale_count,
                "scaling": self.scaling}


class BinaryTransformer(FeatureTransformer):
    """Presence/absence featurisation (the second grey-box substitute)."""

    def __init__(self, threshold: float = 0.5) -> None:
        if threshold < 0:
            raise ConfigurationError("threshold must be non-negative")
        self.threshold = float(threshold)

    def fit(self, raw_counts: np.ndarray) -> "BinaryTransformer":
        check_matrix(raw_counts, name="raw_counts")
        return self

    def transform(self, raw_counts: np.ndarray) -> np.ndarray:
        counts = check_matrix(raw_counts, name="raw_counts")
        if np.any(counts < 0):
            raise ShapeError("raw counts must be non-negative")
        return (counts > self.threshold).astype(np.float64)

    def get_config(self) -> dict:
        return {"type": "BinaryTransformer", "threshold": self.threshold}


class IdentityTransformer(FeatureTransformer):
    """Pass-through transform (for already-featurised data in unit tests)."""

    def fit(self, raw_counts: np.ndarray) -> "IdentityTransformer":
        check_matrix(raw_counts, name="raw_counts")
        return self

    def transform(self, raw_counts: np.ndarray) -> np.ndarray:
        return check_matrix(raw_counts, name="raw_counts")


_TRANSFORMERS = {
    "CountTransformer": CountTransformer,
    "BinaryTransformer": BinaryTransformer,
    "IdentityTransformer": IdentityTransformer,
}


def transformer_from_config(config: dict) -> FeatureTransformer:
    """Rebuild a transformer from its :meth:`FeatureTransformer.get_config`."""
    kind = config.get("type")
    if kind not in _TRANSFORMERS:
        raise ConfigurationError(f"unknown transformer type {kind!r}")
    kwargs = {k: v for k, v in config.items() if k != "type"}
    return _TRANSFORMERS[kind](**kwargs)
