"""Raw API-call-count extraction from logs."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Union

import numpy as np

from repro.apilog.api_catalog import ApiCatalog, default_catalog
from repro.apilog.log_format import ApiLog
from repro.exceptions import ShapeError

CountSource = Union[ApiLog, Mapping[str, int]]


class CountExtractor:
    """Turn an API log (or a pre-aggregated count mapping) into a count vector.

    Only APIs present in the monitored catalog contribute; every other call
    is ignored, exactly as an instrumentation-based monitor only records the
    hooked APIs.

    Parameters
    ----------
    catalog:
        The monitored-API catalog; defaults to the canonical 491-API catalog.
    """

    def __init__(self, catalog: ApiCatalog | None = None) -> None:
        self.catalog = catalog if catalog is not None else default_catalog()

    @property
    def n_features(self) -> int:
        """Dimensionality of the extracted vectors."""
        return len(self.catalog)

    def _counts_of(self, source: CountSource) -> Mapping[str, int]:
        if isinstance(source, ApiLog):
            return source.api_counts()
        if isinstance(source, Mapping):
            return source
        raise ShapeError(
            f"expected an ApiLog or a mapping of api->count, got {type(source).__name__}"
        )

    def extract(self, source: CountSource) -> np.ndarray:
        """Extract a single raw-count vector of shape ``(n_features,)``."""
        counts = self._counts_of(source)
        vector = np.zeros(self.n_features, dtype=np.float64)
        for api, count in counts.items():
            if count < 0:
                raise ShapeError(f"negative count for API {api!r}")
            key = api.lower()
            if self.catalog.monitored(key):
                vector[self.catalog.index_of(key)] += count
        return vector

    def extract_batch(self, sources: Iterable[CountSource]) -> np.ndarray:
        """Extract a matrix of raw counts, one row per source.

        An empty iterable yields a well-formed ``(0, n_features)`` matrix —
        the serving path sees empty micro-batches and must not raise.
        Likewise a log whose APIs are all unmonitored extracts to an all-zero
        row rather than an error (the detector simply observes nothing).
        """
        rows = [self.extract(source) for source in sources]
        if not rows:
            return np.zeros((0, self.n_features), dtype=np.float64)
        return np.vstack(rows)

    def monitored_fraction(self, source: CountSource) -> float:
        """Fraction of the source's calls that hit monitored APIs.

        Useful as a sanity diagnostic of the synthetic profiles: it should be
        close to 1.0 because profiles are built from the catalog.
        """
        counts = self._counts_of(source)
        total = sum(counts.values())
        if total == 0:
            return 0.0
        monitored = sum(count for api, count in counts.items()
                        if self.catalog.monitored(api))
        return monitored / total
