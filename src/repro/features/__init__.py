"""Feature extraction and transformation.

The detector's input is a 491-dimensional vector of API-call counts
(Section II-A): raw counts are extracted from the sandbox log, passed
through a feature transformation, and normalised to ``[0, 1]``.  The
grey-box experiments additionally use a *binary* featurisation (API present
/ absent) to model an attacker who knows the API names but not the target's
transformation.

* :class:`~repro.features.extraction.CountExtractor` — log → raw counts;
* :class:`~repro.features.transformation.CountTransformer` — raw counts →
  normalised ``[0, 1]`` features (the target model's featurisation);
* :class:`~repro.features.transformation.BinaryTransformer` — raw counts →
  0/1 presence features (the second grey-box substitute's featurisation);
* :class:`~repro.features.pipeline.FeaturePipeline` — the end-to-end,
  serialisable ``log → feature vector`` pipeline.
"""

from repro.features.extraction import CountExtractor
from repro.features.pipeline import FeaturePipeline
from repro.features.transformation import (
    BinaryTransformer,
    CountTransformer,
    FeatureTransformer,
    IdentityTransformer,
)

__all__ = [
    "CountExtractor",
    "FeatureTransformer",
    "CountTransformer",
    "BinaryTransformer",
    "IdentityTransformer",
    "FeaturePipeline",
]
