"""Deterministic, seedable fault injection for the serving fleet.

Production ML serving stacks prove their dependability claims with chaos
testing: faults are *injected* at well-known sites and the stack must
recover without losing, duplicating or corrupting work.  This module is the
injection half of :mod:`repro.reliability`:

* :class:`FaultSpec` — one armed fault: a named *site*, an *action*
  (``error`` / ``crash`` / ``exit`` / ``delay`` / ``malformed``), a
  1-based hit index ``at`` selecting *which* invocation fires, and an
  optional ``where`` context filter (e.g. ``{"worker": 1}``) so a plan can
  target one replica of a fleet;
* :class:`FaultPlan` — a JSON-serialisable list of specs (what the CLI's
  ``serve --fault-plan plan.json`` loads and worker configs pickle);
* :class:`FaultInjector` — the per-process runtime: instrumented sites call
  :meth:`FaultInjector.fire` and the injector counts matching invocations,
  firing each spec exactly when its hit window is reached.

Everything is deterministic: a spec fires on the Nth *matching* invocation
of its site in this process, never randomly, so a chaos run is replayable
and its :class:`~repro.reliability.report.ReliabilityReport` counts can be
asserted exactly.

Instrumented sites
------------------
==================  =====================================================
``fleet.dispatch``  a fleet replica pulled one request off the dispatch
                    queue (context: ``worker``, ``seq``)
``service.flush``   a :class:`~repro.serving.service.ScoringService`
                    micro-batch is about to score (context: ``n``)
``grid.cell``       a :class:`~repro.parallel.grid.GridExecutor` worker is
                    about to run one cell (context: ``cell``, ``attempt``)
``cache.lock``      an :class:`~repro.utils.artifact_cache.ArtifactCache`
                    builder just acquired an entry lock (context: ``kind``,
                    ``key``)
==================  =====================================================

Actions
-------
``error``
    raise :class:`InjectedFault` (a transient, retryable failure);
``crash``
    raise :class:`WorkerCrash` — a ``BaseException`` that sails past
    ``except Exception`` recovery code; the fleet worker loop catches it,
    flushes its result queue and hard-exits, simulating a replica crash;
``exit``
    ``os._exit(1)`` immediately — a hard crash that releases nothing
    (use only inside sacrificial subprocesses, e.g. a cache-lock holder);
``delay``
    sleep ``delay_ms`` and continue (latency spike);
``malformed``
    no-op at the injector; the call site receives the fired spec back and
    corrupts its own payload (e.g. a non-finite feature vector).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.exceptions import ReproError

__all__ = [
    "FAULT_ACTIONS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "WorkerCrash",
    "maybe_fire",
]

#: Every action a :class:`FaultSpec` may request.
FAULT_ACTIONS = ("error", "crash", "exit", "delay", "malformed")


class InjectedFault(ReproError):
    """A transient failure raised by the fault injector (retryable)."""


class WorkerCrash(BaseException):
    """An injected replica crash.

    Derives from ``BaseException`` so ordinary ``except Exception`` retry
    and recovery paths cannot absorb it — only the worker's top-level crash
    handler (which simulates the process dying) may catch it.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: *where* it strikes, *when*, and *what* it does.

    Parameters
    ----------
    site:
        Instrumented site name (see the module docstring's table).
    action:
        One of :data:`FAULT_ACTIONS`.
    at:
        1-based index of the matching invocation that fires (default: the
        first).  ``count`` consecutive matching invocations fire from there.
    count:
        How many consecutive matching invocations fire (default 1).
    delay_ms:
        Sleep duration for the ``delay`` action.
    where:
        Context filter: the spec only matches invocations whose ``fire``
        context carries every listed key with an equal value.
    message:
        Optional text carried by the raised :class:`InjectedFault`.
    """

    site: str
    action: str = "error"
    at: int = 1
    count: int = 1
    delay_ms: float = 0.0
    where: Mapping[str, object] = field(default_factory=dict)
    message: str = ""

    def __post_init__(self) -> None:
        if self.action not in FAULT_ACTIONS:
            raise ReproError(f"unknown fault action {self.action!r}; "
                             f"choose from {FAULT_ACTIONS}")
        if self.at < 1:
            raise ReproError(f"fault 'at' is a 1-based hit index, got {self.at}")
        if self.count < 1:
            raise ReproError(f"fault 'count' must be >= 1, got {self.count}")
        if self.delay_ms < 0:
            raise ReproError(f"fault 'delay_ms' must be >= 0, got {self.delay_ms}")
        # Freeze the filter so specs stay hashable/picklable value objects.
        object.__setattr__(self, "where", dict(self.where))

    def matches(self, context: Mapping[str, object]) -> bool:
        """Whether an invocation context passes this spec's ``where`` filter."""
        return all(key in context and context[key] == value
                   for key, value in self.where.items())

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation (what fault-plan files hold)."""
        payload: Dict[str, object] = {"site": self.site, "action": self.action,
                                      "at": self.at}
        if self.count != 1:
            payload["count"] = self.count
        if self.delay_ms:
            payload["delay_ms"] = self.delay_ms
        if self.where:
            payload["where"] = dict(self.where)
        if self.message:
            payload["message"] = self.message
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "FaultSpec":
        """Inverse of :meth:`to_dict`."""
        known = {"site", "action", "at", "count", "delay_ms", "where", "message"}
        unknown = set(payload) - known
        if unknown:
            raise ReproError(f"unknown fault-spec fields {sorted(unknown)}")
        if "site" not in payload:
            raise ReproError("fault spec must name a 'site'")
        return cls(site=str(payload["site"]),
                   action=str(payload.get("action", "error")),
                   at=int(payload.get("at", 1)),
                   count=int(payload.get("count", 1)),
                   delay_ms=float(payload.get("delay_ms", 0.0)),
                   where=dict(payload.get("where", {})),
                   message=str(payload.get("message", "")))


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, serialisable collection of :class:`FaultSpec` entries.

    Plans travel as JSON (CLI ``--fault-plan``) and as plain dicts inside
    pickled worker configs; :meth:`injector` arms them in a process.
    """

    specs: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def __len__(self) -> int:
        return len(self.specs)

    def sites(self) -> List[str]:
        """The distinct sites this plan arms (first-seen order)."""
        seen: List[str] = []
        for spec in self.specs:
            if spec.site not in seen:
                seen.append(spec.site)
        return seen

    def injector(self, scope: Optional[Mapping[str, object]] = None,
                 sleep: Callable[[float], None] = time.sleep) -> "FaultInjector":
        """Arm this plan in the current process (see :class:`FaultInjector`)."""
        return FaultInjector(self, scope=scope, sleep=sleep)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation."""
        return {"faults": [spec.to_dict() for spec in self.specs]}

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The plan as a JSON document (the ``--fault-plan`` file format)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, payload) -> "FaultPlan":
        """Accept ``{"faults": [...]}``, a bare list, or ``None`` (empty)."""
        if payload is None:
            return cls()
        if isinstance(payload, Mapping):
            payload = payload.get("faults", [])
        return cls(specs=tuple(FaultSpec.from_dict(entry) for entry in payload))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a ``--fault-plan`` JSON document."""
        try:
            return cls.from_dict(json.loads(text))
        except ValueError as error:
            raise ReproError(f"invalid fault-plan JSON: {error}") from error


class FaultInjector:
    """Per-process runtime of a :class:`FaultPlan`.

    Parameters
    ----------
    plan:
        The armed plan.
    scope:
        Base context merged into every :meth:`fire` call — a fleet worker
        passes ``{"worker": worker_id}`` so plan specs can target one
        replica without the call sites threading identity everywhere.
    sleep:
        Time source for ``delay`` actions (injectable for tests).
    """

    def __init__(self, plan: FaultPlan,
                 scope: Optional[Mapping[str, object]] = None,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        self.plan = plan
        self.scope = dict(scope or {})
        self._sleep = sleep
        self._hits: List[int] = [0] * len(plan.specs)
        #: site -> number of faults actually fired there (for the report).
        self.fired: Dict[str, int] = {}

    def fire(self, site: str, **context: object) -> Optional[FaultSpec]:
        """Announce one invocation of ``site``; maybe inject a fault.

        Raises :class:`InjectedFault` (``error``) or :class:`WorkerCrash`
        (``crash``), calls ``os._exit(1)`` (``exit``), sleeps (``delay``),
        or returns the fired spec (``malformed`` — and ``delay``, after
        sleeping) for the call site to act on.  Returns ``None`` when no
        spec fired.
        """
        full_context = {**self.scope, **context}
        fired_spec: Optional[FaultSpec] = None
        for index, spec in enumerate(self.plan.specs):
            if spec.site != site or not spec.matches(full_context):
                continue
            self._hits[index] += 1
            hit = self._hits[index]
            if not spec.at <= hit < spec.at + spec.count:
                continue
            self.fired[site] = self.fired.get(site, 0) + 1
            if spec.action == "error":
                raise InjectedFault(
                    spec.message or f"injected fault at {site} (hit {hit})")
            if spec.action == "crash":
                raise WorkerCrash(spec.message or site)
            if spec.action == "exit":  # pragma: no cover - kills the process
                os._exit(1)
            if spec.action == "delay":
                self._sleep(spec.delay_ms / 1000.0)
            fired_spec = spec
        return fired_spec

    def fired_total(self) -> int:
        """Total faults fired across every site."""
        return sum(self.fired.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FaultInjector({len(self.plan)} specs, scope={self.scope!r}, "
                f"fired={self.fired!r})")


def maybe_fire(injector: Optional[FaultInjector], site: str,
               **context: object) -> Optional[FaultSpec]:
    """Fire ``site`` on ``injector`` when one is armed; no-op otherwise.

    The one-liner instrumented sites call so the fault-free fast path stays
    a single ``None`` check.
    """
    if injector is None:
        return None
    return injector.fire(site, **context)
