"""Structured accounting of every reliability event in a run.

A :class:`ReliabilityReport` is the ledger the chaos benchmark asserts
against: each supervision or degradation event increments exactly one
counter, so after a run under a known :class:`~repro.reliability.faults.FaultPlan`
the counts must match the plan exactly — that is the dependability claim.
Reports merge associatively (fleet dispatchers fold per-replica reports
into one) and serialise to plain dicts for fleet stats messages and
``BENCH_reliability.json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

__all__ = ["ReliabilityReport"]


@dataclass
class ReliabilityReport:
    """Counters for every fault seen and every recovery action taken.

    Attributes
    ----------
    restarts:
        Fleet replicas restarted after a detected death.
    redispatches:
        In-flight requests re-enqueued after their replica died.
    flush_retries:
        Micro-batch flushes re-attempted under a retry policy.
    isolated:
        Poison requests bisected out of a batch into ``error`` verdicts.
    sheds:
        Requests answered with ``status="shed"`` instead of being scored.
    fallbacks:
        Defended endpoints that fell back to the undefended fast path.
    breaker_trips:
        Circuit-breaker open transitions.
    cell_retries:
        Grid cells re-run after a failure.
    cell_timeouts:
        Grid cells abandoned after exceeding the per-shard timeout.
    stale_locks_swept:
        Dead-owner cache lock files removed instead of waited on.
    duplicates:
        Duplicate verdicts discarded by the dispatcher (must stay 0).
    lost:
        Requests never answered (must stay 0).
    faults:
        Injected faults actually fired, per site.
    """

    restarts: int = 0
    redispatches: int = 0
    flush_retries: int = 0
    isolated: int = 0
    sheds: int = 0
    fallbacks: int = 0
    breaker_trips: int = 0
    cell_retries: int = 0
    cell_timeouts: int = 0
    stale_locks_swept: int = 0
    duplicates: int = 0
    lost: int = 0
    faults: Dict[str, int] = field(default_factory=dict)

    _COUNTERS = ("restarts", "redispatches", "flush_retries", "isolated",
                 "sheds", "fallbacks", "breaker_trips", "cell_retries",
                 "cell_timeouts", "stale_locks_swept", "duplicates", "lost")

    def merge(self, other: "ReliabilityReport") -> "ReliabilityReport":
        """Fold ``other``'s counts into this report (returns self)."""
        for name in self._COUNTERS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        for site, count in other.faults.items():
            self.faults[site] = self.faults.get(site, 0) + count
        return self

    def record_faults(self, fired: Mapping[str, int]) -> None:
        """Fold an injector's per-site fired counts into :attr:`faults`."""
        for site, count in fired.items():
            self.faults[site] = self.faults.get(site, 0) + count

    def total_events(self) -> int:
        """Every recovery/degradation event counted (faults excluded)."""
        return sum(getattr(self, name) for name in self._COUNTERS)

    def empty(self) -> bool:
        """True when nothing at all happened (clean, fault-free run)."""
        return self.total_events() == 0 and not self.faults

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for stats messages and benchmark JSON."""
        payload: Dict[str, object] = {name: getattr(self, name)
                                      for name in self._COUNTERS}
        payload["faults"] = dict(self.faults)
        return payload

    @classmethod
    def from_dict(cls, payload: Optional[Mapping[str, object]]) -> "ReliabilityReport":
        """Inverse of :meth:`as_dict`; ``None`` yields an empty report."""
        payload = dict(payload or {})
        faults = dict(payload.pop("faults", {}))
        counters = {name: int(payload.get(name, 0)) for name in cls._COUNTERS}
        return cls(faults=faults, **counters)

    def render(self) -> str:
        """Human-readable summary for CLI output."""
        lines: List[str] = ["reliability:"]
        pairs = [(name.replace("_", " "), getattr(self, name))
                 for name in self._COUNTERS]
        active = [f"{label}={value}" for label, value in pairs if value]
        lines.append("  " + (", ".join(active) if active else "no events"))
        if self.faults:
            fired = ", ".join(f"{site}={count}"
                              for site, count in sorted(self.faults.items()))
            lines.append(f"  faults fired: {fired}")
        return "\n".join(lines)
