"""Fault injection, supervision policies, and reliability accounting.

The dependability layer of the serving stack: deterministic chaos
(:mod:`~repro.reliability.faults`), retry/backoff and circuit breaking
(:mod:`~repro.reliability.retry`), and the structured event ledger
(:mod:`~repro.reliability.report`) that the chaos soak benchmark asserts
against.
"""

from repro.reliability.faults import (
    FAULT_ACTIONS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    WorkerCrash,
    maybe_fire,
)
from repro.reliability.report import ReliabilityReport
from repro.reliability.retry import CircuitBreaker, RetryPolicy

__all__ = [
    "FAULT_ACTIONS",
    "CircuitBreaker",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "ReliabilityReport",
    "RetryPolicy",
    "WorkerCrash",
    "maybe_fire",
]
