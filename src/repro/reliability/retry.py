"""Retry with exponential backoff + deterministic jitter, and a circuit breaker.

The recovery half of :mod:`repro.reliability`: :class:`RetryPolicy` decides
*how long to wait* between attempts and :class:`CircuitBreaker` decides
*whether to attempt at all*.  Both are deterministic — jitter is drawn from
a seeded generator keyed on ``(seed, token, attempt)`` so two processes
retrying different shards never sync up, yet every run of the same plan
produces the same schedule.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type

import numpy as np

from repro.exceptions import ReproError

__all__ = ["CircuitBreaker", "RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic, seeded jitter.

    Parameters
    ----------
    max_retries:
        Extra attempts after the first (``0`` disables retrying).
    base_delay_s:
        Delay before the first retry; attempt ``k`` waits
        ``base_delay_s * multiplier**k`` (capped at ``max_delay_s``).
    multiplier:
        Exponential growth factor.
    max_delay_s:
        Ceiling on any single delay.
    jitter:
        Fraction of the capped delay added as jitter in ``[0, jitter)``;
        drawn deterministically from ``(seed, token, attempt)``.
    seed:
        Root of the jitter stream.
    """

    max_retries: int = 2
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ReproError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ReproError("retry delays must be >= 0")
        if self.multiplier < 1.0:
            raise ReproError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ReproError(f"jitter must be in [0, 1], got {self.jitter}")

    @property
    def max_attempts(self) -> int:
        """Total attempts including the first."""
        return self.max_retries + 1

    def delay(self, attempt: int, token: int = 0) -> float:
        """Backoff before retry ``attempt`` (0-based) of work item ``token``.

        ``token`` keys the jitter stream — pass a shard index or a stable
        hash so concurrent retriers spread out instead of thundering back
        together, while the whole schedule stays reproducible.
        """
        if attempt < 0:
            raise ReproError(f"attempt must be >= 0, got {attempt}")
        base = min(self.base_delay_s * self.multiplier ** attempt,
                   self.max_delay_s)
        if self.jitter == 0.0 or base == 0.0:
            return base
        rng = np.random.default_rng((self.seed, token, attempt))
        return float(base * (1.0 + self.jitter * rng.random()))

    def run(self, fn: Callable[[], object], *,
            retry_on: Tuple[Type[BaseException], ...] = (Exception,),
            token: int = 0,
            sleep: Callable[[float], None] = time.sleep,
            on_retry: Optional[Callable[[int, BaseException], None]] = None):
        """Call ``fn`` with up to ``max_retries`` backed-off re-attempts.

        ``retry_on`` lists the exception types worth retrying — anything
        else (including ``BaseException`` crashes) propagates immediately.
        ``on_retry(attempt, error)`` fires before each re-attempt sleep.
        """
        attempt = 0
        while True:
            try:
                return fn()
            except retry_on as error:
                if attempt >= self.max_retries:
                    raise
                if on_retry is not None:
                    on_retry(attempt, error)
                sleep(self.delay(attempt, token=token))
                attempt += 1

    def to_dict(self) -> dict:
        """JSON-serialisable representation (rides in worker configs)."""
        return {"max_retries": self.max_retries,
                "base_delay_s": self.base_delay_s,
                "multiplier": self.multiplier,
                "max_delay_s": self.max_delay_s,
                "jitter": self.jitter,
                "seed": self.seed}

    @classmethod
    def from_dict(cls, payload: Optional[dict]) -> "RetryPolicy":
        """Inverse of :meth:`to_dict`; ``None`` yields the defaults."""
        return cls(**(payload or {}))


class CircuitBreaker:
    """Trip after consecutive failures; re-admit one trial after a cooldown.

    States follow the classic pattern:

    * **closed** — everything flows; failures are counted.
    * **open** — ``failure_threshold`` consecutive failures seen;
      :meth:`allow` answers ``False`` until ``reset_after_s`` elapses.
    * **half-open** — cooldown elapsed; :meth:`allow` admits trial calls.
      A success closes the breaker, a failure re-opens it (cooldown
      restarts).

    ``clock`` is injectable so tests can step time explicitly.
    """

    def __init__(self, failure_threshold: int = 3, reset_after_s: float = 1.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if failure_threshold < 1:
            raise ReproError(
                f"failure_threshold must be >= 1, got {failure_threshold}")
        if reset_after_s < 0:
            raise ReproError(f"reset_after_s must be >= 0, got {reset_after_s}")
        self.failure_threshold = failure_threshold
        self.reset_after_s = reset_after_s
        self._clock = clock
        self._failures = 0
        self._opened_at: Optional[float] = None
        self.n_trips = 0

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half-open"``."""
        if self._opened_at is None:
            return "closed"
        if self._clock() - self._opened_at >= self.reset_after_s:
            return "half-open"
        return "open"

    def allow(self) -> bool:
        """Whether the protected call may proceed right now."""
        return self.state != "open"

    def record_success(self) -> None:
        """Note a successful call: closes the breaker, clears the count."""
        self._failures = 0
        self._opened_at = None

    def record_failure(self) -> None:
        """Note a failed call; trips the breaker at the threshold."""
        self._failures += 1
        if self._failures >= self.failure_threshold:
            if self._opened_at is None:
                self.n_trips += 1
            self._opened_at = self._clock()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CircuitBreaker(state={self.state!r}, "
                f"failures={self._failures}, trips={self.n_trips})")
