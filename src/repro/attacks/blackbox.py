"""The Figure 2 black-box attack framework.

The paper *proposes* (and leaves as future work) a framework in which the
attacker has no knowledge of the target system at all: they train a
substitute model purely from the target's observable decisions and then rely
on transferability.  This module implements that framework end to end,
following Papernot et al.'s practical black-box attack:

1. the attacker assembles a small seed set of samples (their own corpus);
2. the deployed detector — wrapped behind a :class:`~repro.data.oracle.LabelOracle`
   — is queried for labels;
3. a substitute model is trained on the oracle-labelled data;
4. the dataset is augmented with Jacobian-based synthetic samples
   (``x' = x + lambda * sign(dF_label(x)/dx)``) that probe the oracle near
   its decision boundary, and steps 2-4 repeat for ``augmentation_rounds``;
5. adversarial examples are crafted on the substitute with JSMA and replayed
   against the target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.attacks.constraints import PerturbationConstraints
from repro.attacks.jsma import JsmaAttack
from repro.attacks.transfer import TransferAttack, TransferResult
from repro.config import ScaleProfile, default_profile
from repro.data.dataset import Dataset
from repro.data.oracle import LabelOracle
from repro.exceptions import AttackError
from repro.models.substitute_model import SubstituteModel
from repro.nn.network import NeuralNetwork
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_matrix


@dataclass
class BlackBoxAttackReport:
    """Everything the black-box engagement produced."""

    substitute: SubstituteModel
    transfer: TransferResult
    oracle_queries: int
    augmentation_rounds: int
    substitute_agreement: float
    seed_set_size: int

    def summary(self) -> Dict[str, float]:
        """Compact numeric summary for experiment tables."""
        summary = self.transfer.summary()
        summary.update({
            "oracle_queries": float(self.oracle_queries),
            "augmentation_rounds": float(self.augmentation_rounds),
            "substitute_agreement": self.substitute_agreement,
            "seed_set_size": float(self.seed_set_size),
        })
        return summary


class BlackBoxFramework:
    """Oracle-only substitute training + JSMA transfer (Figure 2).

    Parameters
    ----------
    oracle:
        Query-only access to the deployed detector.
    scale:
        Scale profile controlling the substitute's size and training length.
    augmentation_rounds:
        Number of Jacobian-augmentation rounds (ρ in Papernot et al.).
    augmentation_step:
        Step size λ of the Jacobian augmentation.
    constraints:
        Constraint set for the final JSMA crafting step.
    """

    def __init__(self, oracle: LabelOracle, scale: Optional[ScaleProfile] = None,
                 augmentation_rounds: int = 2, augmentation_step: float = 0.1,
                 constraints: Optional[PerturbationConstraints] = None,
                 random_state: RandomState = 0) -> None:
        if augmentation_rounds < 0:
            raise AttackError("augmentation_rounds must be non-negative")
        if augmentation_step <= 0:
            raise AttackError("augmentation_step must be positive")
        self.oracle = oracle
        self.scale = scale if scale is not None else default_profile()
        self.augmentation_rounds = int(augmentation_rounds)
        self.augmentation_step = float(augmentation_step)
        self.constraints = constraints if constraints is not None else PerturbationConstraints()
        self._rng = as_rng(random_state)

    # ------------------------------------------------------------------ #
    # Substitute training with Jacobian-based augmentation
    # ------------------------------------------------------------------ #
    def train_substitute(self, seed_features: np.ndarray) -> SubstituteModel:
        """Train the substitute from oracle labels on (augmented) seed data."""
        features = check_matrix(seed_features, name="seed_features")
        labels = self.oracle.labels(features)
        substitute = SubstituteModel.for_scale(
            self.scale, random_state=self._rng, n_features=features.shape[1],
            name="blackbox_substitute")

        for round_index in range(self.augmentation_rounds + 1):
            dataset = Dataset(features=features, labels=labels,
                              name=f"blackbox_round_{round_index}")
            substitute.fit(dataset, epochs=self.scale.substitute_epochs,
                           batch_size=self.scale.batch_size,
                           learning_rate=self.scale.learning_rate,
                           random_state=self._rng)
            if round_index == self.augmentation_rounds:
                break
            # Jacobian-based dataset augmentation: push each sample along the
            # sign of the gradient of its current label's output, query the
            # oracle for the new points, and grow the training set.
            jacobian = substitute.network.class_gradients(features)
            label_grad = jacobian[np.arange(features.shape[0]), labels, :]
            synthetic = features + self.augmentation_step * np.sign(label_grad)
            synthetic = np.clip(synthetic, self.constraints.clip_min,
                                self.constraints.clip_max)
            synthetic_labels = self.oracle.labels(synthetic)
            features = np.vstack([features, synthetic])
            labels = np.concatenate([labels, synthetic_labels])
        return substitute

    # ------------------------------------------------------------------ #
    # End-to-end engagement
    # ------------------------------------------------------------------ #
    def execute(self, seed_features: np.ndarray,
                malware_features: np.ndarray) -> BlackBoxAttackReport:
        """Run the full Figure 2 pipeline and report transfer statistics.

        ``seed_features`` is the attacker's unlabeled seed corpus (mixed
        clean/malware); ``malware_features`` are the malware samples to make
        evasive.
        """
        malware_features = check_matrix(malware_features, name="malware_features")
        substitute = self.train_substitute(seed_features)

        # Agreement between substitute and oracle on the malware batch is a
        # useful diagnostic of how well the substitute copied the boundary.
        oracle_labels = self.oracle.labels(malware_features)
        substitute_labels = substitute.predict(malware_features)
        agreement = float(np.mean(oracle_labels == substitute_labels))

        attack = JsmaAttack(substitute.network, constraints=self.constraints)
        transfer = TransferAttack(attack, self.oracle.network)
        result = transfer.run(malware_features)
        return BlackBoxAttackReport(
            substitute=substitute,
            transfer=result,
            oracle_queries=self.oracle.queries_used,
            augmentation_rounds=self.augmentation_rounds,
            substitute_agreement=agreement,
            seed_set_size=int(np.asarray(seed_features).shape[0]),
        )
