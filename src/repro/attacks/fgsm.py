"""Fast Gradient Sign Method, adapted to the add-only API threat model.

FGSM (Goodfellow et al., 2015) is discussed as related work and is the
classic attack adversarial training was designed around.  It is included to
support the cross-attack ablation the paper alludes to ("the defense
performance decreases for different attack methods"): a detector
adversarially trained on JSMA examples can be evaluated against FGSM
examples and vice versa.

For a malware sample the attack takes a single step towards the clean class:
``x' = x - eps * sign(d L(x, clean) / dx)``, then projects onto the add-only
box (only components that *increase* feature values are kept).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.attacks.base import Attack, AttackResult
from repro.attacks.constraints import PerturbationConstraints
from repro.config import CLASS_CLEAN
from repro.exceptions import AttackError
from repro.nn.network import NeuralNetwork
from repro.scenarios.registry import Param, register_attack
from repro.utils.topk import kth_largest
from repro.utils.validation import check_matrix


@register_attack("fgsm", params=(
    Param("epsilon", "float", None, optional=True,
          help="gradient-sign step size (None follows the constraint theta)"),
    Param("target_class", "int", CLASS_CLEAN, choices=(0, 1),
          help="class the single gradient step moves the sample towards"),
))
class FgsmAttack(Attack):
    """Single-step gradient-sign attack towards the clean class.

    ``epsilon`` defaults to the constraint θ.  The γ budget is honoured by
    keeping only the ``gamma * d`` components with the largest gradient
    magnitude, so FGSM results remain comparable with JSMA at the same
    operating point.
    """

    name = "fgsm"

    def __init__(self, network: NeuralNetwork,
                 constraints: Optional[PerturbationConstraints] = None,
                 epsilon: Optional[float] = None,
                 target_class: int = CLASS_CLEAN) -> None:
        super().__init__(network, constraints)
        if epsilon is not None and epsilon < 0:
            raise AttackError(f"epsilon must be non-negative, got {epsilon}")
        self.epsilon = float(epsilon) if epsilon is not None else self.constraints.theta
        self.target_class = int(target_class)

    def run(self, features: np.ndarray) -> AttackResult:
        original = check_matrix(features, name="features",
                                n_features=self.network.input_dim)
        n_samples, n_features = original.shape
        budget = self.constraints.max_features(n_features)
        if budget == 0 or self.epsilon == 0.0:
            return self._package(original, original.copy(),
                                 np.zeros(n_samples, dtype=np.int64))

        # Gradient of the loss towards the *target* class: descending it
        # makes the sample look like the target class.
        target_labels = np.full(n_samples, self.target_class, dtype=np.int64)
        grad = self.network.loss_input_gradient(original, target_labels)
        step = -np.sign(grad) * self.epsilon

        if self.constraints.add_only:
            step = np.maximum(step, 0.0)
        modifiable = self.constraints.modifiable_mask(n_features)
        step = np.where(modifiable[None, :], step, 0.0)

        # Honour the gamma budget: keep the strongest |gradient| components.
        # The budget-th largest magnitude comes from an O(d) partition — a
        # full per-row argsort only to read one order statistic was the
        # single O(d log d) cost of this one-shot attack.
        magnitude = np.where(step != 0.0, np.abs(grad), -np.inf)
        if budget < n_features:
            thresholds = kth_largest(magnitude, budget)[:, None]
            keep = magnitude >= thresholds
            step = np.where(keep, step, 0.0)

        adversarial = self.constraints.project(original + step, original)
        iterations = np.ones(n_samples, dtype=np.int64)
        return self._package(original, adversarial, iterations)
