"""Attack interface and the :class:`AttackResult` container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.attacks.constraints import PerturbationConstraints
from repro.config import CLASS_CLEAN, CLASS_MALWARE
from repro.exceptions import AttackError
from repro.nn.metrics import detection_rate
from repro.nn.network import NeuralNetwork
from repro.utils.validation import check_matrix


@dataclass
class AttackResult:
    """Everything an attack run produces.

    Attributes
    ----------
    original:
        The unmodified feature matrix ``(n, d)``.
    adversarial:
        The perturbed feature matrix ``(n, d)``.
    original_predictions / adversarial_predictions:
        Hard decisions of the *crafting* model before / after the attack.
    perturbed_features:
        Number of features changed per sample.
    constraints:
        The constraint set the attack ran under.
    attack_name:
        Name of the attack that produced the result.
    iterations:
        Per-sample number of attack iterations (when meaningful).
    """

    original: np.ndarray
    adversarial: np.ndarray
    original_predictions: np.ndarray
    adversarial_predictions: np.ndarray
    perturbed_features: np.ndarray
    constraints: PerturbationConstraints
    attack_name: str = "attack"
    iterations: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.original = check_matrix(self.original, name="original")
        self.adversarial = check_matrix(self.adversarial, name="adversarial",
                                        n_features=self.original.shape[1])
        if self.adversarial.shape[0] != self.original.shape[0]:
            raise AttackError("original and adversarial have different sample counts")

    @property
    def n_samples(self) -> int:
        """Number of attacked samples."""
        return self.original.shape[0]

    @property
    def evasion_mask(self) -> np.ndarray:
        """Boolean mask of samples classified clean (class 0) after the attack."""
        return self.adversarial_predictions == CLASS_CLEAN

    @property
    def evasion_rate(self) -> float:
        """Fraction of samples that evade the crafting model."""
        return float(np.mean(self.evasion_mask))

    @property
    def detection_rate(self) -> float:
        """Fraction of adversarial samples still detected by the crafting model."""
        return detection_rate(self.adversarial_predictions)

    @property
    def l2_distances(self) -> np.ndarray:
        """Per-sample L2 norm of the perturbation (paper's perturbation metric)."""
        return np.linalg.norm(self.adversarial - self.original, axis=1)

    @property
    def mean_l2_distance(self) -> float:
        """Mean perturbation L2 norm."""
        return float(np.mean(self.l2_distances))

    @property
    def mean_perturbed_features(self) -> float:
        """Mean number of features changed per sample."""
        return float(np.mean(self.perturbed_features))

    def detection_rate_under(self, model: NeuralNetwork) -> float:
        """Detection rate of an arbitrary model on the adversarial examples.

        Passing the *target* model here is exactly the grey-box evaluation:
        examples were crafted on the substitute, scored on the target.
        """
        return detection_rate(model.predict(self.adversarial))

    def transfer_rate_to(self, model: NeuralNetwork) -> float:
        """Transfer rate onto ``model`` (1 - its detection rate), per Section III-B."""
        return 1.0 - self.detection_rate_under(model)

    def summary(self) -> Dict[str, float]:
        """Compact numeric summary used by experiment drivers."""
        return {
            "n_samples": float(self.n_samples),
            "evasion_rate": self.evasion_rate,
            "detection_rate": self.detection_rate,
            "mean_l2_distance": self.mean_l2_distance,
            "mean_perturbed_features": self.mean_perturbed_features,
            "theta": self.constraints.theta,
            "gamma": self.constraints.gamma,
        }


class Attack:
    """Base class for evasion attacks operating on feature vectors.

    Subclasses implement :meth:`run` and must respect the constraint set
    (``self.constraints.project`` / the add-only threat model).
    """

    name = "attack"

    #: Whether :meth:`run` accepts a
    #: :class:`~repro.attacks.trajectory.TrajectoryRecorder` and produces a
    #: budget-sliceable perturbation log (the γ-sweep replay contract).
    supports_trajectory = False

    def __init__(self, network: NeuralNetwork,
                 constraints: Optional[PerturbationConstraints] = None) -> None:
        self.network = network
        self.constraints = constraints if constraints is not None else PerturbationConstraints()
        self._primed_original: Optional[np.ndarray] = None
        self._primed_original_predictions: Optional[np.ndarray] = None

    def run(self, features: np.ndarray) -> AttackResult:
        """Craft adversarial examples for ``features`` (malware rows)."""
        raise NotImplementedError

    def prime_original_predictions(self, original: np.ndarray,
                                   predictions: np.ndarray) -> None:
        """Provide precomputed crafting-model predictions for ``original``.

        Sweep harnesses and the scenario engine attack the *same* malware
        matrix many times; predicting it once and priming every attack stops
        :meth:`_package` from re-running an identical forward pass per run.
        The cache is matched by object identity, so a run over a different
        matrix silently falls back to a fresh predict.
        """
        original = np.asarray(original)
        predictions = np.asarray(predictions)
        if predictions.shape[0] != original.shape[0]:
            raise AttackError(
                f"got {predictions.shape[0]} primed predictions for "
                f"{original.shape[0]} samples")
        self._primed_original = original
        self._primed_original_predictions = predictions

    def _original_predictions_for(self, original: np.ndarray) -> np.ndarray:
        """Primed predictions when they match ``original``, else a predict."""
        if (self._primed_original_predictions is not None
                and original is self._primed_original):
            return self._primed_original_predictions
        return self.network.predict(original)

    def _package(self, original: np.ndarray, adversarial: np.ndarray,
                 iterations: Optional[np.ndarray] = None,
                 original_predictions: Optional[np.ndarray] = None) -> AttackResult:
        """Build an :class:`AttackResult`, computing predictions and deltas.

        ``original_predictions`` (or a matrix previously registered through
        :meth:`prime_original_predictions`) skips the redundant forward pass
        over the unmodified inputs.
        """
        changed = np.abs(adversarial - original) > 1e-12
        if original_predictions is None:
            original_predictions = self._original_predictions_for(original)
        return AttackResult(
            original=original,
            adversarial=adversarial,
            original_predictions=original_predictions,
            adversarial_predictions=self.network.predict(adversarial),
            perturbed_features=changed.sum(axis=1).astype(np.int64),
            constraints=self.constraints,
            attack_name=self.name,
            iterations=iterations,
        )
