"""The perturbation constraint set shared by every attack.

Section II-B of the paper fixes the threat model for API-count features:

* **add-only** — the attacker may only *add* API calls to the malware, never
  remove existing behaviour (removing calls could break functionality), so
  feature values may only increase;
* **box** — features live in ``[0, 1]`` after the count transformation;
* **budget** — ``gamma`` bounds the *fraction of features* that may be
  perturbed (``gamma * 491`` features) and ``theta`` bounds the magnitude
  added to each perturbed feature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.config import N_FEATURES
from repro.exceptions import AttackError
from repro.utils.validation import check_fraction


@dataclass(frozen=True)
class PerturbationConstraints:
    """Constraint set for feature-space perturbations.

    Parameters
    ----------
    theta:
        Magnitude added to each perturbed feature (paper notation θ).
    gamma:
        Maximum fraction of features that may be perturbed (paper notation γ).
    add_only:
        Only allow feature increases (the API-addition threat model).
    clip_min, clip_max:
        Box constraints on feature values.
    feature_mask:
        Optional boolean mask of *modifiable* features (True = attacker may
        touch it).  Defaults to all features.
    """

    theta: float = 0.1
    gamma: float = 0.025
    add_only: bool = True
    clip_min: float = 0.0
    clip_max: float = 1.0
    feature_mask: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.theta < 0:
            raise AttackError(f"theta must be non-negative, got {self.theta}")
        check_fraction(self.gamma, "gamma")
        if self.clip_min >= self.clip_max:
            raise AttackError(
                f"clip_min must be < clip_max, got [{self.clip_min}, {self.clip_max}]"
            )
        if self.feature_mask is not None:
            mask = np.asarray(self.feature_mask, dtype=bool)
            if mask.ndim != 1:
                raise AttackError("feature_mask must be 1-D")
            if not mask.any():
                raise AttackError("feature_mask excludes every feature")
            object.__setattr__(self, "feature_mask", mask)

    def max_features(self, n_features: int = N_FEATURES) -> int:
        """Number of features the budget allows to be perturbed.

        The paper's operating points map γ to a feature count via
        ``round(gamma * n_features)`` (e.g. γ=0.025 → 12 features out of 491,
        γ=0.005 → 2 features).
        """
        return int(round(self.gamma * n_features))

    def modifiable_mask(self, n_features: int) -> np.ndarray:
        """Boolean mask of features the attacker may touch."""
        if self.feature_mask is None:
            return np.ones(n_features, dtype=bool)
        if self.feature_mask.shape[0] != n_features:
            raise AttackError(
                f"feature_mask has {self.feature_mask.shape[0]} entries for "
                f"{n_features} features"
            )
        return self.feature_mask

    def clip(self, features: np.ndarray) -> np.ndarray:
        """Project feature values back into the box."""
        return np.clip(features, self.clip_min, self.clip_max)

    def project(self, adversarial: np.ndarray, original: np.ndarray) -> np.ndarray:
        """Project an adversarial candidate onto the feasible set.

        Enforces the box constraint and, when ``add_only`` is set, the
        non-decrease constraint relative to ``original``.
        """
        adversarial = np.asarray(adversarial, dtype=np.float64)
        original = np.asarray(original, dtype=np.float64)
        if adversarial.shape != original.shape:
            raise AttackError(
                f"adversarial shape {adversarial.shape} does not match original "
                f"shape {original.shape}"
            )
        projected = self.clip(adversarial)
        if self.add_only:
            projected = np.maximum(projected, original)
        mask = self.modifiable_mask(original.shape[-1])
        projected = np.where(mask, projected, original)
        return projected

    def is_feasible(self, adversarial: np.ndarray, original: np.ndarray,
                    atol: float = 1e-9) -> bool:
        """Check feasibility (box, add-only, mask and feature budget)."""
        adversarial = np.atleast_2d(np.asarray(adversarial, dtype=np.float64))
        original = np.atleast_2d(np.asarray(original, dtype=np.float64))
        if adversarial.shape != original.shape:
            return False
        if adversarial.min() < self.clip_min - atol or adversarial.max() > self.clip_max + atol:
            return False
        delta = adversarial - original
        if self.add_only and delta.min() < -atol:
            return False
        mask = self.modifiable_mask(original.shape[-1])
        if np.any(np.abs(delta[:, ~mask]) > atol):
            return False
        changed = np.abs(delta) > atol
        budget = self.max_features(original.shape[-1])
        return bool(np.all(changed.sum(axis=1) <= budget))

    def with_strength(self, theta: Optional[float] = None,
                      gamma: Optional[float] = None) -> "PerturbationConstraints":
        """Copy with a different attack strength (used by sweep harnesses)."""
        return PerturbationConstraints(
            theta=self.theta if theta is None else theta,
            gamma=self.gamma if gamma is None else gamma,
            add_only=self.add_only,
            clip_min=self.clip_min,
            clip_max=self.clip_max,
            feature_mask=self.feature_mask,
        )
