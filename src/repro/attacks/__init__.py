"""Evasion attacks (the paper's core contribution).

* :mod:`constraints` — the add-only / box / budget constraint set every
  attack respects (API calls can be added, never removed; features stay in
  ``[0, 1]``; at most ``gamma * 491`` features may change, each by ``theta``);
* :mod:`jsma` — the Jacobian-based Saliency Map Attack used for the
  white-box and grey-box experiments;
* :mod:`fgsm` — Fast Gradient Sign Method (related-work attack, used for the
  cross-attack ablation of adversarial training);
* :mod:`random_noise` — the random-API-addition baseline the paper uses to
  show JSMA perturbations are not just noise;
* :mod:`trajectory` — sparse perturbation logs of instrumented greedy runs,
  the substrate the γ-sweep replay engine slices per operating point;
* :mod:`transfer` — the grey-box transfer harness (craft on the substitute,
  replay on the target);
* :mod:`blackbox` — the Figure 2 black-box framework: oracle-labelled
  substitute training with Jacobian-based data augmentation;
* :mod:`live_greybox` — the Section III-B live experiment: add one API call
  to the malware *source* repeatedly and watch the engine's confidence.
"""

from repro.attacks.base import Attack, AttackResult
from repro.attacks.blackbox import BlackBoxAttackReport, BlackBoxFramework
from repro.attacks.constraints import PerturbationConstraints
from repro.attacks.fgsm import FgsmAttack
from repro.attacks.jsma import JsmaAttack
from repro.attacks.live_greybox import LiveGreyBoxAttack, LiveGreyBoxTrace
from repro.attacks.random_noise import RandomAdditionAttack
from repro.attacks.trajectory import JsmaTrajectory, TrajectoryRecorder
from repro.attacks.transfer import TransferAttack, TransferResult

__all__ = [
    "Attack",
    "AttackResult",
    "PerturbationConstraints",
    "JsmaTrajectory",
    "TrajectoryRecorder",
    "JsmaAttack",
    "FgsmAttack",
    "RandomAdditionAttack",
    "TransferAttack",
    "TransferResult",
    "BlackBoxFramework",
    "BlackBoxAttackReport",
    "LiveGreyBoxAttack",
    "LiveGreyBoxTrace",
]
