"""The live grey-box experiment: edit the malware *source*, re-scan it.

Section III-B (third experiment): the authors took a malware source file,
used the substitute model to pick an API call, had a researcher add that
single call to the source one to eight times, rebuilt the sample and ran the
real DNN engine on it.  The engine's malware confidence fell from 98.43%
(original) to 88.88% (one added call) to 0% (eight added calls).

:class:`LiveGreyBoxAttack` reproduces that end-to-end loop on the synthetic
substrate: *source* mutation → sandbox execution → log → feature pipeline →
target-engine confidence, with the API chosen by JSMA saliency on the
attacker's substitute model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.apilog.sandbox import Sandbox
from repro.apilog.source_sample import SourceSample
from repro.attacks.constraints import PerturbationConstraints
from repro.attacks.jsma import JsmaAttack
from repro.config import CLASS_MALWARE
from repro.exceptions import AttackError
from repro.features.pipeline import FeaturePipeline
from repro.nn.network import NeuralNetwork
from repro.scenarios.registry import Param, register_attack
from repro.utils.rng import RandomState, as_rng
from repro.utils.topk import top_k_indices


@dataclass
class LiveGreyBoxTrace:
    """Confidence trajectory as the chosen API call is added repeatedly."""

    sample_id: str
    injected_api: str
    repetitions: List[int]
    confidences: List[float]
    detected: List[bool]
    original_confidence: float

    @property
    def evasion_repetitions(self) -> Optional[int]:
        """Smallest number of added calls that evades the engine (None if never)."""
        for reps, flagged in zip(self.repetitions, self.detected):
            if not flagged:
                return reps
        return None

    @property
    def final_confidence(self) -> float:
        """Engine confidence after the last injection step."""
        return self.confidences[-1] if self.confidences else self.original_confidence

    def rows(self) -> List[Dict[str, float]]:
        """Tabular view: one row per injection count."""
        rows = [{"added_calls": 0, "confidence": self.original_confidence,
                 "detected": self.original_confidence >= 0.5}]
        for reps, conf, det in zip(self.repetitions, self.confidences, self.detected):
            rows.append({"added_calls": reps, "confidence": conf, "detected": det})
        return rows


def _scenario_factory(cls, network, constraints, params, context):
    """Assemble the live attack from the context's target/substitute/pipeline.

    Live scenarios attack *source samples*, not feature matrices, so the
    engine passes ``network``/``constraints`` as ``None`` and this factory
    pulls both models (and the deployed pipeline) from the context.
    """
    return cls(context.target_model.network, context.substitute_model.network,
               context.pipeline, sandbox_os=params["sandbox_os"],
               random_state=context.seeds.seed_for(params["seed_name"]))


@register_attack("live_greybox", kind="live", factory=_scenario_factory, params=(
    Param("max_repetitions", "int", 8,
          help="how many times the chosen API call is added to the source"),
    Param("sample_index", "int", None, optional=True,
          help="index into the generated source samples (None picks the "
               "sample whose engine confidence is closest to the paper's)"),
    Param("n_sources", "int", 16,
          help="number of candidate malware source samples to generate"),
    Param("sandbox_os", "str", "win7",
          help="OS the sample is (re-)detonated on"),
    Param("seed_name", "str", "live_greybox",
          help="named seed for the attack's tie-breaking randomness"),
    Param("sources_rng_name", "str", "live_greybox:sources",
          help="named seed for candidate source-sample generation"),
))
class LiveGreyBoxAttack:
    """Source-level evasion driven by the substitute's saliency map.

    Parameters
    ----------
    target:
        The deployed detector network (the "DNN engine").
    substitute:
        The attacker's substitute network used to choose the API to inject.
    pipeline:
        The deployed feature pipeline (log → features).  In the grey-box
        setting the attacker knows the feature *names*; the defender's
        pipeline is only used to score candidates against the engine, which
        is exactly what "submit the rebuilt sample to the engine" does.
    sandbox_os:
        OS the sample is (re-)detonated on.
    """

    def __init__(self, target: NeuralNetwork, substitute: NeuralNetwork,
                 pipeline: FeaturePipeline, sandbox_os: str = "win7",
                 constraints: Optional[PerturbationConstraints] = None,
                 random_state: RandomState = 0) -> None:
        self.target = target
        self.substitute = substitute
        self.pipeline = pipeline
        self.sandbox_os = sandbox_os
        self.constraints = constraints if constraints is not None else PerturbationConstraints()
        self._rng = as_rng(random_state)

    # ------------------------------------------------------------------ #
    # Scoring helpers
    # ------------------------------------------------------------------ #
    def _detonate(self, sample: SourceSample, seed: int) -> np.ndarray:
        """Run the sample through the sandbox + pipeline, return one feature row."""
        sandbox = Sandbox(os_version=self.sandbox_os,
                          random_state=seed, record_args=False)
        counts = sandbox.execute_counts(sample)
        return self.pipeline.transform([counts])

    def engine_confidence(self, sample: SourceSample, seed: int = 1234) -> float:
        """The target engine's malware confidence for ``sample``."""
        features = self._detonate(sample, seed)
        return float(self.target.malware_score(features)[0])

    def choose_api(self, sample: SourceSample, seed: int = 1234,
                   candidates: int = 10) -> str:
        """Pick the API call to inject using the substitute's saliency map.

        Features are ranked by the *per-added-call* effect: the saliency of
        the feature divided by its count-normalisation scale (adding one call
        to an API with a small training maximum moves its feature much more
        than one call to a ubiquitous API).  Only APIs the sample does not
        already use are considered, so the injected call actually changes the
        corresponding feature.
        """
        features = self._detonate(sample, seed)
        jacobian = self.substitute.class_gradients(features)
        # Gradient towards the clean class minus the malware class: how much
        # increasing each feature helps the sample look clean.
        clean_pull = jacobian[0, 0, :] - jacobian[0, 1, :]
        transformer = self.pipeline.transformer
        scales = getattr(transformer, "scales", None)
        per_call_effect = clean_pull / scales if scales is not None else clean_pull
        ranked = top_k_indices(per_call_effect, max(candidates, 1))
        catalog = self.pipeline.catalog
        for index in ranked:
            api = catalog.name_of(int(index))
            if not sample.uses_api(api):
                return api
        return catalog.name_of(int(ranked[0]))

    # ------------------------------------------------------------------ #
    # The experiment itself
    # ------------------------------------------------------------------ #
    def run(self, sample: SourceSample, max_repetitions: int = 8,
            api: Optional[str] = None, seed: int = 1234) -> LiveGreyBoxTrace:
        """Add one API call 1..``max_repetitions`` times and track confidence.

        Raises
        ------
        AttackError
            If the sample is not malware (the experiment only makes sense for
            a detected malicious sample).
        """
        if sample.label != CLASS_MALWARE:
            raise AttackError("the live grey-box experiment operates on a malware sample")
        if max_repetitions < 1:
            raise AttackError(f"max_repetitions must be >= 1, got {max_repetitions}")

        original_confidence = self.engine_confidence(sample, seed=seed)
        injected_api = api if api is not None else self.choose_api(sample, seed=seed)

        repetitions: List[int] = []
        confidences: List[float] = []
        detected: List[bool] = []
        for count in range(1, max_repetitions + 1):
            mutated = sample.add_api_call(injected_api, times=count)
            if not mutated.preserves_functionality_of(sample):
                raise AttackError("source mutation violated the add-only invariant")
            confidence = self.engine_confidence(mutated, seed=seed)
            repetitions.append(count)
            confidences.append(confidence)
            detected.append(confidence >= 0.5)

        return LiveGreyBoxTrace(
            sample_id=sample.sample_id,
            injected_api=injected_api,
            repetitions=repetitions,
            confidences=confidences,
            detected=detected,
            original_confidence=original_confidence,
        )
