"""The Jacobian-based Saliency Map Attack (JSMA), add-only variant.

This is the attack the paper uses for every experiment (Section II-B-1).
Following Papernot et al. (2016) and the paper's adaptation to API-count
features:

1. compute the Jacobian of the softmax output with respect to the input
   (Equation 1 of the paper);
2. build the saliency map for moving the sample towards the *clean* class
   (class 0): a feature is salient when increasing it increases the clean
   probability and decreases the malware probability;
3. perturb the most salient modifiable feature by ``theta`` (adding API
   calls only — existing features are never reduced);
4. repeat until the crafting model classifies the sample as clean or the
   ``gamma`` feature budget is exhausted.

The implementation is batched: each iteration evaluates the Jacobian only on
the samples that are still detected and still have budget left.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.attacks.base import Attack, AttackResult
from repro.attacks.constraints import PerturbationConstraints
from repro.attacks.trajectory import TrajectoryRecorder
from repro.config import CLASS_CLEAN, CLASS_MALWARE
from repro.exceptions import AttackError
from repro.nn.network import NeuralNetwork
from repro.obs.instrument import current as current_instrumentation
from repro.scenarios.registry import Param, register_attack
from repro.utils.topk import top_k_indices
from repro.utils.validation import check_matrix


@register_attack("jsma", params=(
    Param("target_class", "int", CLASS_CLEAN, choices=(0, 1),
          help="class the adversarial example should be assigned to"),
    Param("use_saliency_map", "bool", True,
          help="rank features by the two-class saliency map (False: raw "
               "target-class gradient)"),
    Param("early_stop", "bool", True,
          help="stop perturbing a sample once the crafting model is fooled "
               "(False spends the full budget — the transfer setting)"),
    Param("features_per_step", "int", 1,
          help="top-saliency features perturbed per Jacobian evaluation"),
))
class JsmaAttack(Attack):
    """Add-only JSMA targeting the clean class.

    Parameters
    ----------
    network:
        The crafting model (white-box: the target itself; grey-box: the
        attacker's substitute).
    constraints:
        The θ/γ budget and threat-model constraints.
    target_class:
        Class the adversarial example should be assigned to (0 = clean).
    use_saliency_map:
        When True (default) features are ranked by the full two-class
        saliency map; when False they are ranked by the raw positive gradient
        of the target class, which is the simplification described in the
        paper ("a perturbation of X with maximal positive gradient into the
        target class 0 is chosen").  Both satisfy the same constraints.
    early_stop:
        Stop perturbing a sample as soon as the crafting model classifies it
        as the target class.  Disabling this always spends the full budget,
        which is useful when studying transferability.  The early-stop
        prediction is read from the same forward pass that produces the
        Jacobian — no extra ``predict`` pass per iteration.
    features_per_step:
        Number of top-saliency features perturbed per Jacobian evaluation
        (default 1, the classic JSMA).  Larger values trade attack precision
        for fewer forward/backward passes: a budget of ``k`` features is
        spent in ``ceil(k / features_per_step)`` steps, which is how the
        budget sweeps keep large-γ operating points tractable.
    """

    name = "jsma"

    #: The greedy add-only loop is budget-oblivious at fixed θ, so a
    #: recorded run can be sliced to any smaller γ (see
    #: :mod:`repro.attacks.trajectory` and :mod:`repro.evaluation.sweep`).
    supports_trajectory = True

    def __init__(self, network: NeuralNetwork,
                 constraints: Optional[PerturbationConstraints] = None,
                 target_class: int = CLASS_CLEAN,
                 use_saliency_map: bool = True,
                 early_stop: bool = True,
                 features_per_step: int = 1) -> None:
        super().__init__(network, constraints)
        if target_class not in (0, 1):
            raise AttackError(f"target_class must be 0 or 1, got {target_class}")
        if features_per_step < 1:
            raise AttackError(
                f"features_per_step must be >= 1, got {features_per_step}")
        self.target_class = int(target_class)
        self.use_saliency_map = bool(use_saliency_map)
        self.early_stop = bool(early_stop)
        self.features_per_step = int(features_per_step)

    # ------------------------------------------------------------------ #
    # Saliency computation
    # ------------------------------------------------------------------ #
    def _feature_scores(self, jacobian: np.ndarray) -> np.ndarray:
        """Score every feature of every sample for a single perturbation step.

        ``jacobian`` has shape ``(n, n_classes, d)``.  Higher scores mean
        "adding to this feature moves the sample towards the target class
        more".  Infeasible features are later masked to ``-inf``.
        """
        target_grad = jacobian[:, self.target_class, :]
        other_grad = jacobian.sum(axis=1) - target_grad
        if not self.use_saliency_map:
            return target_grad
        # Papernot-style saliency for increase-only perturbations:
        # salient iff dF_target/dx_j > 0 and sum_{i != target} dF_i/dx_j < 0.
        salient = (target_grad > 0) & (other_grad < 0)
        scores = np.where(salient, target_grad * np.abs(other_grad), -np.inf)
        # Fallback: when no feature is strictly salient for a sample, fall
        # back to the raw target-class gradient so the attack can still make
        # progress (matches CleverHans behaviour of relaxing the map).
        no_salient = ~salient.any(axis=1)
        if np.any(no_salient):
            scores[no_salient] = target_grad[no_salient]
        return scores

    # ------------------------------------------------------------------ #
    # Attack loop
    # ------------------------------------------------------------------ #
    def run(self, features: np.ndarray,
            recorder: Optional[TrajectoryRecorder] = None) -> AttackResult:
        """Craft adversarial examples; optionally record the trajectory.

        ``recorder`` (a fresh :class:`~repro.attacks.trajectory
        .TrajectoryRecorder`) captures the sparse perturbation log and
        per-step evasion flags at negligible overhead — everything it stores
        is already computed by the loop.  The γ-sweep replay engine slices
        that log instead of re-running the attack per operating point.

        When an ambient :class:`~repro.obs.Instrumentation` is active
        (see :func:`repro.obs.instrumented`), the whole crafting loop runs
        inside an ``attack.jsma`` span and the ``jsma.steps`` /
        ``jsma.features_flipped`` / ``jsma.evasions`` counters account for
        its work; the perturbation math is identical either way.
        """
        obs = current_instrumentation()
        if obs is None:
            return self._run(features, recorder, None)
        shape = getattr(features, "shape", None)
        with obs.span("attack.jsma",
                      n_samples=int(shape[0]) if shape else 0):
            return self._run(features, recorder, obs)

    def _run(self, features: np.ndarray,
             recorder: Optional[TrajectoryRecorder],
             obs) -> AttackResult:
        original = check_matrix(features, name="features",
                                n_features=self.network.input_dim)
        adversarial = original.copy()
        n_samples, n_features = original.shape
        constraints = self.constraints
        budget = constraints.max_features(n_features)
        modifiable = constraints.modifiable_mask(n_features)
        iterations = np.zeros(n_samples, dtype=np.int64)

        if recorder is not None:
            recorder.begin(theta=constraints.theta, budget=budget,
                           n_samples=n_samples, n_features=n_features,
                           early_stop=self.early_stop,
                           features_per_step=self.features_per_step)

        if budget == 0 or constraints.theta == 0.0:
            return self._package(original, adversarial, iterations)

        # Per-sample bookkeeping of which features have been touched.
        touched = np.zeros((n_samples, n_features), dtype=bool)
        active = np.ones(n_samples, dtype=bool)
        per_step = self.features_per_step
        n_steps = budget if per_step == 1 else -(-budget // per_step)
        steps_run = 0
        ever_evaded = (np.zeros(n_samples, dtype=bool)
                       if obs is not None else None)

        for step in range(n_steps):
            if not np.any(active):
                break
            idx = np.flatnonzero(active)
            # One forward + (for binary networks) one fused backward pass per
            # step; the forward probabilities double as the early-stop
            # prediction for the current iterate, so no second predict pass
            # is needed.
            jacobian, probs = self.network.class_gradients(adversarial[idx],
                                                           return_probs=True)
            steps_run = step + 1
            if self.early_stop or recorder is not None or obs is not None:
                evaded = np.argmax(probs, axis=1) == self.target_class
                if recorder is not None and np.any(evaded):
                    recorder.record_evasions(idx[evaded])
                if ever_evaded is not None:
                    ever_evaded[idx[evaded]] = True
            if self.early_stop:
                if np.any(evaded):
                    active[idx[evaded]] = False
                    keep = ~evaded
                    if not np.any(keep):
                        continue
                    idx = idx[keep]
                    jacobian = jacobian[keep]
            scores = self._feature_scores(jacobian)

            # Features that cannot be perturbed: outside the mask, already
            # saturated at the box maximum, or (per the budget semantics)
            # already used for this sample.
            saturated = adversarial[idx] >= constraints.clip_max - 1e-12
            infeasible = (~modifiable)[None, :] | saturated | touched[idx]
            scores = np.where(infeasible, -np.inf, scores)

            if per_step == 1:
                best = np.argmax(scores, axis=1)
                best_scores = scores[np.arange(idx.size), best]
                feasible = np.isfinite(best_scores)
                rows = idx[feasible]
                cols = best[feasible]
                progressed = feasible
            else:
                # Top-k selection capped by each sample's remaining budget
                # (argpartition-based: O(d) per row instead of a full sort).
                remaining = budget - touched[idx].sum(axis=1)
                k_row = np.minimum(per_step, remaining)
                k_max = int(max(k_row.max(), 1))
                order = top_k_indices(scores, k_max)
                top_scores = np.take_along_axis(scores, order, axis=1)
                valid = np.isfinite(top_scores) & (np.arange(k_max)[None, :]
                                                   < k_row[:, None])
                flat_row, flat_col = np.nonzero(valid)
                rows = idx[flat_row]
                cols = order[flat_row, flat_col]
                progressed = valid.any(axis=1)
            if not np.any(progressed):
                break

            old_values = adversarial[rows, cols] if recorder is not None else None
            adversarial[rows, cols] = np.minimum(
                adversarial[rows, cols] + constraints.theta, constraints.clip_max)
            touched[rows, cols] = True
            np.add.at(iterations, rows, 1)
            if recorder is not None:
                recorder.record_step(step, rows, cols, old_values,
                                     adversarial[rows, cols])

            # Samples with no feasible feature left stop here; evaded samples
            # are caught by the probability check at the top of the next step.
            active[idx[~progressed]] = False

        if obs is not None:
            obs.count("jsma.samples", n_samples)
            obs.count("jsma.steps", steps_run)
            obs.count("jsma.features_flipped", int(touched.sum()))
            obs.count("jsma.evasions", int(ever_evaded.sum()))

        # Safety: the loop construction already satisfies the constraints,
        # but project anyway so the invariant holds even under future edits.
        adversarial = constraints.project(adversarial, original)
        return self._package(original, adversarial, iterations)

    # ------------------------------------------------------------------ #
    # Introspection helpers used by Figure 1 and the live experiment
    # ------------------------------------------------------------------ #
    def select_features(self, features: np.ndarray, top_k: int = 2) -> np.ndarray:
        """Return the indices of the ``top_k`` most salient features per sample.

        This exposes the feature-selection half of JSMA without applying the
        perturbation; Figure 1 ("adding two API calls") and the live grey-box
        attack use it to decide *which* API calls to add to the source.
        """
        matrix = check_matrix(features, name="features",
                              n_features=self.network.input_dim)
        if top_k < 1:
            raise AttackError(f"top_k must be >= 1, got {top_k}")
        jacobian = self.network.class_gradients(matrix)
        scores = self._feature_scores(jacobian)
        modifiable = self.constraints.modifiable_mask(matrix.shape[1])
        # A feature already at the box maximum cannot be increased, so it is
        # never a valid selection — mask it exactly as the attack loop does.
        saturated = matrix >= self.constraints.clip_max - 1e-12
        infeasible = (~modifiable)[None, :] | saturated
        scores = np.where(infeasible, -np.inf, scores)
        return top_k_indices(scores, top_k)
