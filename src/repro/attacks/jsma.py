"""The Jacobian-based Saliency Map Attack (JSMA), add-only variant.

This is the attack the paper uses for every experiment (Section II-B-1).
Following Papernot et al. (2016) and the paper's adaptation to API-count
features:

1. compute the Jacobian of the softmax output with respect to the input
   (Equation 1 of the paper);
2. build the saliency map for moving the sample towards the *clean* class
   (class 0): a feature is salient when increasing it increases the clean
   probability and decreases the malware probability;
3. perturb the most salient modifiable feature by ``theta`` (adding API
   calls only — existing features are never reduced);
4. repeat until the crafting model classifies the sample as clean or the
   ``gamma`` feature budget is exhausted.

The implementation is batched: each iteration evaluates the Jacobian only on
the samples that are still detected and still have budget left.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.attacks.base import Attack, AttackResult
from repro.attacks.constraints import PerturbationConstraints
from repro.config import CLASS_CLEAN, CLASS_MALWARE
from repro.exceptions import AttackError
from repro.nn.network import NeuralNetwork
from repro.utils.validation import check_matrix


class JsmaAttack(Attack):
    """Add-only JSMA targeting the clean class.

    Parameters
    ----------
    network:
        The crafting model (white-box: the target itself; grey-box: the
        attacker's substitute).
    constraints:
        The θ/γ budget and threat-model constraints.
    target_class:
        Class the adversarial example should be assigned to (0 = clean).
    use_saliency_map:
        When True (default) features are ranked by the full two-class
        saliency map; when False they are ranked by the raw positive gradient
        of the target class, which is the simplification described in the
        paper ("a perturbation of X with maximal positive gradient into the
        target class 0 is chosen").  Both satisfy the same constraints.
    early_stop:
        Stop perturbing a sample as soon as the crafting model classifies it
        as the target class.  Disabling this always spends the full budget,
        which is useful when studying transferability.
    """

    name = "jsma"

    def __init__(self, network: NeuralNetwork,
                 constraints: Optional[PerturbationConstraints] = None,
                 target_class: int = CLASS_CLEAN,
                 use_saliency_map: bool = True,
                 early_stop: bool = True) -> None:
        super().__init__(network, constraints)
        if target_class not in (0, 1):
            raise AttackError(f"target_class must be 0 or 1, got {target_class}")
        self.target_class = int(target_class)
        self.use_saliency_map = bool(use_saliency_map)
        self.early_stop = bool(early_stop)

    # ------------------------------------------------------------------ #
    # Saliency computation
    # ------------------------------------------------------------------ #
    def _feature_scores(self, jacobian: np.ndarray) -> np.ndarray:
        """Score every feature of every sample for a single perturbation step.

        ``jacobian`` has shape ``(n, n_classes, d)``.  Higher scores mean
        "adding to this feature moves the sample towards the target class
        more".  Infeasible features are later masked to ``-inf``.
        """
        target_grad = jacobian[:, self.target_class, :]
        other_grad = jacobian.sum(axis=1) - target_grad
        if not self.use_saliency_map:
            return target_grad
        # Papernot-style saliency for increase-only perturbations:
        # salient iff dF_target/dx_j > 0 and sum_{i != target} dF_i/dx_j < 0.
        salient = (target_grad > 0) & (other_grad < 0)
        scores = np.where(salient, target_grad * np.abs(other_grad), -np.inf)
        # Fallback: when no feature is strictly salient for a sample, fall
        # back to the raw target-class gradient so the attack can still make
        # progress (matches CleverHans behaviour of relaxing the map).
        no_salient = ~salient.any(axis=1)
        if np.any(no_salient):
            scores[no_salient] = target_grad[no_salient]
        return scores

    # ------------------------------------------------------------------ #
    # Attack loop
    # ------------------------------------------------------------------ #
    def run(self, features: np.ndarray) -> AttackResult:
        original = check_matrix(features, name="features",
                                n_features=self.network.input_dim)
        adversarial = original.copy()
        n_samples, n_features = original.shape
        constraints = self.constraints
        budget = constraints.max_features(n_features)
        modifiable = constraints.modifiable_mask(n_features)
        iterations = np.zeros(n_samples, dtype=np.int64)

        if budget == 0 or constraints.theta == 0.0:
            return self._package(original, adversarial, iterations)

        # Per-sample bookkeeping of which features have been touched.
        touched = np.zeros((n_samples, n_features), dtype=bool)
        active = np.ones(n_samples, dtype=bool)
        if self.early_stop:
            active &= self.network.predict(adversarial) != self.target_class

        for _ in range(budget):
            if not np.any(active):
                break
            idx = np.flatnonzero(active)
            jacobian = self.network.class_gradients(adversarial[idx])
            scores = self._feature_scores(jacobian)

            # Features that cannot be perturbed: outside the mask, already
            # saturated at the box maximum, or (per the budget semantics)
            # already used for this sample.
            saturated = adversarial[idx] >= constraints.clip_max - 1e-12
            infeasible = (~modifiable)[None, :] | saturated | touched[idx]
            scores = np.where(infeasible, -np.inf, scores)

            best = np.argmax(scores, axis=1)
            best_scores = scores[np.arange(idx.size), best]
            feasible = np.isfinite(best_scores)
            if not np.any(feasible):
                break

            rows = idx[feasible]
            cols = best[feasible]
            adversarial[rows, cols] = np.minimum(
                adversarial[rows, cols] + constraints.theta, constraints.clip_max)
            touched[rows, cols] = True
            iterations[rows] += 1

            # Samples with no feasible feature left stop here.
            active[idx[~feasible]] = False
            if self.early_stop:
                predictions = self.network.predict(adversarial[rows])
                evaded = predictions == self.target_class
                active[rows[evaded]] = False

        # Safety: the loop construction already satisfies the constraints,
        # but project anyway so the invariant holds even under future edits.
        adversarial = constraints.project(adversarial, original)
        return self._package(original, adversarial, iterations)

    # ------------------------------------------------------------------ #
    # Introspection helpers used by Figure 1 and the live experiment
    # ------------------------------------------------------------------ #
    def select_features(self, features: np.ndarray, top_k: int = 2) -> np.ndarray:
        """Return the indices of the ``top_k`` most salient features per sample.

        This exposes the feature-selection half of JSMA without applying the
        perturbation; Figure 1 ("adding two API calls") and the live grey-box
        attack use it to decide *which* API calls to add to the source.
        """
        matrix = check_matrix(features, name="features",
                              n_features=self.network.input_dim)
        if top_k < 1:
            raise AttackError(f"top_k must be >= 1, got {top_k}")
        jacobian = self.network.class_gradients(matrix)
        scores = self._feature_scores(jacobian)
        modifiable = self.constraints.modifiable_mask(matrix.shape[1])
        scores = np.where(modifiable[None, :], scores, -np.inf)
        order = np.argsort(-scores, axis=1)
        return order[:, :top_k]
