"""Grey-box transfer harness: craft on a substitute, replay on the target.

Section II-B-2: the transferability of adversarial examples is what makes
grey-box and black-box attacks possible — examples crafted against the
attacker's substitute model remain adversarial for the (different) target
model.  :class:`TransferAttack` packages that workflow and reports both
models' detection rates plus the transfer rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.attacks.base import Attack, AttackResult
from repro.config import CLASS_MALWARE
from repro.exceptions import AttackError
from repro.nn.metrics import detection_rate
from repro.nn.network import NeuralNetwork
from repro.utils.validation import check_matrix


@dataclass
class TransferResult:
    """The outcome of one transfer attack at one operating point."""

    attack_result: AttackResult
    substitute_detection_rate: float
    target_detection_rate: float
    target_detection_rate_original: float

    @property
    def transfer_rate(self) -> float:
        """Paper definition: 1 - target detection rate on adversarial examples."""
        return 1.0 - self.target_detection_rate

    @property
    def evaded_count(self) -> int:
        """Number of adversarial samples the target classifies as clean."""
        return int(round(self.transfer_rate * self.attack_result.n_samples))

    def summary(self) -> Dict[str, float]:
        """Compact numeric summary for experiment tables."""
        summary = self.attack_result.summary()
        summary.update({
            "substitute_detection_rate": self.substitute_detection_rate,
            "target_detection_rate": self.target_detection_rate,
            "target_detection_rate_original": self.target_detection_rate_original,
            "transfer_rate": self.transfer_rate,
        })
        return summary


class TransferAttack:
    """Craft adversarial examples on ``attack.network``, evaluate on ``target``.

    Parameters
    ----------
    attack:
        Any configured :class:`~repro.attacks.base.Attack` whose network is
        the attacker's substitute (or the target itself for the white-box
        sanity case).
    target:
        The deployed model the examples are replayed against.  The target may
        consume a *different* featurisation than the substitute; pass
        ``target_features`` to :meth:`run` in that case (second grey-box
        experiment, binary substitute features vs count target features).
    """

    def __init__(self, attack: Attack, target: NeuralNetwork) -> None:
        self.attack = attack
        self.target = target

    def run(self, substitute_features: np.ndarray,
            target_features: Optional[np.ndarray] = None) -> TransferResult:
        """Execute the transfer attack on a batch of malware samples.

        Parameters
        ----------
        substitute_features:
            Malware features in the *substitute's* feature space (what the
            attack perturbs).
        target_features:
            The same malware samples in the *target's* feature space.  When
            omitted the two spaces are assumed identical (first grey-box
            experiment) and the perturbed features are replayed directly.
            When provided, the perturbation crafted in the substitute space
            is transplanted onto the target-space features: the same feature
            indices are increased by the same amounts (clipped to the box),
            which models "add the same API calls to the sample".
        """
        substitute_features = check_matrix(substitute_features, name="substitute_features")
        result = self.attack.run(substitute_features)

        if target_features is None:
            target_adversarial = result.adversarial
            target_original = result.original
        else:
            target_original = check_matrix(target_features, name="target_features")
            if target_original.shape[0] != result.n_samples:
                raise AttackError(
                    "target_features must contain the same samples as substitute_features"
                )
            if target_original.shape[1] != result.original.shape[1]:
                raise AttackError(
                    "feature dimensionality mismatch between substitute and target spaces"
                )
            delta = result.adversarial - result.original
            target_adversarial = np.clip(target_original + delta,
                                         self.attack.constraints.clip_min,
                                         self.attack.constraints.clip_max)
            target_adversarial = self.attack.constraints.project(target_adversarial,
                                                                 target_original)

        return TransferResult(
            attack_result=result,
            substitute_detection_rate=result.detection_rate,
            target_detection_rate=detection_rate(self.target.predict(target_adversarial)),
            target_detection_rate_original=detection_rate(self.target.predict(target_original)),
        )
