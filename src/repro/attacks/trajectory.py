"""Sparse perturbation trajectories of greedy add-only attacks.

JSMA's add-only loop is *greedy and budget-oblivious*: at a fixed θ the
sequence of (sample, feature) perturbations it applies does not depend on
the γ budget — a smaller budget simply truncates the sequence.  Recording
the sequence once therefore makes every smaller operating point a cheap
array slice instead of a fresh attack run, which is what the
γ-security-curve replay engine (:mod:`repro.evaluation.sweep`) exploits.

:class:`TrajectoryRecorder` is the opt-in hook :meth:`JsmaAttack.run
<repro.attacks.jsma.JsmaAttack.run>` feeds; it captures, per perturbation
event, ``(step, row, col, old_value, new_value)`` plus the per-step evasion
flags read from the probabilities the attack loop already computes — no
extra forward or backward passes.  :class:`JsmaTrajectory` is the frozen
result, with :meth:`~JsmaTrajectory.materialize` rebuilding the adversarial
matrix of any feature budget up to the recorded one, byte-identical (under
float64) to what a from-scratch run at that budget would produce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import AttackError

__all__ = ["JsmaTrajectory", "TrajectoryRecorder"]


@dataclass
class JsmaTrajectory:
    """The sparse perturbation log of one instrumented attack run.

    Events are stored chronologically; within one attack step, a sample's
    events appear in saliency-rank order (the order the attack applied
    them), so the first ``b`` events of a sample are exactly the
    perturbations a budget-``b`` run would have applied.

    Attributes
    ----------
    theta:
        Per-feature perturbation magnitude the run used.
    budget:
        Feature budget of the recorded run (``round(gamma * n_features)``).
        Budgets up to this value can be materialized.
    early_stop / features_per_step:
        The recorded attack's loop configuration (replay consumers use them
        to decide which derived views are valid).
    steps / rows / cols / old_values / new_values:
        Parallel event arrays: attack step index, sample row, feature
        column, and the feature value before/after the perturbation.
    first_evaded_at:
        Per sample, the number of perturbations applied when the crafting
        model was *first observed* classifying it as the target class
        (``-1`` when never observed inside the loop; a sample that only
        evades on its final state is caught by the run's closing predict,
        not by the in-loop flags).
    """

    theta: float
    budget: int
    n_samples: int
    n_features: int
    early_stop: bool
    features_per_step: int
    steps: np.ndarray
    rows: np.ndarray
    cols: np.ndarray
    old_values: np.ndarray
    new_values: np.ndarray
    first_evaded_at: np.ndarray
    _positions: Optional[np.ndarray] = field(default=None, repr=False, compare=False)

    @property
    def n_events(self) -> int:
        """Total number of recorded perturbation events."""
        return int(self.rows.shape[0])

    def sequence_positions(self) -> np.ndarray:
        """Per-event 0-based position within its sample's event sequence.

        Event ``i`` is the ``sequence_positions()[i]``-th perturbation ever
        applied to sample ``rows[i]`` — the quantity budget slicing filters
        on.  Computed once and cached.
        """
        if self._positions is None:
            order = np.argsort(self.rows, kind="stable")
            sorted_rows = self.rows[order]
            positions = np.empty(self.n_events, dtype=np.int64)
            if self.n_events:
                new_group = np.r_[True, sorted_rows[1:] != sorted_rows[:-1]]
                group_starts = np.flatnonzero(new_group)
                lengths = np.diff(np.r_[group_starts, self.n_events])
                offsets = np.arange(self.n_events) - np.repeat(group_starts, lengths)
                positions[order] = offsets
            self._positions = positions
        return self._positions

    def event_mask(self, budget: int) -> np.ndarray:
        """Boolean mask of the events a budget-``budget`` run applies."""
        if budget < 0:
            raise AttackError(f"budget must be non-negative, got {budget}")
        if budget > self.budget:
            raise AttackError(
                f"trajectory was recorded at feature budget {self.budget}; "
                f"cannot materialize budget {budget}")
        return self.sequence_positions() < budget

    def perturbation_counts(self, budget: Optional[int] = None) -> np.ndarray:
        """Per-sample number of perturbations applied within ``budget``."""
        mask = (self.event_mask(budget) if budget is not None
                else np.ones(self.n_events, dtype=bool))
        counts = np.zeros(self.n_samples, dtype=np.int64)
        np.add.at(counts, self.rows[mask], 1)
        return counts

    def materialize(self, original: np.ndarray, budget: int) -> np.ndarray:
        """The adversarial matrix of a budget-``budget`` run, by replay.

        Each (row, col) pair appears at most once in an add-only trajectory,
        so replay is a single fancy-indexed assignment of the recorded
        post-perturbation values onto a copy of ``original``.
        """
        original = np.asarray(original)
        if original.shape != (self.n_samples, self.n_features):
            raise AttackError(
                f"original has shape {original.shape}; trajectory was recorded "
                f"over ({self.n_samples}, {self.n_features})")
        mask = self.event_mask(budget)
        adversarial = original.copy()
        adversarial[self.rows[mask], self.cols[mask]] = self.new_values[mask]
        return adversarial

    def materialize_grid(self, original: np.ndarray,
                         budgets: Sequence[int]) -> List[np.ndarray]:
        """Materialize one adversarial matrix per feature budget."""
        return [self.materialize(original, budget) for budget in budgets]


class TrajectoryRecorder:
    """Collects one attack run's perturbation log (single use).

    Pass a fresh instance to ``JsmaAttack.run(features, recorder=...)``;
    after the run, :attr:`trajectory` holds the :class:`JsmaTrajectory`.
    The recorder is deliberately append-only and unaware of attack
    internals — the attack calls :meth:`begin` once, then
    :meth:`record_step` / :meth:`record_evasions` per loop iteration.
    """

    def __init__(self) -> None:
        self._meta: Optional[dict] = None
        self._steps: List[np.ndarray] = []
        self._rows: List[np.ndarray] = []
        self._cols: List[np.ndarray] = []
        self._old: List[np.ndarray] = []
        self._new: List[np.ndarray] = []
        self._counts: Optional[np.ndarray] = None
        self._first_evaded: Optional[np.ndarray] = None
        self._trajectory: Optional[JsmaTrajectory] = None

    # ------------------------------------------------------------------ #
    # Hooks called by the instrumented attack loop
    # ------------------------------------------------------------------ #
    def begin(self, *, theta: float, budget: int, n_samples: int,
              n_features: int, early_stop: bool, features_per_step: int) -> None:
        """Open the log; a recorder captures exactly one run."""
        if self._meta is not None:
            raise AttackError(
                "TrajectoryRecorder already holds a run; use a fresh recorder "
                "for every instrumented attack")
        self._meta = {
            "theta": float(theta),
            "budget": int(budget),
            "n_samples": int(n_samples),
            "n_features": int(n_features),
            "early_stop": bool(early_stop),
            "features_per_step": int(features_per_step),
        }
        self._counts = np.zeros(n_samples, dtype=np.int64)
        self._first_evaded = np.full(n_samples, -1, dtype=np.int64)

    def record_evasions(self, sample_rows: np.ndarray) -> None:
        """Mark samples observed evading at the start of the current step."""
        if self._meta is None:
            raise AttackError("record_evasions called before begin()")
        rows = np.asarray(sample_rows, dtype=np.int64)
        fresh = rows[self._first_evaded[rows] < 0]
        self._first_evaded[fresh] = self._counts[fresh]

    def record_step(self, step: int, rows: np.ndarray, cols: np.ndarray,
                    old_values: np.ndarray, new_values: np.ndarray) -> None:
        """Append one step's perturbation events (saliency-rank order)."""
        if self._meta is None:
            raise AttackError("record_step called before begin()")
        rows = np.asarray(rows, dtype=np.int64)
        self._steps.append(np.full(rows.shape[0], step, dtype=np.int64))
        self._rows.append(rows)
        self._cols.append(np.asarray(cols, dtype=np.int64))
        self._old.append(np.array(old_values))
        self._new.append(np.array(new_values))
        np.add.at(self._counts, rows, 1)

    # ------------------------------------------------------------------ #
    # Result
    # ------------------------------------------------------------------ #
    @property
    def trajectory(self) -> JsmaTrajectory:
        """The recorded :class:`JsmaTrajectory` (built lazily once)."""
        if self._meta is None:
            raise AttackError(
                "recorder holds no run yet; pass it to an instrumented "
                "attack's run() first")
        if self._trajectory is None:
            value_dtype = self._new[0].dtype if self._new else np.float64

            def _concat(chunks, dtype):
                if not chunks:
                    return np.empty(0, dtype=dtype)
                return np.concatenate(chunks)

            self._trajectory = JsmaTrajectory(
                steps=_concat(self._steps, np.int64),
                rows=_concat(self._rows, np.int64),
                cols=_concat(self._cols, np.int64),
                old_values=_concat(self._old, value_dtype),
                new_values=_concat(self._new, value_dtype),
                first_evaded_at=self._first_evaded.copy(),
                **self._meta,
            )
        return self._trajectory
