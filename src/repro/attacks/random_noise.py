"""Random API-addition baseline.

Section III-A notes that "randomly adding features does not decrease the
detection rates" — the control showing JSMA perturbations are structured,
not noise.  :class:`RandomAdditionAttack` adds ``theta`` to ``gamma * d``
uniformly chosen modifiable features, respecting the same add-only and box
constraints as JSMA.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.attacks.base import Attack, AttackResult
from repro.attacks.constraints import PerturbationConstraints
from repro.nn.network import NeuralNetwork
from repro.scenarios.registry import Param, register_attack
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_matrix


def _scenario_factory(cls, network, constraints, params, context):
    """Seed the noise source from the context's named seed fan-out.

    Drivers that must replay a specific historical stream (e.g. Figure 3's
    random-addition control) override ``seed_name``; the derived seed only
    depends on ``(master_seed, seed_name)``, so results are reproducible and
    independent of scenario ordering.
    """
    seed = (context.seeds.seed_for(params["seed_name"])
            if context is not None else None)
    return cls(network, constraints=constraints, random_state=seed)


@register_attack("random_addition", aliases=("random_noise",),
                 factory=_scenario_factory, params=(
    Param("seed_name", "str", "scenario:random_addition",
          help="named seed (derived from the context's master seed) for the "
               "random feature choice"),
))
class RandomAdditionAttack(Attack):
    """Add θ to γ·d randomly selected features (the paper's noise control)."""

    def __init__(self, network: NeuralNetwork,
                 constraints: Optional[PerturbationConstraints] = None,
                 random_state: RandomState = None) -> None:
        super().__init__(network, constraints)
        self._rng = as_rng(random_state)

    def run(self, features: np.ndarray) -> AttackResult:
        original = check_matrix(features, name="features",
                                n_features=self.network.input_dim)
        adversarial = original.copy()
        n_samples, n_features = original.shape
        budget = self.constraints.max_features(n_features)
        modifiable = np.flatnonzero(self.constraints.modifiable_mask(n_features))
        iterations = np.zeros(n_samples, dtype=np.int64)

        if budget == 0 or self.constraints.theta == 0.0 or modifiable.size == 0:
            return self._package(original, adversarial, iterations)

        k = min(budget, modifiable.size)
        for row in range(n_samples):
            chosen = self._rng.choice(modifiable, size=k, replace=False)
            adversarial[row, chosen] = np.minimum(
                adversarial[row, chosen] + self.constraints.theta,
                self.constraints.clip_max)
            iterations[row] = k
        adversarial = self.constraints.project(adversarial, original)
        return self._package(original, adversarial, iterations)
