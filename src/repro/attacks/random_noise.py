"""Random API-addition baseline.

Section III-A notes that "randomly adding features does not decrease the
detection rates" — the control showing JSMA perturbations are structured,
not noise.  :class:`RandomAdditionAttack` adds ``theta`` to ``gamma * d``
uniformly chosen modifiable features, respecting the same add-only and box
constraints as JSMA.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.attacks.base import Attack, AttackResult
from repro.attacks.constraints import PerturbationConstraints
from repro.nn.network import NeuralNetwork
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_matrix


class RandomAdditionAttack(Attack):
    """Add θ to γ·d randomly selected features (the paper's noise control)."""

    name = "random_addition"

    def __init__(self, network: NeuralNetwork,
                 constraints: Optional[PerturbationConstraints] = None,
                 random_state: RandomState = None) -> None:
        super().__init__(network, constraints)
        self._rng = as_rng(random_state)

    def run(self, features: np.ndarray) -> AttackResult:
        original = check_matrix(features, name="features",
                                n_features=self.network.input_dim)
        adversarial = original.copy()
        n_samples, n_features = original.shape
        budget = self.constraints.max_features(n_features)
        modifiable = np.flatnonzero(self.constraints.modifiable_mask(n_features))
        iterations = np.zeros(n_samples, dtype=np.int64)

        if budget == 0 or self.constraints.theta == 0.0 or modifiable.size == 0:
            return self._package(original, adversarial, iterations)

        k = min(budget, modifiable.size)
        for row in range(n_samples):
            chosen = self._rng.choice(modifiable, size=k, replace=False)
            adversarial[row, chosen] = np.minimum(
                adversarial[row, chosen] + self.constraints.theta,
                self.constraints.clip_max)
            iterations[row] = k
        adversarial = self.constraints.project(adversarial, original)
        return self._package(original, adversarial, iterations)
