"""Adversarial training (Section II-C-1, Tables V and VI).

The paper augments the training set with a subset of the grey-box
adversarial examples (crafted at θ=0.1, γ=0.02) plus a subset of test
malware, re-balances it with additional clean samples, removes duplicates
("sanity check on the data"), and retrains the detector.  The result — Table
VI — is a detector whose adversarial detection rate rises from 0.304 to
0.931 with no loss on clean or original malware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.config import CLASS_CLEAN, CLASS_MALWARE, ScaleProfile, default_profile
from repro.data.dataset import Dataset
from repro.defenses.base import Defense, ModelBackedDetector
from repro.exceptions import DefenseError
from repro.models.target_model import TargetModel
from repro.scenarios.registry import Param, register_defense
from repro.utils.rng import RandomState, as_rng


def deduplicate(dataset: Dataset, decimals: int = 6) -> Dataset:
    """Drop duplicated feature rows (the paper's "sanity check on the data").

    Rows are compared after rounding to ``decimals`` decimal places so that
    numerically identical samples produced by different pipeline runs
    collapse together.
    """
    rounded = np.round(dataset.features, decimals=decimals)
    _, unique_indices = np.unique(rounded, axis=0, return_index=True)
    if unique_indices.size == dataset.n_samples:
        return dataset
    return dataset.subset(np.sort(unique_indices), name=dataset.name)


@dataclass
class AdversarialTrainingData:
    """The Table V datasets: the augmented training set and its test set."""

    train: Dataset
    test: Dataset
    n_adversarial_train: int
    n_adversarial_test: int

    def table5_rows(self) -> list[tuple[str, str]]:
        """Rows of Table V."""
        train_counts = self.train.class_counts()
        test_counts = self.test.class_counts()
        return [
            ("Training Set",
             f"{self.train.n_samples} ({train_counts['clean']} clean, "
             f"{train_counts['malware']} malware and advEx)"),
            ("Test Set",
             f"{self.test.n_samples} ({test_counts['clean']} clean, "
             f"{test_counts['malware'] - self.n_adversarial_test} malware and "
             f"{self.n_adversarial_test} advEx)"),
        ]


def _scenario_fitter(cls, context, params, model=None):
    """Retrain on the context's corpus plus its cached grey-box advEx set.

    The adversarial set comes from
    :meth:`~repro.experiments.context.ExperimentContext.greybox_adversarial`
    at the paper's Table VI operating point by default (θ=0.1, γ=0.02), so
    the fit is shared with — and artifact-cached alongside — the defense
    experiments.  The default ``seed_name`` reproduces the Table VI fit for
    any master seed.
    """
    adversarial = context.greybox_adversarial(theta=params["advex_theta"],
                                              gamma=params["advex_gamma"])
    defense = cls(scale=context.scale,
                  adv_train_fraction=params["adv_train_fraction"],
                  malware_train_fraction=params["malware_train_fraction"],
                  random_state=context.seeds.seed_for(params["seed_name"]))
    return defense.fit(context.corpus.train, context.corpus.test, adversarial,
                       validation=context.corpus.validation)


@register_defense("adversarial_training", aliases=("adv_training",),
                  fitter=_scenario_fitter, params=(
    Param("adv_train_fraction", "float", 0.4,
          help="fraction of the adversarial examples mixed into training"),
    Param("malware_train_fraction", "float", 0.3,
          help="fraction of the test malware mixed into training"),
    Param("advex_theta", "float", 0.1,
          help="theta of the grey-box advEx set trained against (Table VI)"),
    Param("advex_gamma", "float", 0.02,
          help="gamma of the grey-box advEx set trained against (Table VI)"),
    Param("seed_name", "str", "table6:advtraining",
          help="named seed for subset selection and retraining"),
))
class AdversarialTrainingDefense(Defense):
    """Retrain the detector on a training set augmented with adversarial examples.

    Parameters
    ----------
    scale:
        Scale profile controlling the retrained model's size and epochs.
    adv_train_fraction:
        Fraction of the supplied adversarial examples injected into the
        training set (the remainder is reserved for the defense test set,
        mirroring Table V where most adversarial examples are test-only).
    malware_train_fraction:
        Fraction of the supplied *test* malware mixed into the training set.
    random_state:
        Seed controlling the subsets and retraining.
    """

    name = "adversarial_training"

    def __init__(self, scale: Optional[ScaleProfile] = None,
                 adv_train_fraction: float = 0.4,
                 malware_train_fraction: float = 0.3,
                 random_state: RandomState = 0) -> None:
        super().__init__()
        if not 0.0 < adv_train_fraction < 1.0:
            raise DefenseError("adv_train_fraction must be in (0, 1)")
        if not 0.0 <= malware_train_fraction < 1.0:
            raise DefenseError("malware_train_fraction must be in [0, 1)")
        self.scale = scale if scale is not None else default_profile()
        self.adv_train_fraction = float(adv_train_fraction)
        self.malware_train_fraction = float(malware_train_fraction)
        self.random_state = random_state
        self.data: Optional[AdversarialTrainingData] = None
        self.model: Optional[TargetModel] = None

    # ------------------------------------------------------------------ #
    # Table V dataset construction
    # ------------------------------------------------------------------ #
    def build_datasets(self, train: Dataset, test: Dataset,
                       adversarial: Dataset) -> AdversarialTrainingData:
        """Assemble the Table V training/test sets.

        ``adversarial`` must contain adversarial malware examples (label 1).
        """
        if not np.all(adversarial.labels == CLASS_MALWARE):
            raise DefenseError("adversarial examples must all carry the malware label")
        rng = as_rng(self.random_state)

        n_adv = adversarial.n_samples
        n_adv_train = max(1, int(round(self.adv_train_fraction * n_adv)))
        adv_indices = rng.permutation(n_adv)
        adv_train = adversarial.subset(adv_indices[:n_adv_train], name="advex_train")
        adv_test = adversarial.subset(adv_indices[n_adv_train:], name="advex_test") \
            if n_adv_train < n_adv else None

        test_malware = test.malware_only()
        n_mal_train = int(round(self.malware_train_fraction * test_malware.n_samples))
        mal_indices = rng.permutation(test_malware.n_samples)
        extra_malware = (test_malware.subset(mal_indices[:n_mal_train], name="malware_extra")
                         if n_mal_train > 0 else None)
        held_out_malware = test_malware.subset(mal_indices[n_mal_train:],
                                               name="malware_heldout") \
            if n_mal_train < test_malware.n_samples else test_malware

        # Re-balance with extra clean samples drawn from the test clean pool.
        train_parts = [train, adv_train]
        if extra_malware is not None:
            train_parts.append(extra_malware)
        added_malicious = adv_train.n_samples + (extra_malware.n_samples
                                                 if extra_malware is not None else 0)
        test_clean = test.clean_only()
        n_clean_extra = min(added_malicious, max(test_clean.n_samples - 1, 1))
        clean_indices = rng.permutation(test_clean.n_samples)
        extra_clean = test_clean.subset(clean_indices[:n_clean_extra], name="clean_extra")
        held_out_clean = test_clean.subset(clean_indices[n_clean_extra:], name="clean_heldout") \
            if n_clean_extra < test_clean.n_samples else test_clean
        train_parts.append(extra_clean)

        augmented_train = deduplicate(
            Dataset.concatenate(train_parts, name="adv_training_set"))

        test_parts = [held_out_clean, held_out_malware]
        if adv_test is not None:
            test_parts.append(adv_test)
        defense_test = Dataset.concatenate(test_parts, name="adv_defense_test")
        self.data = AdversarialTrainingData(
            train=augmented_train,
            test=defense_test,
            n_adversarial_train=adv_train.n_samples,
            n_adversarial_test=adv_test.n_samples if adv_test is not None else 0,
        )
        return self.data

    # ------------------------------------------------------------------ #
    # Defense fitting
    # ------------------------------------------------------------------ #
    def fit(self, train: Dataset, test: Dataset, adversarial: Dataset,
            validation: Optional[Dataset] = None) -> ModelBackedDetector:
        """Build the augmented training set and retrain the detector on it."""
        data = self.build_datasets(train, test, adversarial)
        model = TargetModel.for_scale(self.scale, random_state=self.random_state,
                                      n_features=train.n_features)
        model.fit(data.train, validation,
                  epochs=self.scale.target_epochs,
                  batch_size=self.scale.batch_size,
                  learning_rate=self.scale.learning_rate,
                  random_state=self.random_state)
        self.model = model
        return self._finalize(ModelBackedDetector(model, name=self.name))
