"""Principal Component Analysis implemented from scratch (via SVD).

Used by the dimensionality-reduction defense (Section II-C-4): instead of
training the classifier on the full 491-dimensional input, the defender
projects onto the first ``k`` principal components (the paper selects
``k = 19``) and trains on the reduced representation, restricting the
attacker to perturbations that survive the projection.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError, NotFittedError
from repro.utils.serialization import load_bundle, save_bundle
from repro.utils.validation import check_matrix


class PCA:
    """Principal component analysis with a scikit-learn-like interface.

    Parameters
    ----------
    n_components:
        Number of components ``k`` to keep (must not exceed the feature
        dimension or the number of training samples).
    whiten:
        Whether to scale projected components to unit variance.
    """

    def __init__(self, n_components: int, whiten: bool = False) -> None:
        if n_components < 1:
            raise ConfigurationError(f"n_components must be >= 1, got {n_components}")
        self.n_components = int(n_components)
        self.whiten = bool(whiten)
        self._mean: Optional[np.ndarray] = None
        self._components: Optional[np.ndarray] = None
        self._explained_variance: Optional[np.ndarray] = None
        self._total_variance: Optional[float] = None

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._components is not None

    def fit(self, x: np.ndarray) -> "PCA":
        """Learn the principal components of ``x`` (rows are samples)."""
        x = check_matrix(x, name="X")
        n_samples, n_features = x.shape
        max_components = min(n_samples, n_features)
        if self.n_components > max_components:
            raise ConfigurationError(
                f"n_components={self.n_components} exceeds min(n_samples, n_features)="
                f"{max_components}"
            )
        self._mean = x.mean(axis=0)
        centered = x - self._mean
        # Economy SVD: centered = U @ diag(s) @ Vt, components are rows of Vt.
        _, singular_values, vt = np.linalg.svd(centered, full_matrices=False)
        explained = (singular_values ** 2) / max(n_samples - 1, 1)
        self._components = vt[: self.n_components]
        self._explained_variance = explained[: self.n_components]
        self._total_variance = float(explained.sum())
        return self

    # ------------------------------------------------------------------ #
    # Projection
    # ------------------------------------------------------------------ #
    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise NotFittedError("PCA must be fitted before use")

    @property
    def components_(self) -> np.ndarray:
        """The ``(n_components, n_features)`` principal axes."""
        self._require_fitted()
        return self._components

    @property
    def mean_(self) -> np.ndarray:
        """Per-feature training mean subtracted before projection."""
        self._require_fitted()
        return self._mean

    @property
    def explained_variance_(self) -> np.ndarray:
        """Variance captured by each kept component."""
        self._require_fitted()
        return self._explained_variance

    @property
    def explained_variance_ratio_(self) -> np.ndarray:
        """Fraction of total variance captured by each kept component."""
        self._require_fitted()
        if self._total_variance == 0:
            return np.zeros_like(self._explained_variance)
        return self._explained_variance / self._total_variance

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Project ``x`` onto the kept components → ``(n, k)``."""
        self._require_fitted()
        x = check_matrix(x, name="X", n_features=self._mean.shape[0])
        projected = (x - self._mean) @ self._components.T
        if self.whiten:
            projected = projected / np.sqrt(self._explained_variance + 1e-12)
        return projected

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        """Fit on ``x`` and return its projection."""
        return self.fit(x).transform(x)

    def inverse_transform(self, projected: np.ndarray) -> np.ndarray:
        """Map projected points back to the original feature space."""
        self._require_fitted()
        projected = check_matrix(projected, name="projected",
                                 n_features=self.n_components)
        if self.whiten:
            projected = projected * np.sqrt(self._explained_variance + 1e-12)
        return projected @ self._components + self._mean

    def reconstruction_error(self, x: np.ndarray) -> np.ndarray:
        """Per-sample L2 reconstruction error (useful as an anomaly score)."""
        reconstructed = self.inverse_transform(self.transform(x))
        return np.linalg.norm(check_matrix(x) - reconstructed, axis=1)

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, path: str | Path) -> Path:
        """Persist the fitted projection."""
        self._require_fitted()
        meta = {"n_components": self.n_components, "whiten": self.whiten}
        arrays = {
            "mean": self._mean,
            "components": self._components,
            "explained_variance": self._explained_variance,
            "total_variance": np.asarray([self._total_variance]),
        }
        return save_bundle(path, meta, arrays)

    @classmethod
    def load(cls, path: str | Path) -> "PCA":
        """Restore a PCA saved with :meth:`save`."""
        meta, arrays = load_bundle(path)
        pca = cls(n_components=meta["n_components"], whiten=meta["whiten"])
        pca._mean = arrays["mean"]
        pca._components = arrays["components"]
        pca._explained_variance = arrays["explained_variance"]
        pca._total_variance = float(arrays["total_variance"][0])
        return pca
