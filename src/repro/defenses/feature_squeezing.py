"""Feature squeezing (Section II-C-3).

Feature squeezing detects adversarial inputs by comparing the model's
prediction on the original input with its prediction on a *squeezed* copy
(one with unnecessary degrees of freedom removed).  The paper uses the L1
distance between the two prediction vectors: if it exceeds a threshold the
input is declared adversarial.

For 491-dimensional count features in ``[0, 1]`` the natural squeezers are

* **bit-depth reduction** — quantise each feature to ``2^bits`` levels,
* **presence binarisation** — collapse each feature to 0/1,

both of which leave legitimate samples' predictions almost unchanged while
disrupting the finely-tuned JSMA perturbations.

For the Table VI comparison the squeezing detector is folded into the final
decision: a sample is flagged *malware* when the model says malware **or**
the squeezing detector says adversarial (an adversarial input is by
definition something malicious trying to evade).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.config import CLASS_MALWARE
from repro.data.dataset import Dataset
from repro.defenses.base import DefendedDetector, Defense
from repro.exceptions import DefenseError
from repro.nn.network import NeuralNetwork
from repro.scenarios.registry import Param, register_defense
from repro.utils.validation import check_fraction, check_matrix


def bit_depth_squeeze(features: np.ndarray, bits: int = 3) -> np.ndarray:
    """Quantise features in [0, 1] to ``2^bits`` levels."""
    if bits < 1:
        raise DefenseError(f"bits must be >= 1, got {bits}")
    levels = 2 ** bits - 1
    return np.round(np.asarray(features, dtype=np.float64) * levels) / levels


def binary_squeeze(features: np.ndarray, threshold: float = 0.05) -> np.ndarray:
    """Collapse features to presence/absence at ``threshold``."""
    return (np.asarray(features, dtype=np.float64) > threshold).astype(np.float64)


def small_count_squeeze(features: np.ndarray, threshold: float = 0.12) -> np.ndarray:
    """Zero out features below ``threshold`` (squeeze out incidental API calls).

    For count-normalised API features the "unnecessary degrees of freedom"
    are APIs that appear only a handful of times: legitimate behaviour is
    dominated by the APIs a program calls heavily, while the JSMA attack
    relies on *adding a small number of calls* to previously-unused APIs.
    Removing those low-count entries restores the classifier's original view
    of an adversarial example while barely affecting legitimate samples,
    which is exactly the asymmetry the detector thresholds on.
    """
    squeezed = np.asarray(features, dtype=np.float64).copy()
    squeezed[squeezed < threshold] = 0.0
    return squeezed


#: Named squeezers resolvable from scenario specs and the CLI.
SQUEEZERS: Dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "small_count": small_count_squeeze,
    "bit_depth": bit_depth_squeeze,
    "binary": binary_squeeze,
}


class SqueezedDetector(DefendedDetector):
    """Model + squeezing detector with a calibrated L1 threshold."""

    def __init__(self, network: NeuralNetwork,
                 squeezer: Callable[[np.ndarray], np.ndarray],
                 threshold: float, name: str = "feature_squeezing") -> None:
        super().__init__(name)
        self.network = network
        self.squeezer = squeezer
        self.threshold = float(threshold)

    def squeeze(self, features: np.ndarray) -> np.ndarray:
        """Apply the squeezer to a feature matrix."""
        return self.squeezer(check_matrix(features, name="features"))

    def l1_scores(self, features: np.ndarray) -> np.ndarray:
        """L1 distance between predictions on original and squeezed inputs."""
        features = check_matrix(features, name="features")
        original = self.network.predict_proba(features)
        squeezed = self.network.predict_proba(self.squeezer(features))
        return np.abs(original - squeezed).sum(axis=1)

    def is_adversarial(self, features: np.ndarray) -> np.ndarray:
        """Boolean mask of inputs flagged adversarial by the detector."""
        return self.l1_scores(features) > self.threshold

    def predict(self, features: np.ndarray) -> np.ndarray:
        features = check_matrix(features, name="features")
        base = self.network.predict(features)
        flagged = self.is_adversarial(features)
        return np.where(flagged, CLASS_MALWARE, base)

    def malware_confidence(self, features: np.ndarray) -> np.ndarray:
        features = check_matrix(features, name="features")
        base = self.network.malware_score(features)
        return np.where(self.is_adversarial(features), 1.0, base)

    def decide(self, features: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Confidences and labels from one original + one squeezed forward.

        ``predict`` + ``malware_confidence`` would run six network forwards
        per batch (each recomputes the L1 scores from scratch); sharing the
        two probability matrices yields identical results in two.
        """
        features = check_matrix(features, name="features")
        original = self.network.predict_proba(features)
        squeezed = self.network.predict_proba(self.squeezer(features))
        flagged = np.abs(original - squeezed).sum(axis=1) > self.threshold
        confidences = np.where(flagged, 1.0, original[:, CLASS_MALWARE])
        labels = np.where(flagged, CLASS_MALWARE, np.argmax(original, axis=1))
        return confidences, labels


def _scenario_fitter(cls, context, params, model=None):
    """Calibrate the squeezing detector on the defender's validation split.

    ``model`` (when given, e.g. by ``repro serve --defense squeeze``)
    overrides which network is being guarded; the threshold is always
    calibrated on the context's legitimate validation data.
    """
    network = model.network if model is not None else context.target_model.network
    defense = cls(squeezer=SQUEEZERS[params["squeezer"]],
                  false_positive_budget=params["false_positive_budget"])
    return defense.fit(network, context.corpus.validation)


@register_defense("feature_squeezing", aliases=("squeeze",),
                  fitter=_scenario_fitter, params=(
    Param("squeezer", "str", "small_count", choices=("small_count", "bit_depth", "binary"),
          help="squeezing function compared against the raw forward pass"),
    Param("false_positive_budget", "float", 0.05,
          help="fraction of legitimate samples allowed to be flagged"),
))
class FeatureSqueezingDefense(Defense):
    """Calibrate a squeezing detector on legitimate data.

    Parameters
    ----------
    squeezer:
        The squeezing function (defaults to :func:`small_count_squeeze`,
        which removes low-count API entries; :func:`bit_depth_squeeze` and
        :func:`binary_squeeze` are available for ablations).
    false_positive_budget:
        The threshold is set to the ``(1 - budget)`` quantile of the L1
        scores observed on legitimate calibration data, i.e. at most this
        fraction of legitimate samples will be flagged adversarial.
    """

    name = "feature_squeezing"

    def __init__(self, squeezer: Optional[Callable[[np.ndarray], np.ndarray]] = None,
                 false_positive_budget: float = 0.05) -> None:
        super().__init__()
        check_fraction(false_positive_budget, "false_positive_budget")
        self.squeezer = squeezer if squeezer is not None else small_count_squeeze
        self.false_positive_budget = float(false_positive_budget)
        self.threshold_: Optional[float] = None

    def calibrate_threshold(self, network: NeuralNetwork,
                            calibration: Dataset) -> float:
        """Compute the L1 threshold from legitimate calibration data."""
        probe = SqueezedDetector(network, self.squeezer, threshold=np.inf, name="probe")
        scores = probe.l1_scores(calibration.features)
        quantile = 1.0 - self.false_positive_budget
        self.threshold_ = float(np.quantile(scores, quantile))
        return self.threshold_

    def fit(self, network: NeuralNetwork, calibration: Dataset) -> SqueezedDetector:
        """Calibrate on legitimate data and return the squeezing detector.

        ``calibration`` should contain legitimate (non-adversarial) samples —
        the paper's validation split is the natural choice.
        """
        threshold = self.calibrate_threshold(network, calibration)
        return self._finalize(SqueezedDetector(network, self.squeezer, threshold,
                                               name=self.name))
