"""Defenses against the evasion attack (Section II-C).

Four defenses from the paper plus the ensemble it suggests considering:

* :mod:`adversarial_training` — retrain the detector with adversarial
  examples mixed into the training set (Table V / Table VI "AdvTraining");
* :mod:`distillation` — defensive distillation with softmax temperature
  ``T = 50`` (Table VI "Distillation");
* :mod:`feature_squeezing` — detect adversarial inputs by comparing the
  model's prediction on the original and on a squeezed copy of the input
  (L1 distance over a threshold ⇒ adversarial; Table VI "FeaSqueezing");
* :mod:`dim_reduction` — train the detector on the first ``k`` principal
  components (``k = 19``; Table VI "DimReduct"), built on the from-scratch
  :mod:`pca` implementation;
* :mod:`ensemble` — the adversarial-training + dimensionality-reduction
  combination the paper's discussion proposes.

Every defense produces a :class:`~repro.defenses.base.DefendedDetector`,
which exposes the same prediction surface as the undefended model so the
Table VI evaluation code treats them uniformly.
"""

from repro.defenses.adversarial_training import AdversarialTrainingDefense
from repro.defenses.base import DefendedDetector, Defense, NoDefense
from repro.defenses.dim_reduction import DimensionalityReductionDefense
from repro.defenses.distillation import DefensiveDistillation
from repro.defenses.ensemble import EnsembleDefense
from repro.defenses.feature_squeezing import (
    SQUEEZERS,
    FeatureSqueezingDefense,
    SqueezedDetector,
    binary_squeeze,
    bit_depth_squeeze,
    small_count_squeeze,
)
from repro.defenses.pca import PCA

__all__ = [
    "Defense",
    "DefendedDetector",
    "NoDefense",
    "AdversarialTrainingDefense",
    "DefensiveDistillation",
    "FeatureSqueezingDefense",
    "SqueezedDetector",
    "SQUEEZERS",
    "bit_depth_squeeze",
    "binary_squeeze",
    "small_count_squeeze",
    "DimensionalityReductionDefense",
    "EnsembleDefense",
    "PCA",
]
