"""Defensive distillation (Section II-C-2).

Two models are involved: a *teacher* trained normally but with a high
softmax temperature ``T`` (the paper uses ``T = 50``), and a *student*
("compressed model") trained — at the same temperature — on the teacher's
soft class probabilities instead of the hard labels.  At inference time the
student predicts at temperature 1, which flattens its logits and (the
argument goes) reduces the gradient signal an attacker can exploit.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config import ScaleProfile, default_profile
from repro.data.dataset import Dataset
from repro.defenses.base import Defense, ModelBackedDetector
from repro.exceptions import DefenseError
from repro.models.target_model import TargetModel
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.optimizers import Adam
from repro.nn.training import Trainer
from repro.scenarios.registry import Param, register_defense
from repro.utils.rng import RandomState, as_rng, spawn_rngs


def _scenario_fitter(cls, context, params, model=None):
    """Distill teacher and student from the context's training corpus.

    The default ``seed_name`` reproduces the Table VI fit for any master
    seed.
    """
    defense = cls(temperature=params["temperature"], scale=context.scale,
                  random_state=context.seeds.seed_for(params["seed_name"]))
    return defense.fit(context.corpus.train, context.corpus.validation)


@register_defense("distillation", aliases=("defensive_distillation",),
                  fitter=_scenario_fitter, params=(
    Param("temperature", "float", 50.0,
          help="softmax temperature T for teacher and student training"),
    Param("seed_name", "str", "table6:distillation",
          help="named seed for teacher/student initialisation and shuffling"),
))
class DefensiveDistillation(Defense):
    """Train a distilled detector at temperature ``T`` (default 50)."""

    def __init__(self, temperature: float = 50.0,
                 scale: Optional[ScaleProfile] = None,
                 random_state: RandomState = 0) -> None:
        super().__init__()
        if temperature <= 0:
            raise DefenseError(f"temperature must be positive, got {temperature}")
        self.temperature = float(temperature)
        self.scale = scale if scale is not None else default_profile()
        self.random_state = random_state
        self.teacher: Optional[TargetModel] = None
        self.student: Optional[TargetModel] = None

    def _train_at_temperature(self, model: TargetModel, features: np.ndarray,
                              targets: np.ndarray, rng) -> None:
        trainer = Trainer(
            model.network,
            optimizer=Adam(learning_rate=self.scale.learning_rate),
            loss=SoftmaxCrossEntropy(temperature=self.temperature),
            batch_size=self.scale.batch_size,
            epochs=self.scale.target_epochs,
            random_state=rng,
        )
        model.history = trainer.fit(features, targets)

    def fit(self, train: Dataset, validation: Optional[Dataset] = None) -> ModelBackedDetector:
        """Train teacher and student; return the student as the defended detector."""
        teacher_rng, student_rng, shuffle_rng = spawn_rngs(self.random_state, 3)

        teacher = TargetModel.for_scale(self.scale, random_state=teacher_rng,
                                        n_features=train.n_features)
        self._train_at_temperature(teacher, train.features, train.labels, shuffle_rng)
        self.teacher = teacher

        # Soft labels produced by the teacher *at temperature T*.
        soft_labels = teacher.network.predict_proba(train.features,
                                                    temperature=self.temperature)

        student = TargetModel.for_scale(self.scale, random_state=student_rng,
                                        n_features=train.n_features)
        self._train_at_temperature(student, train.features, soft_labels, shuffle_rng)
        # Inference runs at temperature 1 (the standard distillation recipe).
        student.network.temperature = 1.0
        self.student = student
        return self._finalize(ModelBackedDetector(student, name=self.name))
