"""Common interface shared by all defenses.

Each defense turns the defender's assets (the corpus bundle, the trained
target model, and — for adversarial training — a batch of adversarial
examples) into a :class:`DefendedDetector`: an object with exactly the same
prediction surface as the undefended detector, so the Table VI evaluation
treats "No Defense" and every defended variant identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from repro.config import CLASS_MALWARE
from repro.data.dataset import Dataset
from repro.exceptions import DefenseError
from repro.nn.metrics import ClassificationReport, detection_rate
from repro.scenarios.registry import register_defense
from repro.utils.validation import check_matrix


class DefendedDetector:
    """A (possibly wrapped) detector produced by a defense.

    Subclasses override :meth:`predict` (hard labels) and, when meaningful,
    :meth:`malware_confidence`.
    """

    def __init__(self, name: str) -> None:
        self.name = name

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Hard decisions (0 clean, 1 malware) for a feature matrix."""
        raise NotImplementedError

    def malware_confidence(self, features: np.ndarray) -> np.ndarray:
        """Malware probability per sample (defaults to the hard decision)."""
        return self.predict(features).astype(np.float64)

    def decide(self, features: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(malware confidences, hard labels)`` for one feature matrix.

        The results are exactly ``malware_confidence(features)`` and
        ``predict(features)``; detectors whose two surfaces share expensive
        intermediates (squeezed forward passes, member votes) override this
        to compute both in one evaluation — the scoring service's per-batch
        hot path.
        """
        return self.malware_confidence(features), self.predict(features)

    def detection_rate(self, features: np.ndarray) -> float:
        """Fraction of the batch flagged as malware."""
        return detection_rate(self.predict(features), positive_class=CLASS_MALWARE)

    def report(self, dataset: Dataset) -> ClassificationReport:
        """Confusion-matrix rates on a dataset."""
        return ClassificationReport.from_predictions(dataset.labels,
                                                     self.predict(dataset.features))


class ModelBackedDetector(DefendedDetector):
    """A defended detector that simply wraps a retrained model."""

    def __init__(self, model, name: str) -> None:
        super().__init__(name)
        if not hasattr(model, "predict"):
            raise DefenseError("model must expose a predict() method")
        self.model = model

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self.model.predict(check_matrix(features, name="features"))

    def malware_confidence(self, features: np.ndarray) -> np.ndarray:
        features = check_matrix(features, name="features")
        if hasattr(self.model, "malware_confidence"):
            return self.model.malware_confidence(features)
        if hasattr(self.model, "malware_score"):
            return self.model.malware_score(features)
        return super().malware_confidence(features)

    def decide(self, features: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """One ``predict_proba`` pass yields both surfaces when available."""
        features = check_matrix(features, name="features")
        if hasattr(self.model, "predict_proba"):
            probabilities = np.asarray(self.model.predict_proba(features))
            return (probabilities[:, CLASS_MALWARE],
                    np.argmax(probabilities, axis=1))
        return super().decide(features)


class Defense:
    """Base class for defenses.

    A defense is *fit* from the defender's assets and returns a
    :class:`DefendedDetector`; the returned detector is also stored on
    ``self.detector`` for convenience.
    """

    name = "defense"

    def __init__(self) -> None:
        self.detector: Optional[DefendedDetector] = None

    def fit(self, *args, **kwargs) -> DefendedDetector:
        """Build the defended detector; must be implemented by subclasses."""
        raise NotImplementedError

    def _finalize(self, detector: DefendedDetector) -> DefendedDetector:
        self.detector = detector
        return detector


def _fit_none(cls, context, params, model=None):
    """Wrap the (served or deployed) detector without any defense."""
    return cls().fit(model if model is not None else context.target_model)


@register_defense("none", fitter=_fit_none, aliases=("no_defense",),
                  summary="Undefended detector (Table VI 'No Defense' row)")
class NoDefense(Defense):
    """The identity defense: the Table VI baseline row.

    Registering "no defense" as a first-class entry keeps every consumer —
    the scenario engine, ``repro serve --defense``, grid sweeps — on one
    uniform code path instead of special-casing the undefended detector.
    """

    def fit(self, model) -> ModelBackedDetector:
        """Wrap ``model`` in the standard detector surface, unchanged."""
        return self._finalize(ModelBackedDetector(model, name="no_defense"))
