"""Dimensionality-reduction defense (Section II-C-4).

Instead of training the classifier on the full 491-dimensional input the
defender projects onto the first ``k`` principal components (the paper picks
``k = 19``) and trains the detector on the reduced representation.  The
attacker's perturbations are thereby restricted to whatever survives the
projection, increasing the distortion needed to cross the boundary.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.config import ScaleProfile, default_profile
from repro.data.dataset import Dataset
from repro.defenses.base import DefendedDetector, Defense
from repro.defenses.pca import PCA
from repro.exceptions import DefenseError
from repro.models.target_model import TargetModel
from repro.nn.network import NeuralNetwork
from repro.scenarios.registry import Param, register_defense
from repro.utils.rng import RandomState
from repro.utils.validation import check_matrix

#: The number of principal components the paper selects.
PAPER_K = 19


class ReducedInputDetector(DefendedDetector):
    """A detector that projects inputs with PCA before classifying."""

    def __init__(self, pca: PCA, model: TargetModel, name: str = "dim_reduction") -> None:
        super().__init__(name)
        self.pca = pca
        self.model = model

    def project(self, features: np.ndarray) -> np.ndarray:
        """Project raw features onto the defended subspace."""
        return self.pca.transform(check_matrix(features, name="features"))

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self.model.predict(self.project(features))

    def malware_confidence(self, features: np.ndarray) -> np.ndarray:
        return self.model.malware_confidence(self.project(features))


def _scenario_fitter(cls, context, params, model=None):
    """Fit PCA(k) + reduced detector from the context's training corpus.

    ``n_components`` is clipped to the corpus feature count (small scale
    profiles can carry fewer than the paper's 491 features).  The default
    ``seed_name`` reproduces the Table VI fit for any master seed.
    """
    n_components = min(params["n_components"], context.corpus.train.n_features)
    defense = cls(n_components=n_components, scale=context.scale,
                  random_state=context.seeds.seed_for(params["seed_name"]))
    return defense.fit(context.corpus.train, context.corpus.validation)


@register_defense("dim_reduction", aliases=("pca",),
                  fitter=_scenario_fitter, params=(
    Param("n_components", "int", PAPER_K,
          help="number of principal components kept (paper: k = 19)"),
    Param("seed_name", "str", "table6:dimreduct",
          help="named seed for the reduced detector's retraining"),
))
class DimensionalityReductionDefense(Defense):
    """Fit PCA(k) on the training data and retrain the detector on the projection."""

    name = "dim_reduction"

    def __init__(self, n_components: int = PAPER_K,
                 scale: Optional[ScaleProfile] = None,
                 hidden_sizes: Optional[Sequence[int]] = None,
                 random_state: RandomState = 0) -> None:
        super().__init__()
        if n_components < 1:
            raise DefenseError(f"n_components must be >= 1, got {n_components}")
        self.n_components = int(n_components)
        self.scale = scale if scale is not None else default_profile()
        self.hidden_sizes = list(hidden_sizes) if hidden_sizes is not None else None
        self.random_state = random_state
        self.pca: Optional[PCA] = None
        self.model: Optional[TargetModel] = None

    def fit(self, train: Dataset, validation: Optional[Dataset] = None) -> ReducedInputDetector:
        """Fit the projection and train the reduced-input detector."""
        pca = PCA(n_components=self.n_components).fit(train.features)
        reduced_train = train.with_features(pca.transform(train.features),
                                            name=f"{train.name}_pca{self.n_components}")
        reduced_val = (validation.with_features(pca.transform(validation.features))
                       if validation is not None else None)

        if self.hidden_sizes is not None:
            sizes = [self.n_components, *self.hidden_sizes, 2]
        else:
            sizes = [self.n_components,
                     max(8, self.scale.scaled_hidden(256)),
                     max(4, self.scale.scaled_hidden(64)),
                     2]
        model = TargetModel(layer_sizes=sizes, random_state=self.random_state,
                            name=f"target_pca{self.n_components}")
        model.fit(reduced_train, reduced_val,
                  epochs=self.scale.target_epochs,
                  batch_size=self.scale.batch_size,
                  learning_rate=self.scale.learning_rate,
                  random_state=self.random_state)
        self.pca = pca
        self.model = model
        return self._finalize(ReducedInputDetector(pca, model, name=self.name))
