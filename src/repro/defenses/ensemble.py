"""Ensemble defense.

The paper's discussion of Table VI suggests "we may consider ensemble
adversarial training and dimension reduction": adversarial training recovers
adversarial detection without hurting the clean rate, while the PCA defense
recovers both malware rates at the cost of clean accuracy.  This module
implements that combination (and, generally, any combination of defended
detectors) with two voting rules:

* ``"average"`` — average the members' malware confidences and threshold at
  0.5 (soft voting);
* ``"any"`` — flag malware when any member flags malware (maximally
  conservative, highest TPR / lowest TNR).
"""

from __future__ import annotations

from typing import List, Mapping, Sequence

import numpy as np

from repro.config import CLASS_CLEAN, CLASS_MALWARE
from repro.defenses.base import DefendedDetector, Defense
from repro.exceptions import ConfigurationError, DefenseError
from repro.scenarios.registry import DEFENSES, Param, build_defense, register_defense
from repro.utils.validation import check_matrix


class EnsembleDetector(DefendedDetector):
    """Combine several defended detectors into one decision."""

    def __init__(self, members: Sequence[DefendedDetector], voting: str = "average",
                 name: str = "ensemble") -> None:
        super().__init__(name)
        if not members:
            raise DefenseError("an ensemble needs at least one member")
        if voting not in ("average", "any", "majority"):
            raise DefenseError(f"unknown voting rule {voting!r}")
        self.members: List[DefendedDetector] = list(members)
        self.voting = voting

    def malware_confidence(self, features: np.ndarray) -> np.ndarray:
        features = check_matrix(features, name="features")
        confidences = np.stack([member.malware_confidence(features)
                                for member in self.members], axis=0)
        if self.voting == "any":
            return confidences.max(axis=0)
        if self.voting == "majority":
            votes = (confidences >= 0.5).mean(axis=0)
            return votes
        return confidences.mean(axis=0)

    def predict(self, features: np.ndarray) -> np.ndarray:
        features = check_matrix(features, name="features")
        if self.voting == "any":
            predictions = np.stack([member.predict(features) for member in self.members],
                                   axis=0)
            return np.where(predictions.max(axis=0) == CLASS_MALWARE,
                            CLASS_MALWARE, CLASS_CLEAN)
        return np.where(self.malware_confidence(features) >= 0.5,
                        CLASS_MALWARE, CLASS_CLEAN)

    def decide(self, features: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Confidences and labels from one ``decide`` pass per member.

        Calling ``malware_confidence`` + ``predict`` separately evaluates
        every member twice (and members like the squeezing detector are
        themselves multi-forward); one shared member pass halves the
        ensemble's serving cost with identical decisions.
        """
        features = check_matrix(features, name="features")
        member_votes = [member.decide(features) for member in self.members]
        confidences = np.stack([conf for conf, _ in member_votes], axis=0)
        if self.voting == "any":
            labels = np.stack([label for _, label in member_votes], axis=0)
            return (confidences.max(axis=0),
                    np.where(labels.max(axis=0) == CLASS_MALWARE,
                             CLASS_MALWARE, CLASS_CLEAN))
        if self.voting == "majority":
            combined = (confidences >= 0.5).mean(axis=0)
        else:
            combined = confidences.mean(axis=0)
        return combined, np.where(combined >= 0.5, CLASS_MALWARE, CLASS_CLEAN)


def _scenario_fitter(cls, context, params, model=None):
    """Resolve member defenses through the registry, then combine them.

    ``members`` entries are registry ids (``"feature_squeezing"``) or
    mappings ``{"defense": id, "params": {...}}``.  Members resolve through
    :func:`~repro.scenarios.registry.build_defense`, so a member that was
    already fitted on this context (e.g. by a Table VI row) is reused, not
    refitted.  Nested ensembles are rejected.
    """
    members: List[DefendedDetector] = []
    for member in params["members"]:
        if isinstance(member, str):
            member_id, member_params = member, None
        elif isinstance(member, Mapping):
            unknown = sorted(set(member) - {"defense", "params"})
            if unknown or "defense" not in member:
                raise ConfigurationError(
                    f"ensemble member {member!r} must be an id or a "
                    f"{{'defense': id, 'params': {{...}}}} mapping")
            member_id, member_params = member["defense"], member.get("params")
        else:
            raise ConfigurationError(
                f"ensemble member {member!r} must be an id or a mapping")
        if DEFENSES.get(member_id).entry_id == "ensemble":
            raise ConfigurationError("ensembles cannot contain ensembles")
        members.append(build_defense(member_id, context, member_params,
                                     model=model))
    return cls(voting=params["voting"]).fit(members)


@register_defense("ensemble", fitter=_scenario_fitter, params=(
    Param("voting", "str", "average", choices=("average", "any", "majority"),
          help="how member verdicts combine into one decision"),
    Param("members", "list", ("none", "feature_squeezing"),
          help="member defense ids (or {'defense': id, 'params': {...}} "
               "mappings) resolved through the DefenseRegistry"),
))
class EnsembleDefense(Defense):
    """Build an :class:`EnsembleDetector` from already-fitted defenses."""

    def __init__(self, voting: str = "average") -> None:
        super().__init__()
        self.voting = voting

    def fit(self, members: Sequence[DefendedDetector]) -> EnsembleDetector:
        """Combine ``members`` (already-fitted defended detectors)."""
        return self._finalize(EnsembleDetector(members, voting=self.voting,
                                               name=self.name))
