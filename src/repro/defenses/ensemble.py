"""Ensemble defense.

The paper's discussion of Table VI suggests "we may consider ensemble
adversarial training and dimension reduction": adversarial training recovers
adversarial detection without hurting the clean rate, while the PCA defense
recovers both malware rates at the cost of clean accuracy.  This module
implements that combination (and, generally, any combination of defended
detectors) with two voting rules:

* ``"average"`` — average the members' malware confidences and threshold at
  0.5 (soft voting);
* ``"any"`` — flag malware when any member flags malware (maximally
  conservative, highest TPR / lowest TNR).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.config import CLASS_CLEAN, CLASS_MALWARE
from repro.defenses.base import DefendedDetector, Defense
from repro.exceptions import DefenseError
from repro.utils.validation import check_matrix


class EnsembleDetector(DefendedDetector):
    """Combine several defended detectors into one decision."""

    def __init__(self, members: Sequence[DefendedDetector], voting: str = "average",
                 name: str = "ensemble") -> None:
        super().__init__(name)
        if not members:
            raise DefenseError("an ensemble needs at least one member")
        if voting not in ("average", "any", "majority"):
            raise DefenseError(f"unknown voting rule {voting!r}")
        self.members: List[DefendedDetector] = list(members)
        self.voting = voting

    def malware_confidence(self, features: np.ndarray) -> np.ndarray:
        features = check_matrix(features, name="features")
        confidences = np.stack([member.malware_confidence(features)
                                for member in self.members], axis=0)
        if self.voting == "any":
            return confidences.max(axis=0)
        if self.voting == "majority":
            votes = (confidences >= 0.5).mean(axis=0)
            return votes
        return confidences.mean(axis=0)

    def predict(self, features: np.ndarray) -> np.ndarray:
        features = check_matrix(features, name="features")
        if self.voting == "any":
            predictions = np.stack([member.predict(features) for member in self.members],
                                   axis=0)
            return np.where(predictions.max(axis=0) == CLASS_MALWARE,
                            CLASS_MALWARE, CLASS_CLEAN)
        return np.where(self.malware_confidence(features) >= 0.5,
                        CLASS_MALWARE, CLASS_CLEAN)

    def decide(self, features: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Confidences and labels from one ``decide`` pass per member.

        Calling ``malware_confidence`` + ``predict`` separately evaluates
        every member twice (and members like the squeezing detector are
        themselves multi-forward); one shared member pass halves the
        ensemble's serving cost with identical decisions.
        """
        features = check_matrix(features, name="features")
        member_votes = [member.decide(features) for member in self.members]
        confidences = np.stack([conf for conf, _ in member_votes], axis=0)
        if self.voting == "any":
            labels = np.stack([label for _, label in member_votes], axis=0)
            return (confidences.max(axis=0),
                    np.where(labels.max(axis=0) == CLASS_MALWARE,
                             CLASS_MALWARE, CLASS_CLEAN))
        if self.voting == "majority":
            combined = (confidences >= 0.5).mean(axis=0)
        else:
            combined = confidences.mean(axis=0)
        return combined, np.where(combined >= 0.5, CLASS_MALWARE, CLASS_CLEAN)


class EnsembleDefense(Defense):
    """Build an :class:`EnsembleDetector` from already-fitted defenses."""

    name = "ensemble"

    def __init__(self, voting: str = "average") -> None:
        super().__init__()
        self.voting = voting

    def fit(self, members: Sequence[DefendedDetector]) -> EnsembleDetector:
        """Combine ``members`` (already-fitted defended detectors)."""
        return self._finalize(EnsembleDetector(members, voting=self.voting,
                                               name=self.name))
