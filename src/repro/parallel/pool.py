"""Shared process-pool plumbing for the parallel execution engine.

Both halves of :mod:`repro.parallel` — the :class:`~repro.parallel.grid.GridExecutor`
and the :class:`~repro.parallel.fleet.WorkerFleet` — need the same small
toolbox: resolving a worker count against the machine, picking a
``multiprocessing`` start method, deterministic round-robin sharding, and
shipping worker-side exceptions back to the dispatcher without losing the
traceback.  It lives here so the two subsystems cannot drift apart.

Start methods
-------------
``fork`` (the default where available) is what makes warm-starting cheap:
workers inherit the parent's already-built
:class:`~repro.experiments.context.ExperimentContext` artifacts by memory
copy-on-write, so a prewarmed parent forks N workers that never retrain
anything.  ``spawn`` starts from a blank interpreter; workers then rebuild
their state from the shared :class:`~repro.utils.artifact_cache.ArtifactCache`
(which PR-hardened locking makes safe for concurrent warm starts).  Override
the choice with ``REPRO_PARALLEL_START_METHOD`` or per call.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from dataclasses import dataclass
from typing import List, Optional

from repro.exceptions import ParallelError

#: Environment variable overriding the multiprocessing start method.
START_METHOD_ENV = "REPRO_PARALLEL_START_METHOD"


def available_cpus() -> int:
    """CPUs usable by this process (affinity-aware where the OS exposes it)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def resolve_workers(n_workers: Optional[int]) -> int:
    """Normalise a worker count: ``None``/``0`` means "one per CPU"."""
    if n_workers is None or n_workers == 0:
        return max(1, available_cpus())
    if n_workers < 0:
        raise ParallelError(f"n_workers must be >= 1 (or None/0 for one per "
                            f"CPU), got {n_workers}")
    return int(n_workers)


def resolve_start_method(start_method: Optional[str] = None) -> str:
    """The multiprocessing start method to use (arg > env > fork > spawn)."""
    candidate = start_method or os.environ.get(START_METHOD_ENV)
    methods = multiprocessing.get_all_start_methods()
    if candidate is not None:
        if candidate not in methods:
            raise ParallelError(
                f"start method {candidate!r} not available on this platform; "
                f"choose from {methods}")
        return candidate
    return "fork" if "fork" in methods else "spawn"


def shard_indices(n_items: int, n_shards: int) -> List[List[int]]:
    """Deterministic round-robin sharding of ``range(n_items)``.

    Shard ``s`` holds items ``s, s + n_shards, s + 2*n_shards, ...``.
    Note that the in-process :class:`~repro.parallel.grid.GridExecutor` and
    :class:`~repro.parallel.fleet.WorkerFleet` deliberately do *not* use a
    static assignment — they load-balance dynamically off a shared queue,
    which the spec-order merge makes invisible.  This helper is for callers
    splitting one grid across *machines or sessions* themselves (run shard
    ``s`` of ``N`` here, the rest elsewhere, concatenate the reports), and
    for tests that need a reproducible worker-assignment permutation.
    Empty shards are kept so ``len(result) == n_shards``.
    """
    if n_shards < 1:
        raise ParallelError(f"n_shards must be >= 1, got {n_shards}")
    return [list(range(shard, n_items, n_shards)) for shard in range(n_shards)]


@dataclass(frozen=True)
class RemoteFailure:
    """A worker-side exception, flattened into picklable parts."""

    where: str
    exc_type: str
    message: str
    traceback_text: str

    @classmethod
    def capture(cls, where: str, error: BaseException) -> "RemoteFailure":
        """Flatten ``error`` (raised while processing ``where``) for transport."""
        return cls(where=where, exc_type=type(error).__name__,
                   message=str(error),
                   traceback_text="".join(traceback.format_exception(
                       type(error), error, error.__traceback__)))

    def raise_(self) -> None:
        """Re-raise as a :class:`ParallelError` carrying the remote traceback."""
        raise ParallelError(
            f"worker failed on {self.where}: {self.exc_type}: {self.message}\n"
            f"--- remote traceback ---\n{self.traceback_text}")
