"""Process-pool execution of scenario grids.

:class:`GridExecutor` takes a list of
:class:`~repro.scenarios.spec.ScenarioSpec` cells — typically from
``ScenarioSpec.grid`` — and shards them across a ``multiprocessing`` worker
pool.  Each worker resolves its own
:class:`~repro.experiments.context.ExperimentContext` (inherited from the
prewarmed parent under ``fork``, or warm-started from the shared
:class:`~repro.utils.artifact_cache.ArtifactCache` under ``spawn``), runs
:func:`repro.scenarios.run_scenario`, and ships the pickled
:class:`~repro.scenarios.runner.ScenarioReport` back.

Determinism contract
--------------------
Results are merged in **spec order**, not completion order, and every
scenario's payload is a deterministic function of (spec, scale, seed,
dtype): under float64 a parallel grid is byte-identical to a serial one
(``report.to_json(include_timing=False)``; wall-times are the only
non-deterministic field).  The shuffled-shard regression tests pin this.

Reliability
-----------
``retries``/``shard_timeout_s`` supervise individual cells: a failed cell
is re-run with exponential backoff + deterministic jitter (the jitter
stream is keyed on the cell index, so concurrent retriers spread out
reproducibly), and a cell that exceeds the per-shard timeout is re-
dispatched — the hung attempt's eventual result is discarded, since a pool
worker cannot be killed mid-task.  Because a retried cell recomputes the
same deterministic payload, retries never break the byte-identical
contract.  A :class:`~repro.reliability.faults.FaultPlan` can arm the
``grid.cell`` site (context: ``cell``, ``attempt``) to exercise these
paths deterministically.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.config import ScaleProfile, get_profile
from repro.exceptions import ParallelError
from repro.experiments.context import ExperimentContext
from repro.obs.instrument import Instrumentation
from repro.obs.instrument import current as current_instrumentation
from repro.parallel.pool import (
    RemoteFailure,
    resolve_start_method,
    resolve_workers,
)
from repro.reliability import (
    FaultPlan,
    ReliabilityReport,
    RetryPolicy,
    maybe_fire,
)
from repro.scenarios.spec import ScenarioSpec
from repro.utils.artifact_cache import ArtifactCache

__all__ = ["GridExecutor", "GridResult", "run_spec_reports"]

#: Live objects the parent stages for ``fork`` workers to inherit: either a
#: single shared context (``"context"``) or a per-(scale, seed, dtype) map
#: (``"contexts"``).  Only ever populated for the duration of one
#: :meth:`GridExecutor.run` call.
_FORK_STATE: Dict[str, object] = {}

#: Per-worker-process state, set once by :func:`_init_worker`.
_WORKER: Dict[str, object] = {}


def _context_key(spec: ScenarioSpec) -> Tuple[Optional[str], int, Optional[str]]:
    """The (scale, seed, dtype) triple that pins a spec's execution context."""
    return (spec.scale, spec.seed, spec.dtype)


def _build_context(spec: ScenarioSpec,
                   cache: Optional[ArtifactCache]) -> ExperimentContext:
    """A fresh context for ``spec`` (mirrors ``run_scenario``'s own default)."""
    scale = get_profile(spec.scale) if spec.scale is not None else None
    return ExperimentContext(scale=scale, seed=spec.seed, cache=cache,
                             dtype=spec.dtype)


def _warm_context(context: ExperimentContext,
                  specs: Sequence[ScenarioSpec]) -> None:
    """Build the artifacts ``specs`` will need, in the current process.

    Under ``fork`` this runs in the parent so every worker inherits the
    trained models for free; under ``spawn`` it populates the artifact cache
    the workers warm-start from.
    """
    _ = context.corpus
    _ = context.target_model
    if any(spec.model == "substitute" for spec in specs):
        _ = context.substitute_model
    if any(spec.model == "binary_substitute" for spec in specs):
        _ = context.binary_substitute


def _init_worker(payload: Mapping[str, object]) -> None:
    """Pool initializer: stage per-process context resolution state."""
    _WORKER.clear()
    _WORKER["cache_root"] = payload.get("cache_root")
    _WORKER["shared"] = payload.get("shared")
    _WORKER["contexts"] = {}
    plan_payload = payload.get("fault_plan")
    _WORKER["injector"] = (FaultPlan.from_dict(plan_payload).injector()
                           if plan_payload else None)
    # Fork children see the parent's staged live objects; spawn children get
    # an empty mapping and fall back to cache-backed rebuilds.
    if _FORK_STATE.get("context") is not None:
        _WORKER["shared_context"] = _FORK_STATE["context"]
    if _FORK_STATE.get("contexts"):
        _WORKER["contexts"] = dict(_FORK_STATE["contexts"])


def _worker_cache() -> Optional[ArtifactCache]:
    root = _WORKER.get("cache_root")
    return ArtifactCache(root) if root else None


def _worker_context(spec: ScenarioSpec) -> ExperimentContext:
    """Resolve the context one grid cell runs under, inside the worker."""
    shared_context = _WORKER.get("shared_context")
    if shared_context is not None:
        return shared_context
    shared = _WORKER.get("shared")
    if shared is not None:
        # An explicit context governed the run but could not be inherited
        # (spawn): rebuild its equivalent once per worker process.
        if "rebuilt_shared" not in _WORKER:
            _WORKER["rebuilt_shared"] = ExperimentContext(
                scale=ScaleProfile(**shared["scale_fields"]),
                seed=shared["seed"], cache=_worker_cache(),
                dtype=shared["dtype"])
        return _WORKER["rebuilt_shared"]
    contexts: Dict[Tuple, ExperimentContext] = _WORKER["contexts"]
    key = _context_key(spec)
    if key not in contexts:
        contexts[key] = _build_context(spec, _worker_cache())
    return contexts[key]


def _run_cell(task: Tuple[int, ScenarioSpec, int]):
    """Run one grid cell in the worker; failures travel back as data.

    ``task`` carries the retry attempt number so an armed ``grid.cell``
    fault spec can target a specific attempt (``where={"cell": 2,
    "attempt": 0}``) — hit counters are per-process, so the attempt number
    is the only trigger that stays deterministic across pool workers.
    """
    from repro.scenarios.runner import run_scenario

    index, spec, attempt = task
    try:
        maybe_fire(_WORKER.get("injector"), "grid.cell",
                   cell=index, attempt=attempt)
        return index, run_scenario(spec, context=_worker_context(spec))
    except BaseException as error:  # noqa: BLE001 - shipped to the parent
        return index, RemoteFailure.capture(
            where=f"cell {index} ({spec.label or spec.describe()}, "
                  f"attempt {attempt})", error=error)


@dataclass
class GridResult:
    """A completed grid: reports in spec order plus execution metadata."""

    reports: List = field(default_factory=list)
    elapsed_s: float = 0.0
    n_workers: int = 1
    start_method: Optional[str] = None  #: None means serial in-process
    reliability: ReliabilityReport = field(default_factory=ReliabilityReport)

    def __len__(self) -> int:
        return len(self.reports)

    def __iter__(self):
        return iter(self.reports)

    def __getitem__(self, index: int):
        return self.reports[index]

    def summaries(self, include_timing: bool = True) -> List[Dict[str, object]]:
        """Flat per-cell summaries (spec order)."""
        return [report.summary(include_timing=include_timing)
                for report in self.reports]

    def to_dict(self, include_timing: bool = True) -> Dict[str, object]:
        """JSON-able result: execution metadata + every cell's report."""
        payload: Dict[str, object] = {
            "n_cells": len(self.reports),
            "n_workers": self.n_workers,
            "start_method": self.start_method,
            "reliability": self.reliability.as_dict(),
            "reports": [report.to_dict(include_timing=include_timing)
                        for report in self.reports],
        }
        if include_timing:
            payload["elapsed_s"] = round(self.elapsed_s, 6)
        return payload

    def to_json(self, indent: Optional[int] = 2,
                include_timing: bool = True) -> str:
        """The grid result as a JSON document."""
        import json

        return json.dumps(self.to_dict(include_timing=include_timing),
                          indent=indent, sort_keys=True)

    def render(self) -> str:
        """Human-readable per-cell table (what ``repro run-grid`` prints)."""
        from repro.evaluation.reports import format_table

        rows = []
        for report in self.reports:
            summary = report.summary()
            headline = ""
            for key in ("detection_rate[target]",
                        f"detection_rate[{report.spec.model}]",
                        "evasion_rate"):
                if key in summary:
                    headline = f"{key}={summary[key]:.3f}"
                    break
            rows.append([report.spec.label or report.spec.describe(),
                         report.attack_name, report.defense_name, headline,
                         f"{report.elapsed_s:.3f}"])
        mode = (f"{self.n_workers} workers ({self.start_method})"
                if self.start_method else "serial")
        return format_table(
            ["scenario", "attack", "defense", "headline", "seconds"], rows,
            title=f"grid — {len(self.reports)} cells, {mode}, "
                  f"{self.elapsed_s:.2f}s wall")


def run_spec_reports(spec_map: Mapping[str, Union[ScenarioSpec, Mapping]],
                     context: Optional[ExperimentContext] = None,
                     workers: Optional[int] = None) -> Dict[str, object]:
    """Run a ``{name: spec}`` mapping, pooled when ``workers`` > 1.

    The one dispatch the figure3/figure4/table6 drivers share: returns
    ``{name: ScenarioReport}`` with serial (`workers` ``None``/1) and pooled
    execution producing byte-identical payloads under float64, so a
    driver's rendering is independent of the worker count.
    """
    executor = GridExecutor(n_workers=workers if workers else 1)
    result = executor.run(list(spec_map.values()), context=context)
    return dict(zip(spec_map, result.reports))


class GridExecutor:
    """Shard a list of scenario specs across a process pool.

    Parameters
    ----------
    n_workers:
        Worker processes (``None``/``0`` = one per CPU).  ``1`` runs the grid
        serially in-process — the baseline the parallel path must match
        byte-for-byte.
    cache:
        Optional :class:`~repro.utils.artifact_cache.ArtifactCache` (or cache
        root path) workers warm-start their contexts from.  Strongly
        recommended under ``spawn``; under ``fork`` the prewarmed parent
        state is inherited directly and the cache is a bonus.
    start_method:
        ``multiprocessing`` start method (default: ``fork`` where available,
        overridable with ``REPRO_PARALLEL_START_METHOD``).
    prewarm:
        Build the corpus/models each spec needs once in the parent before
        forking (or, under ``spawn``, into the cache) so workers never
        duplicate training.  Disable only to measure cold-worker behaviour.
    retries:
        Extra attempts a failed cell gets before its failure is final
        (``0``, the default, preserves fail-fast semantics).
    shard_timeout_s:
        Per-cell wall-clock budget in the pooled path; an attempt past the
        budget is abandoned and re-dispatched (counted as a timeout).
        ``None`` disables the watchdog.
    retry_policy:
        Backoff schedule for retries; defaults to
        ``RetryPolicy(max_retries=retries)``.  When given, its
        ``max_retries`` wins over ``retries``.
    fault_plan:
        Optional :class:`~repro.reliability.faults.FaultPlan` arming the
        ``grid.cell`` site in every worker (and in the serial path).
    instrumentation:
        Optional :class:`~repro.obs.Instrumentation`.  When unset the
        executor falls back to the ambient one (:func:`repro.obs.current`),
        so ``with instrumented(obs): executor.run(...)`` observes the grid
        without touching call sites.  The serial path wraps every cell in
        a ``grid.cell`` span; both paths count ``grid.cells``,
        ``grid.cell_retries`` and ``grid.cell_timeouts`` at the
        supervisor, so the counters cover pooled runs too.
    """

    def __init__(self, n_workers: Optional[int] = None,
                 cache: Optional[Union[ArtifactCache, str, Path]] = None,
                 start_method: Optional[str] = None,
                 prewarm: bool = True,
                 retries: int = 0,
                 shard_timeout_s: Optional[float] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 instrumentation: Optional[Instrumentation] = None) -> None:
        self.n_workers = resolve_workers(n_workers)
        if cache is not None and not isinstance(cache, ArtifactCache):
            cache = ArtifactCache(cache)
        self.cache = cache
        self.start_method = resolve_start_method(start_method)
        self.prewarm = prewarm
        if retries < 0:
            raise ParallelError(f"retries must be >= 0, got {retries}")
        if shard_timeout_s is not None and shard_timeout_s <= 0:
            raise ParallelError(
                f"shard_timeout_s must be > 0, got {shard_timeout_s}")
        self.retry_policy = (retry_policy if retry_policy is not None
                             else RetryPolicy(max_retries=retries))
        self.shard_timeout_s = shard_timeout_s
        self.fault_plan = fault_plan
        self.instrumentation = instrumentation

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self, specs: Sequence[Union[ScenarioSpec, Mapping]],
            context: Optional[ExperimentContext] = None) -> GridResult:
        """Run every spec and return reports merged in spec order.

        ``context`` (optional) governs **all** cells — mirroring
        ``run_scenario``'s semantics — and is inherited by fork workers
        as-is; without it each cell resolves a context from its own
        (scale, seed, dtype) triple, shared per triple within a process.
        """
        specs = [spec if isinstance(spec, ScenarioSpec)
                 else ScenarioSpec.from_dict(spec) for spec in specs]
        if not specs:
            return GridResult(reports=[], elapsed_s=0.0, n_workers=self.n_workers,
                              start_method=None)
        n_workers = min(self.n_workers, len(specs))
        started = time.perf_counter()
        reliability = ReliabilityReport()
        obs = (self.instrumentation if self.instrumentation is not None
               else current_instrumentation())
        if n_workers == 1:
            reports = self._run_serial(specs, context, reliability, obs)
            return GridResult(reports=reports,
                              elapsed_s=time.perf_counter() - started,
                              n_workers=1, start_method=None,
                              reliability=reliability)
        reports = self._run_pool(specs, context, n_workers, reliability, obs)
        return GridResult(reports=reports,
                          elapsed_s=time.perf_counter() - started,
                          n_workers=n_workers, start_method=self.start_method,
                          reliability=reliability)

    # ------------------------------------------------------------------ #
    # Serial baseline
    # ------------------------------------------------------------------ #
    def _run_serial(self, specs: Sequence[ScenarioSpec],
                    context: Optional[ExperimentContext],
                    reliability: ReliabilityReport,
                    obs: Optional[Instrumentation]) -> List:
        from repro.scenarios.runner import run_scenario

        injector = (self.fault_plan.injector()
                    if self.fault_plan is not None else None)
        contexts: Dict[Tuple, ExperimentContext] = {}
        reports = []
        for cell_index, spec in enumerate(specs):
            if context is not None:
                cell_context = context
            else:
                key = _context_key(spec)
                if key not in contexts:
                    contexts[key] = _build_context(spec, self.cache)
                cell_context = contexts[key]
            attempt = 0
            while True:
                try:
                    maybe_fire(injector, "grid.cell",
                               cell=cell_index, attempt=attempt)
                    if obs is None:
                        reports.append(run_scenario(spec, context=cell_context))
                    else:
                        with obs.span("grid.cell", cell=cell_index,
                                      attempt=attempt):
                            reports.append(
                                run_scenario(spec, context=cell_context))
                        obs.count("grid.cells")
                    break
                except Exception:
                    if attempt >= self.retry_policy.max_retries:
                        raise
                    reliability.cell_retries += 1
                    if obs is not None:
                        obs.count("grid.cell_retries", cell=cell_index)
                    time.sleep(self.retry_policy.delay(attempt,
                                                       token=cell_index))
                    attempt += 1
        if injector is not None:
            reliability.record_faults(injector.fired)
        return reports

    # ------------------------------------------------------------------ #
    # Process pool
    # ------------------------------------------------------------------ #
    def _cache_root(self, context: Optional[ExperimentContext]) -> Optional[str]:
        if context is not None and context.cache is not None:
            return str(context.cache.root)
        return str(self.cache.root) if self.cache is not None else None

    def _run_pool(self, specs: Sequence[ScenarioSpec],
                  context: Optional[ExperimentContext], n_workers: int,
                  reliability: ReliabilityReport,
                  obs: Optional[Instrumentation] = None) -> List:
        import multiprocessing

        mp_context = multiprocessing.get_context(self.start_method)
        payload: Dict[str, object] = {"cache_root": self._cache_root(context)}
        if self.fault_plan is not None:
            payload["fault_plan"] = self.fault_plan.to_dict()
        try:
            if context is not None:
                if self.prewarm:
                    _warm_context(context, specs)
                if self.start_method == "fork":
                    _FORK_STATE["context"] = context
                else:
                    payload["shared"] = {
                        "scale_fields": asdict(context.scale),
                        "seed": context.seed,
                        "dtype": (str(context.dtype)
                                  if context.dtype is not None else None),
                    }
            elif self.prewarm and (self.start_method == "fork"
                                   or self.cache is not None):
                contexts: Dict[Tuple, ExperimentContext] = {}
                for spec in specs:
                    key = _context_key(spec)
                    if key not in contexts:
                        contexts[key] = _build_context(spec, self.cache)
                for key, parent_context in contexts.items():
                    _warm_context(parent_context,
                                  [s for s in specs if _context_key(s) == key])
                if self.start_method == "fork":
                    _FORK_STATE["contexts"] = contexts

            collected: Dict[int, object] = {}
            with mp_context.Pool(processes=n_workers, initializer=_init_worker,
                                 initargs=(payload,)) as pool:
                self._supervise(pool, specs, collected, reliability, obs)
        finally:
            _FORK_STATE.clear()

        if len(collected) != len(specs):  # pragma: no cover - defensive
            missing = sorted(set(range(len(specs))) - set(collected))
            raise ParallelError(
                f"pool returned {len(collected)}/{len(specs)} cells; "
                f"missing indices {missing}")
        return [collected[index] for index in range(len(specs))]

    def _supervise(self, pool, specs: Sequence[ScenarioSpec],
                   collected: Dict[int, object],
                   reliability: ReliabilityReport,
                   obs: Optional[Instrumentation] = None) -> None:
        """Dispatch every cell via ``apply_async`` and supervise attempts.

        A failed attempt is rescheduled after the policy's backoff; an
        attempt past ``shard_timeout_s`` is abandoned (a pool worker cannot
        be killed mid-task, so the stale attempt's eventual result is
        simply dropped) and rescheduled the same way.  The first cell to
        exhaust its attempts raises.
        """
        max_retries = self.retry_policy.max_retries
        inflight: Dict[int, object] = {}       # cell -> live AsyncResult
        deadlines: Dict[int, float] = {}       # cell -> abandon-at time
        attempts: Dict[int, int] = {}          # cell -> current attempt
        backoff: Dict[int, float] = {}         # cell -> retry-due time

        def dispatch(cell: int, attempt: int) -> None:
            attempts[cell] = attempt
            inflight[cell] = pool.apply_async(
                _run_cell, ((cell, specs[cell], attempt),))
            if self.shard_timeout_s is not None:
                deadlines[cell] = time.monotonic() + self.shard_timeout_s

        def reschedule(cell: int, failure: Optional[RemoteFailure]) -> None:
            attempt = attempts[cell]
            if attempt >= max_retries:
                if failure is not None:
                    failure.raise_()
                raise ParallelError(
                    f"cell {cell} ({specs[cell].label or specs[cell].describe()}) "
                    f"timed out after {attempt + 1} attempts of "
                    f"{self.shard_timeout_s}s each")
            if failure is not None:
                reliability.cell_retries += 1
                if obs is not None:
                    obs.count("grid.cell_retries", cell=cell)
            backoff[cell] = time.monotonic() + self.retry_policy.delay(
                attempt, token=cell)

        for cell in range(len(specs)):
            dispatch(cell, 0)
        while inflight or backoff:
            now = time.monotonic()
            for cell in [cell for cell, due in backoff.items() if due <= now]:
                del backoff[cell]
                dispatch(cell, attempts[cell] + 1)
            progressed = False
            for cell, async_result in list(inflight.items()):
                if async_result.ready():
                    del inflight[cell]
                    deadlines.pop(cell, None)
                    _, outcome = async_result.get()
                    if isinstance(outcome, RemoteFailure):
                        reschedule(cell, outcome)
                    else:
                        collected[cell] = outcome
                        progressed = True
                        if obs is not None:
                            obs.count("grid.cells")
                elif cell in deadlines and now > deadlines[cell]:
                    del inflight[cell]
                    del deadlines[cell]
                    reliability.cell_timeouts += 1
                    if obs is not None:
                        obs.count("grid.cell_timeouts", cell=cell)
                    reschedule(cell, None)
            if not progressed and (inflight or backoff):
                time.sleep(0.005)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"GridExecutor(n_workers={self.n_workers}, "
                f"start_method={self.start_method!r}, "
                f"cache={None if self.cache is None else str(self.cache.root)!r})")
