"""repro.parallel — process-pool execution for grids and serving.

The paper's core artifact is a grid of attacks x defenses; this package is
the layer that runs it (and the scoring service) as fast as the hardware
allows:

* :mod:`repro.parallel.grid` — :class:`GridExecutor` shards a list of
  :class:`~repro.scenarios.ScenarioSpec` cells across a ``multiprocessing``
  pool; workers warm-start their
  :class:`~repro.experiments.context.ExperimentContext` (fork inheritance
  or artifact-cache reload) and reports merge **in spec order**, so a
  parallel grid is byte-identical to a serial one under float64;
* :mod:`repro.parallel.fleet` — :class:`WorkerFleet` replicates the
  :class:`~repro.serving.service.ScoringService` across N worker processes
  behind one dispatch queue, each replica micro-batching independently,
  with one aggregated :class:`~repro.serving.stats.ThroughputReport`;
* :mod:`repro.parallel.pool` — shared plumbing: worker-count/start-method
  resolution, deterministic round-robin sharding, remote-failure transport.

Quickstart::

    from repro.parallel import GridExecutor
    from repro.scenarios import ScenarioSpec

    specs = ScenarioSpec.grid(attacks=["jsma", "random_addition"],
                              defenses=["none", "feature_squeezing"],
                              model="substitute", scale="small")
    result = GridExecutor(n_workers=4, cache=".repro-cache").run(specs)
    for report in result:
        print(report.render())
"""

from repro.parallel.fleet import FleetReport, WorkerFleet
from repro.parallel.grid import GridExecutor, GridResult, run_spec_reports
from repro.parallel.pool import (
    available_cpus,
    resolve_start_method,
    resolve_workers,
    shard_indices,
)

__all__ = [
    "GridExecutor",
    "GridResult",
    "WorkerFleet",
    "FleetReport",
    "run_spec_reports",
    "available_cpus",
    "resolve_start_method",
    "resolve_workers",
    "shard_indices",
]
