"""Multi-process replicated serving: N scoring workers behind one queue.

:class:`WorkerFleet` replicates the single-process
:class:`~repro.serving.service.ScoringService` across N worker processes.
A shared task queue dispatches requests to whichever worker is free (dynamic
load balancing); each worker runs its *own*
:class:`~repro.serving.batcher.MicroBatcher`, so fused-batch scoring and the
``max_delay_ms`` latency SLO hold per replica, and reports its
:class:`~repro.serving.stats.LatencyTracker` observations back for one
aggregated :class:`~repro.serving.stats.ThroughputReport`.

The bundle every replica serves is built **once** in the dispatcher process
(cold build or cache warm start) before the workers launch: under ``fork``
the workers inherit the live servable/detector, under ``spawn`` they reload
it from the shared artifact cache.  Because every replica serves the same
versioned bundle, verdict *contents* (probability, label, model version) are
identical to a single service's — only latency observations differ — and
results are merged in submission order, so a fleet replay is deterministic
apart from timing.

Supervision
-----------
The dispatcher runs a claim/ack protocol: a replica announces
``("claim", id, seq)`` the moment it pulls a request off the dispatch queue
and the dispatcher clears the claim when that request's verdict arrives.
When a replica dies — detected through its dying-gasp ``("crashed", ...)``
message or a liveness poll — every claimed-but-unanswered request is
re-enqueued exactly once (verdict dedup guards the race), and a replacement
replica is launched while the restart budget lasts.  Every recovery event is
counted in the :class:`~repro.reliability.report.ReliabilityReport` carried
by the :class:`FleetReport`, and a :class:`~repro.reliability.faults.FaultPlan`
can be armed to inject crashes, flush failures, latency spikes and
malformed payloads at the ``fleet.dispatch`` / ``service.flush`` sites.
"""

from __future__ import annotations

import os
import queue as queue_module
import time
from contextlib import nullcontext
from dataclasses import asdict as dataclass_asdict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.config import ScaleProfile, get_profile
from repro.exceptions import ParallelError
from repro.experiments.context import ExperimentContext
from repro.obs import Instrumentation, ListSink, instrumented
from repro.obs.slo import SLOMonitor, SLOSpec
from repro.obs.spans import TraceStamper
from repro.parallel.pool import (
    RemoteFailure,
    resolve_start_method,
    resolve_workers,
)
from repro.reliability import (
    FaultInjector,
    FaultPlan,
    ReliabilityReport,
    RetryPolicy,
    WorkerCrash,
    maybe_fire,
)
from repro.serving.stats import LatencyTracker, ThroughputReport
from repro.utils.artifact_cache import ArtifactCache

__all__ = ["WorkerFleet", "FleetReport"]

#: Live objects staged for ``fork`` workers: the parent-built servable and
#: detector.  Populated only while worker processes are being launched.
_FLEET_FORK_STATE: Dict[str, object] = {}

#: How often the dispatcher wakes from the result queue to poll liveness.
_LIVENESS_POLL_S = 0.25

#: Per-worker cap on buffered ObsEvents shipped back with the stats message
#: (oldest dropped first; the drop count travels in the snapshot).
_WORKER_OBS_EVENT_CAP = 4096


def _build_service(config: Mapping[str, object],
                   injector: Optional[FaultInjector] = None,
                   instrumentation: Optional[Instrumentation] = None):
    """Build one worker's ScoringService (inheriting fork state if present)."""
    from repro.serving.registry import ModelRegistry
    from repro.serving.service import ScoringService

    servable = _FLEET_FORK_STATE.get("servable")
    detector = _FLEET_FORK_STATE.get("detector")
    if servable is None:
        cache = (ArtifactCache(config["cache_root"])
                 if config.get("cache_root") else None)
        context = ExperimentContext(
            scale=ScaleProfile(**config["scale_fields"]),
            seed=config["seed"], cache=cache, dtype=config["dtype"])
        registry = ModelRegistry(cache=cache)
        servable = registry.get(config["model"], context=context)
        detector = _build_detector(config, context, servable)
    retry_payload = config.get("retry_policy")
    slo_payload = config.get("slo")
    slo = (SLOMonitor([SLOSpec.from_dict(spec) for spec in slo_payload],
                      instrumentation=instrumentation)
           if slo_payload else None)
    return ScoringService(
        servable, detector=detector, threshold=config["threshold"],
        max_batch_size=config["max_batch_size"],
        max_delay_ms=config["max_delay_ms"],
        retry_policy=(RetryPolicy.from_dict(retry_payload)
                      if retry_payload is not None else None),
        # A poison request must cost one error verdict, not one replica.
        isolate_poison=True,
        injector=injector,
        instrumentation=instrumentation,
        slo=slo)


def _build_detector(config: Mapping[str, object], context: ExperimentContext,
                    servable):
    from repro.scenarios.registry import DEFENSES, build_defense, ensure_registries

    ensure_registries()
    if DEFENSES.get(config["defense"]).entry_id == "none":
        return None
    return build_defense(config["defense"], context,
                         config.get("defense_params") or {},
                         model=servable.model)


def _crash_payload(payload) -> Tuple[object, Optional[Dict[str, object]]]:
    """Split a dying-gasp payload into (reliability dict, obs snapshot).

    Accepts both the current ``{"reliability": ..., "obs": ...}`` form and
    the bare reliability dict older workers shipped.
    """
    if isinstance(payload, Mapping) and "reliability" in payload:
        return payload.get("reliability"), payload.get("obs")
    return payload, None


def _fleet_worker(worker_id: int, config: Dict[str, object],
                  task_queue, result_queue) -> None:
    """One replica: pull requests, micro-batch them, ship verdicts back.

    Protocol on ``result_queue``: ``("ready", id, None)`` after startup,
    ``("claim", id, seq)`` the moment a request is pulled off the dispatch
    queue, ``("verdicts", id, [(seq, Verdict), ...])`` per flush,
    ``("stats", id, {...})`` after the stop sentinel, ``("crashed", id,
    reliability_dict)`` as the dying gasp of an injected crash, and
    ``("failed", id, RemoteFailure)`` on any other error.  Verdicts carry
    the dispatcher-assigned sequence numbers so the merge is
    submission-ordered regardless of which replica scored what.
    """
    from dataclasses import replace as dataclass_replace

    plan_payload = config.get("fault_plan")
    injector = (FaultPlan.from_dict(plan_payload).injector(
        scope={"worker": worker_id}) if plan_payload else None)
    # When the dispatcher observes, every replica runs its own collector
    # and ships the merged snapshot (metrics + bounded event buffer) home
    # inside the existing stats message — no extra queue, no extra pickle
    # per verdict.  The span-id namespace is ``worker_id + 1`` (restarts
    # get a fresh worker id), so replica spans never collide with the
    # dispatcher's (namespace 0) or another replica's in a stitched trace.
    obs = (Instrumentation(sink=ListSink(max_events=_WORKER_OBS_EVENT_CAP),
                           tags={"worker": worker_id},
                           namespace=worker_id + 1)
           if config.get("observe") else None)
    service = None
    try:
        # Ambient scope covers the bundle build too, so warm-start cache
        # hits/misses of spawn workers land in the worker's counters.
        with instrumented(obs) if obs is not None else nullcontext():
            service = _build_service(config, injector=injector,
                                     instrumentation=obs)
    except BaseException as error:  # noqa: BLE001 - shipped to the dispatcher
        result_queue.put(("failed", worker_id,
                          RemoteFailure.capture(f"worker {worker_id} startup",
                                                error)))
        return
    result_queue.put(("ready", worker_id, None))
    pending: Dict[str, int] = {}

    def emit(verdicts) -> None:
        # Shed verdicts can overtake queued requests, so sequence numbers
        # are paired by request id (unique per stream) rather than FIFO.
        if verdicts:
            result_queue.put(("verdicts", worker_id,
                              [(pending.pop(verdict.request_id), verdict)
                               for verdict in verdicts]))

    try:
        while True:
            deadline = service.deadline
            timeout = (None if deadline is None
                       else max(0.0, deadline - time.perf_counter()))
            try:
                item = task_queue.get(timeout=timeout)
            except queue_module.Empty:
                emit(service.poll())
                continue
            if item is None:
                break
            seq, request, enqueued_at = item
            # Claim before any work: if this replica dies mid-request the
            # dispatcher knows exactly which sequence numbers to re-enqueue.
            result_queue.put(("claim", worker_id, seq))
            fired = maybe_fire(injector, "fleet.dispatch",
                               seq=seq, request_id=request.request_id)
            if fired is not None and fired.action == "malformed":
                # Corrupt the payload only: the trace context (and id) must
                # survive so the poison request's error span joins its tree.
                request = dataclass_replace(
                    request, payload=np.full(service.n_features, np.nan))
            pending[request.request_id] = seq
            emit(service.submit(request, enqueued_at=enqueued_at))
        emit(service.drain())
        reliability = service.reliability
        if injector is not None:
            reliability.record_faults(injector.fired)
        result_queue.put(("stats", worker_id, {
            "n_requests": service.tracker.count,
            "n_batches": service.n_batches,
            "latencies_ms": service.tracker.latencies_ms,
            "reliability": reliability.as_dict(),
            "obs": obs.snapshot() if obs is not None else None,
        }))
    except WorkerCrash:
        # Dying gasp: flush the claims/verdicts already queued (plus this
        # crash's accounting) through the feeder thread, then die hard —
        # the dispatcher must never see a half-written message.  The obs
        # snapshot rides along so spans recorded before the crash (error-
        # tagged flushes included) survive into the dispatcher's stream.
        reliability = service.reliability
        if injector is not None:
            reliability.record_faults(injector.fired)
        try:
            result_queue.put(("crashed", worker_id, {
                "reliability": reliability.as_dict(),
                "obs": obs.snapshot() if obs is not None else None,
            }))
            result_queue.close()
            result_queue.join_thread()
        finally:
            os._exit(1)
    except BaseException as error:  # noqa: BLE001 - shipped to the dispatcher
        result_queue.put(("failed", worker_id,
                          RemoteFailure.capture(f"worker {worker_id}", error)))


@dataclass
class FleetReport:
    """Aggregated statistics of one fleet replay."""

    n_workers: int
    start_method: str
    throughput: ThroughputReport
    per_worker: List[Dict[str, object]] = field(default_factory=list)
    reliability: ReliabilityReport = field(default_factory=ReliabilityReport)
    #: Fleet-wide instrumentation snapshot (dispatcher counters folded with
    #: every replica's forwarded snapshot); ``None`` when not observing.
    obs: Optional[Dict[str, object]] = None

    def as_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation."""
        payload = {
            "n_workers": self.n_workers,
            "start_method": self.start_method,
            "throughput": self.throughput.as_dict(),
            "per_worker": [dict(worker) for worker in self.per_worker],
            "reliability": self.reliability.as_dict(),
        }
        if self.obs is not None:
            payload["obs"] = self.obs
        return payload

    def render(self) -> str:
        """Multi-line human-readable summary (what ``serve --workers`` prints)."""
        lines = [f"fleet: {self.n_workers} workers ({self.start_method}) — "
                 + self.throughput.render()]
        for worker in self.per_worker:
            lines.append(
                f"  worker {worker['worker_id']}: {worker['n_requests']} requests "
                f"in {worker['n_batches']} fused batches "
                f"(mean {worker['mean_ms']:.3f}ms)")
        if not self.reliability.empty():
            lines.append(self.reliability.render())
        return "\n".join(lines)


class WorkerFleet:
    """N replicated scoring workers behind a queue-based dispatcher.

    Parameters
    ----------
    n_workers:
        Replica count (``None``/``0`` = one per CPU).
    model / defense / defense_params / threshold:
        What each replica serves — a registered bundle name plus an optional
        DefenseRegistry endpoint, exactly like the single-service ``serve``
        path.
    scale / seed / dtype / cache:
        Context configuration for the bundle build (ignored when ``context``
        is supplied).  Attach a cache so ``spawn`` workers can warm-start.
    context:
        Optional prebuilt :class:`~repro.experiments.context.ExperimentContext`
        to build the bundle from (the CLI passes its own so the load
        generator and the fleet share artifacts).
    max_batch_size / max_delay_ms:
        Per-replica micro-batching knobs.
    timeout_s:
        Dispatcher-side guard: how long the fleet may make *no progress*
        before it is declared wedged.
    restart_budget:
        How many dead replicas one :meth:`score_stream` call may replace
        before giving up on restarts (in-flight requests of a dead replica
        are re-dispatched to the survivors regardless).
    fault_plan:
        Optional :class:`~repro.reliability.faults.FaultPlan` armed inside
        every replica (sites ``fleet.dispatch`` and ``service.flush``).
    retry_policy:
        Optional :class:`~repro.reliability.retry.RetryPolicy` each replica
        applies to failing micro-batch flushes.
    instrumentation:
        Optional :class:`~repro.obs.Instrumentation` held by the
        dispatcher.  When set, every replica runs its own collector, ships
        its snapshot back with the stats message, and
        :meth:`score_stream` folds them (plus the dispatcher's own
        ``fleet.dispatches`` / ``fleet.redispatches`` / ``fleet.restarts``
        counters) into this object; the merged snapshot is surfaced on
        :attr:`FleetReport.obs`.  Every dispatched request is additionally
        *traced*: the dispatcher stamps a
        :class:`~repro.obs.trace.TraceContext` on (root span per request),
        replicas record the per-hop child spans against it, and the merged
        event stream reconstructs into one span tree per request via
        :class:`~repro.obs.spans.SpanCollector`.  ``None`` (the default)
        disables observation fleet-wide.
    trace_sample_every:
        Head-based trace sampling: stamp a trace on the first request and
        every ``trace_sample_every``-th after it, passing the rest through
        untraced (see :class:`~repro.obs.spans.TraceStamper`).  ``1`` (the
        default) traces every request — right for chaos soaks and
        debugging; raise it in throughput-critical serving so per-request
        span recording and event transport stay inside the overhead
        budget while every trace that *is* taken remains a complete tree.
    slo_specs:
        Optional :class:`~repro.obs.slo.SLOSpec` objectives armed inside
        every replica: each worker's service runs its own
        :class:`~repro.obs.slo.SLOMonitor` fed by its verdicts, emits
        alert events (merged home like all worker events) and — for
        ``on_breach="shed"/"fallback"`` specs — degrades independently
        while its local windows burn.
    """

    def __init__(self, n_workers: Optional[int] = None, model: str = "target",
                 defense: str = "none",
                 defense_params: Optional[Mapping[str, object]] = None,
                 threshold: float = 0.5,
                 scale: Optional[Union[str, ScaleProfile]] = None, seed: int = 0,
                 dtype: Optional[str] = None,
                 cache: Optional[Union[ArtifactCache, str, Path]] = None,
                 context: Optional[ExperimentContext] = None,
                 max_batch_size: int = 32, max_delay_ms: float = 2.0,
                 start_method: Optional[str] = None,
                 timeout_s: float = 300.0,
                 restart_budget: int = 2,
                 fault_plan: Optional[FaultPlan] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 instrumentation: Optional[Instrumentation] = None,
                 trace_sample_every: int = 1,
                 slo_specs: Optional[Sequence[SLOSpec]] = None) -> None:
        self.n_workers = resolve_workers(n_workers)
        self.model = model
        self.defense = defense
        self.defense_params = dict(defense_params or {})
        self.threshold = float(threshold)
        if cache is not None and not isinstance(cache, ArtifactCache):
            cache = ArtifactCache(cache)
        self.cache = cache if context is None or context.cache is None \
            else context.cache
        self._scale = scale
        self._seed = int(seed)
        self._dtype = dtype
        self._context = context
        self.max_batch_size = int(max_batch_size)
        self.max_delay_ms = float(max_delay_ms)
        self.start_method = resolve_start_method(start_method)
        self.timeout_s = float(timeout_s)
        if restart_budget < 0:
            raise ParallelError(
                f"restart_budget must be >= 0, got {restart_budget}")
        self.restart_budget = int(restart_budget)
        self.fault_plan = fault_plan
        self.retry_policy = retry_policy
        self.instrumentation = instrumentation
        if trace_sample_every < 1:
            raise ParallelError(
                f"trace_sample_every must be >= 1, got {trace_sample_every}")
        self.trace_sample_every = int(trace_sample_every)
        self.slo_specs = tuple(slo_specs or ())
        self.servable = None
        self._detector = None
        self._mp_context = None
        self._worker_config: Optional[Dict[str, object]] = None
        self._next_worker_id = 0
        self._processes: Dict[int, object] = {}
        self._task_queue = None
        self._result_queue = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def _dispatch_context(self) -> ExperimentContext:
        if self._context is None:
            scale = (get_profile(self._scale) if isinstance(self._scale, str)
                     else self._scale)
            self._context = ExperimentContext(scale=scale, seed=self._seed,
                                              cache=self.cache, dtype=self._dtype)
        return self._context

    def _config(self, context: ExperimentContext) -> Dict[str, object]:
        return {
            "scale_fields": dataclass_asdict(context.scale),
            "seed": context.seed,
            "dtype": str(context.dtype) if context.dtype is not None else None,
            "cache_root": str(self.cache.root) if self.cache is not None else None,
            "model": self.model,
            "defense": self.defense,
            "defense_params": self.defense_params,
            "threshold": self.threshold,
            "max_batch_size": self.max_batch_size,
            "max_delay_ms": self.max_delay_ms,
            "fault_plan": (self.fault_plan.to_dict()
                           if self.fault_plan is not None else None),
            "retry_policy": (self.retry_policy.to_dict()
                             if self.retry_policy is not None else None),
            "observe": self.instrumentation is not None,
            "slo": ([spec.as_dict() for spec in self.slo_specs]
                    if self.slo_specs else None),
        }

    def _spawn_worker(self) -> int:
        """Launch one replica (initial launch and supervised restarts)."""
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        try:
            if self.start_method == "fork":
                _FLEET_FORK_STATE["servable"] = self.servable
                _FLEET_FORK_STATE["detector"] = self._detector
            process = self._mp_context.Process(
                target=_fleet_worker,
                args=(worker_id, self._worker_config, self._task_queue,
                      self._result_queue),
                daemon=True)
            process.start()
        finally:
            # fork snapshots state inside Process.start(); safe to unstage.
            _FLEET_FORK_STATE.clear()
        self._processes[worker_id] = process
        return worker_id

    def start(self) -> "WorkerFleet":
        """Build the bundle once, then launch the worker replicas."""
        if self._processes:
            return self
        import multiprocessing

        from repro.serving.registry import ModelRegistry

        self._mp_context = multiprocessing.get_context(self.start_method)
        context = self._dispatch_context()
        registry = ModelRegistry(cache=self.cache)
        self.servable = registry.get(self.model, context=context)
        config = self._config(context)
        self._detector = _build_detector(config, context, self.servable)
        self._worker_config = config
        self._task_queue = self._mp_context.Queue()
        self._result_queue = self._mp_context.Queue()
        for _ in range(self.n_workers):
            self._spawn_worker()
        ready = 0
        while ready < self.n_workers:
            kind, worker_id, payload = self._get_result()
            if kind == "failed":
                self.close()
                payload.raise_()
            ready += kind == "ready"
        return self

    def __enter__(self) -> "WorkerFleet":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self, grace_s: float = 5.0) -> None:
        """Stop every worker and release both queues (idempotent, bounded).

        Joins run against one shared ``grace_s`` deadline and stragglers
        are killed, so ``close()`` returns within ``grace_s`` plus a small
        constant even when a worker died before :meth:`start` completed or
        is wedged mid-request.  The queues are explicitly closed (feeder
        threads cancelled) so a half-started fleet leaks neither processes
        nor queue plumbing.
        """
        deadline = time.monotonic() + float(grace_s)
        processes = list(self._processes.values())
        for process in processes:
            if process.is_alive():
                process.terminate()
        for process in processes:
            process.join(timeout=max(0.0, deadline - time.monotonic()))
            if process.is_alive():
                process.kill()
                process.join(timeout=1.0)
        self._processes = {}
        for queue in (self._task_queue, self._result_queue):
            if queue is not None:
                queue.cancel_join_thread()
                queue.close()
        self._task_queue = None
        self._result_queue = None

    # ------------------------------------------------------------------ #
    # Replay
    # ------------------------------------------------------------------ #
    def _get_result(self) -> Tuple[str, int, object]:
        try:
            return self._result_queue.get(timeout=self.timeout_s)
        except queue_module.Empty:
            dead = [worker_id for worker_id, process in self._processes.items()
                    if not process.is_alive()]
            # Tear the wedged fleet down before raising: leaving live workers
            # behind would make the next start() reuse their stale queues.
            self.close()
            raise ParallelError(
                f"fleet produced no results for {self.timeout_s:.0f}s "
                f"(dead workers: {dead or 'none'})") from None

    def score_stream(self, requests: Sequence,
                     rate_per_s: Optional[float] = None,
                     seed: int = 0,
                     progress=None) -> Tuple[List, FleetReport]:
        """Replay ``requests`` through the fleet; one-shot per start.

        Returns ``(verdicts, report)`` with verdicts merged in submission
        order.  With ``rate_per_s`` the dispatcher paces enqueues like a
        Poisson arrival process (same schedule as the single-service
        :func:`~repro.serving.loadgen.replay`); otherwise requests are
        enqueued back-to-back.  Replica deaths are supervised: claimed
        requests are re-dispatched exactly once and replacements launched
        while the restart budget lasts.  Stop sentinels are sent only after
        every verdict arrived (a redispatched request must never strand
        behind a sentinel), so a subsequent call transparently starts a
        fresh fleet.

        With instrumentation attached, every ``trace_sample_every``-th
        request is stamped with a :class:`~repro.obs.trace.TraceContext`
        before dispatch and its root span is closed as its verdict
        arrives; a redispatched request keeps its original context, so
        whichever replica finally scores it parents onto the same root.

        ``progress``, if given, is called from the collection loop —
        ``progress(info)`` with ``new_verdicts`` (just-arrived, merge
        order), ``n_done``, ``n_expected``, ``elapsed_s``, ``restarts``
        and ``redispatches`` — whenever verdicts arrive and on every
        liveness-poll tick; the live ``serve --observe`` dashboard
        publisher hangs off this hook.
        """
        if not requests:
            return [], FleetReport(n_workers=self.n_workers,
                                   start_method=self.start_method,
                                   throughput=LatencyTracker().report(0.0),
                                   per_worker=[])
        from repro.serving.service import ScoringRequest

        # Wrap raw payloads here, at the dispatcher: per-replica id counters
        # would otherwise hand the same ``req-...`` id out in every worker.
        requests = [request if isinstance(request, ScoringRequest)
                    else ScoringRequest(request_id=f"req-{seq + 1:06d}",
                                        payload=request)
                    for seq, request in enumerate(requests)]
        self.start()
        offsets = None
        if rate_per_s is not None:
            from repro.serving.loadgen import _poisson_offsets

            offsets = _poisson_offsets(len(requests), rate_per_s, seed)
        obs = self.instrumentation
        stamper = (TraceStamper(obs, sample_every=self.trace_sample_every)
                   if obs is not None else None)
        started = time.perf_counter()
        stamps: Dict[int, float] = {}
        for seq, request in enumerate(requests):
            if offsets is not None:
                remaining = (started + offsets[seq]) - time.perf_counter()
                if remaining > 0:
                    time.sleep(remaining)
            stamps[seq] = time.perf_counter()
            if stamper is not None:
                # The stamped request is kept so a redispatch after a
                # replica death reuses the same trace context and root.
                request = requests[seq] = stamper.stamp(request,
                                                        started=stamps[seq])
            self._task_queue.put((seq, request, stamps[seq]))
        if obs is not None:
            obs.count("fleet.dispatches", len(requests))

        verdicts: Dict[int, object] = {}
        claims: Dict[int, Set[int]] = {worker_id: set()
                                       for worker_id in self._processes}
        reliability = ReliabilityReport()
        restarts_remaining = self.restart_budget
        n_expected = len(requests)

        def handle_death(worker_id: int) -> None:
            nonlocal restarts_remaining
            process = self._processes.pop(worker_id, None)
            if process is not None:
                process.join(timeout=5.0)
                if process.is_alive():  # pragma: no cover - defensive
                    process.kill()
                    process.join(timeout=1.0)
            lost = sorted(claims.pop(worker_id, set()) - set(verdicts))
            for seq in lost:
                self._task_queue.put((seq, requests[seq], stamps[seq]))
            reliability.redispatches += len(lost)
            if obs is not None and lost:
                obs.count("fleet.redispatches", len(lost),
                          worker=worker_id)
            if restarts_remaining > 0:
                restarts_remaining -= 1
                reliability.restarts += 1
                if obs is not None:
                    obs.count("fleet.restarts", worker=worker_id)
                claims[self._spawn_worker()] = set()
            if not self._processes:
                self.close()
                raise ParallelError(
                    "every fleet replica died and the restart budget is "
                    f"exhausted ({len(verdicts)}/{n_expected} verdicts in)")

        def report_progress(fresh: List) -> None:
            if progress is None:
                return
            progress({
                "new_verdicts": fresh,
                "n_done": len(verdicts),
                "n_expected": n_expected,
                "elapsed_s": time.perf_counter() - started,
                "restarts": reliability.restarts,
                "redispatches": reliability.redispatches,
            })

        last_progress = time.monotonic()
        while len(verdicts) < n_expected:
            try:
                kind, worker_id, payload = self._result_queue.get(
                    timeout=_LIVENESS_POLL_S)
            except queue_module.Empty:
                # The result queue is drained, so any verdicts a dead
                # replica managed to flush were already merged — claims
                # minus verdicts is exactly the set to re-dispatch.
                for dead_id in [worker_id for worker_id, process
                                in list(self._processes.items())
                                if not process.is_alive()]:
                    handle_death(dead_id)
                    last_progress = time.monotonic()
                report_progress([])
                if time.monotonic() - last_progress > self.timeout_s:
                    self.close()
                    raise ParallelError(
                        f"fleet made no progress for {self.timeout_s:.0f}s "
                        f"({len(verdicts)}/{n_expected} verdicts in)")
                continue
            last_progress = time.monotonic()
            if kind == "claim":
                claims.setdefault(worker_id, set()).add(payload)
            elif kind == "verdicts":
                owned = claims.setdefault(worker_id, set())
                fresh = []
                for seq, verdict in payload:
                    owned.discard(seq)
                    if seq in verdicts:
                        reliability.duplicates += 1
                    else:
                        verdicts[seq] = verdict
                        fresh.append(verdict)
                if stamper is not None:
                    stamper.finish_all(fresh)
                if fresh:
                    report_progress(fresh)
            elif kind == "crashed":
                crash_reliability, crash_obs = _crash_payload(payload)
                reliability.merge(ReliabilityReport.from_dict(crash_reliability))
                if obs is not None:
                    obs.merge_snapshot(crash_obs)
                handle_death(worker_id)
            elif kind == "ready":
                claims.setdefault(worker_id, set())
            elif kind == "failed":
                self.close()
                payload.raise_()
        elapsed = time.perf_counter() - started

        for _ in self._processes:
            self._task_queue.put(None)
        worker_stats: Dict[int, Dict[str, object]] = {}
        while len(worker_stats) < len(self._processes):
            kind, worker_id, payload = self._get_result()
            if kind == "stats":
                worker_stats[worker_id] = payload
            elif kind == "verdicts":
                reliability.duplicates += sum(
                    seq in verdicts for seq, _ in payload)
            elif kind == "crashed":
                # Crashed during drain: all verdicts are already in, so
                # nothing is lost — fold its accounting and stop waiting
                # for its stats.
                crash_reliability, crash_obs = _crash_payload(payload)
                reliability.merge(ReliabilityReport.from_dict(crash_reliability))
                if obs is not None:
                    obs.merge_snapshot(crash_obs)
                process = self._processes.pop(worker_id, None)
                if process is not None:
                    process.join(timeout=5.0)
            elif kind == "failed":
                self.close()
                payload.raise_()
        self.close()  # workers have already exited on the sentinel; reap them

        tracker = LatencyTracker()
        per_worker = []
        for worker_id in sorted(worker_stats):
            stats = worker_stats[worker_id]
            latencies = stats["latencies_ms"]
            tracker.extend(latencies)
            reliability.merge(ReliabilityReport.from_dict(
                stats.get("reliability")))
            if obs is not None:
                obs.merge_snapshot(stats.get("obs"))
            per_worker.append({
                "worker_id": worker_id,
                "n_requests": stats["n_requests"],
                "n_batches": stats["n_batches"],
                "mean_ms": (float(sum(latencies) / len(latencies))
                            if latencies else 0.0),
            })
        report = FleetReport(n_workers=self.n_workers,
                             start_method=self.start_method,
                             throughput=tracker.report(elapsed),
                             per_worker=per_worker,
                             reliability=reliability,
                             obs=(obs.snapshot() if obs is not None else None))
        return [verdicts[seq] for seq in range(n_expected)], report

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"WorkerFleet(n_workers={self.n_workers}, model={self.model!r}, "
                f"defense={self.defense!r}, start_method={self.start_method!r})")
