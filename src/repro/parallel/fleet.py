"""Multi-process replicated serving: N scoring workers behind one queue.

:class:`WorkerFleet` replicates the single-process
:class:`~repro.serving.service.ScoringService` across N worker processes.
A shared task queue dispatches requests to whichever worker is free (dynamic
load balancing); each worker runs its *own*
:class:`~repro.serving.batcher.MicroBatcher`, so fused-batch scoring and the
``max_delay_ms`` latency SLO hold per replica, and reports its
:class:`~repro.serving.stats.LatencyTracker` observations back for one
aggregated :class:`~repro.serving.stats.ThroughputReport`.

The bundle every replica serves is built **once** in the dispatcher process
(cold build or cache warm start) before the workers launch: under ``fork``
the workers inherit the live servable/detector, under ``spawn`` they reload
it from the shared artifact cache.  Because every replica serves the same
versioned bundle, verdict *contents* (probability, label, model version) are
identical to a single service's — only latency observations differ — and
results are merged in submission order, so a fleet replay is deterministic
apart from timing.
"""

from __future__ import annotations

import queue as queue_module
import time
from collections import deque
from dataclasses import asdict as dataclass_asdict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.config import ScaleProfile, get_profile
from repro.exceptions import ParallelError
from repro.experiments.context import ExperimentContext
from repro.parallel.pool import (
    RemoteFailure,
    resolve_start_method,
    resolve_workers,
)
from repro.serving.stats import LatencyTracker, ThroughputReport
from repro.utils.artifact_cache import ArtifactCache

__all__ = ["WorkerFleet", "FleetReport"]

#: Live objects staged for ``fork`` workers: the parent-built servable and
#: detector.  Populated only while worker processes are being launched.
_FLEET_FORK_STATE: Dict[str, object] = {}


def _build_service(config: Mapping[str, object]):
    """Build one worker's ScoringService (inheriting fork state if present)."""
    from repro.serving.registry import ModelRegistry
    from repro.serving.service import ScoringService

    servable = _FLEET_FORK_STATE.get("servable")
    detector = _FLEET_FORK_STATE.get("detector")
    if servable is None:
        cache = (ArtifactCache(config["cache_root"])
                 if config.get("cache_root") else None)
        context = ExperimentContext(
            scale=ScaleProfile(**config["scale_fields"]),
            seed=config["seed"], cache=cache, dtype=config["dtype"])
        registry = ModelRegistry(cache=cache)
        servable = registry.get(config["model"], context=context)
        detector = _build_detector(config, context, servable)
    return ScoringService(
        servable, detector=detector, threshold=config["threshold"],
        max_batch_size=config["max_batch_size"],
        max_delay_ms=config["max_delay_ms"])


def _build_detector(config: Mapping[str, object], context: ExperimentContext,
                    servable):
    from repro.scenarios.registry import DEFENSES, build_defense, ensure_registries

    ensure_registries()
    if DEFENSES.get(config["defense"]).entry_id == "none":
        return None
    return build_defense(config["defense"], context,
                         config.get("defense_params") or {},
                         model=servable.model)


def _fleet_worker(worker_id: int, config: Dict[str, object],
                  task_queue, result_queue) -> None:
    """One replica: pull requests, micro-batch them, ship verdicts back.

    Protocol on ``result_queue``: ``("ready", id, None)`` after startup,
    ``("verdicts", id, [(seq, Verdict), ...])`` per flush, ``("stats", id,
    {...})`` after the stop sentinel, ``("failed", id, RemoteFailure)`` on
    any error.  Verdicts carry the dispatcher-assigned sequence numbers so
    the merge is submission-ordered regardless of which replica scored what.
    """
    try:
        service = _build_service(config)
    except BaseException as error:  # noqa: BLE001 - shipped to the dispatcher
        result_queue.put(("failed", worker_id,
                          RemoteFailure.capture(f"worker {worker_id} startup",
                                                error)))
        return
    result_queue.put(("ready", worker_id, None))
    pending: deque = deque()

    def emit(verdicts) -> None:
        # MicroBatcher flushes preserve submission order, so the oldest
        # pending sequence numbers pair with the flushed verdicts 1:1.
        if verdicts:
            result_queue.put(("verdicts", worker_id,
                              [(pending.popleft(), verdict)
                               for verdict in verdicts]))

    try:
        while True:
            deadline = service.deadline
            timeout = (None if deadline is None
                       else max(0.0, deadline - time.perf_counter()))
            try:
                item = task_queue.get(timeout=timeout)
            except queue_module.Empty:
                emit(service.poll())
                continue
            if item is None:
                break
            seq, request, enqueued_at = item
            pending.append(seq)
            emit(service.submit(request, enqueued_at=enqueued_at))
        emit(service.drain())
        result_queue.put(("stats", worker_id, {
            "n_requests": service.tracker.count,
            "n_batches": service.n_batches,
            "latencies_ms": service.tracker.latencies_ms,
        }))
    except BaseException as error:  # noqa: BLE001 - shipped to the dispatcher
        result_queue.put(("failed", worker_id,
                          RemoteFailure.capture(f"worker {worker_id}", error)))


@dataclass
class FleetReport:
    """Aggregated statistics of one fleet replay."""

    n_workers: int
    start_method: str
    throughput: ThroughputReport
    per_worker: List[Dict[str, object]] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation."""
        return {
            "n_workers": self.n_workers,
            "start_method": self.start_method,
            "throughput": self.throughput.as_dict(),
            "per_worker": [dict(worker) for worker in self.per_worker],
        }

    def render(self) -> str:
        """Multi-line human-readable summary (what ``serve --workers`` prints)."""
        lines = [f"fleet: {self.n_workers} workers ({self.start_method}) — "
                 + self.throughput.render()]
        for worker in self.per_worker:
            lines.append(
                f"  worker {worker['worker_id']}: {worker['n_requests']} requests "
                f"in {worker['n_batches']} fused batches "
                f"(mean {worker['mean_ms']:.3f}ms)")
        return "\n".join(lines)


class WorkerFleet:
    """N replicated scoring workers behind a queue-based dispatcher.

    Parameters
    ----------
    n_workers:
        Replica count (``None``/``0`` = one per CPU).
    model / defense / defense_params / threshold:
        What each replica serves — a registered bundle name plus an optional
        DefenseRegistry endpoint, exactly like the single-service ``serve``
        path.
    scale / seed / dtype / cache:
        Context configuration for the bundle build (ignored when ``context``
        is supplied).  Attach a cache so ``spawn`` workers can warm-start.
    context:
        Optional prebuilt :class:`~repro.experiments.context.ExperimentContext`
        to build the bundle from (the CLI passes its own so the load
        generator and the fleet share artifacts).
    max_batch_size / max_delay_ms:
        Per-replica micro-batching knobs.
    timeout_s:
        Dispatcher-side guard: how long to wait on worker results before
        declaring the fleet wedged.
    """

    def __init__(self, n_workers: Optional[int] = None, model: str = "target",
                 defense: str = "none",
                 defense_params: Optional[Mapping[str, object]] = None,
                 threshold: float = 0.5,
                 scale: Optional[Union[str, ScaleProfile]] = None, seed: int = 0,
                 dtype: Optional[str] = None,
                 cache: Optional[Union[ArtifactCache, str, Path]] = None,
                 context: Optional[ExperimentContext] = None,
                 max_batch_size: int = 32, max_delay_ms: float = 2.0,
                 start_method: Optional[str] = None,
                 timeout_s: float = 300.0) -> None:
        self.n_workers = resolve_workers(n_workers)
        self.model = model
        self.defense = defense
        self.defense_params = dict(defense_params or {})
        self.threshold = float(threshold)
        if cache is not None and not isinstance(cache, ArtifactCache):
            cache = ArtifactCache(cache)
        self.cache = cache if context is None or context.cache is None \
            else context.cache
        self._scale = scale
        self._seed = int(seed)
        self._dtype = dtype
        self._context = context
        self.max_batch_size = int(max_batch_size)
        self.max_delay_ms = float(max_delay_ms)
        self.start_method = resolve_start_method(start_method)
        self.timeout_s = float(timeout_s)
        self.servable = None
        self._processes: List = []
        self._task_queue = None
        self._result_queue = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def _dispatch_context(self) -> ExperimentContext:
        if self._context is None:
            scale = (get_profile(self._scale) if isinstance(self._scale, str)
                     else self._scale)
            self._context = ExperimentContext(scale=scale, seed=self._seed,
                                              cache=self.cache, dtype=self._dtype)
        return self._context

    def _config(self, context: ExperimentContext) -> Dict[str, object]:
        return {
            "scale_fields": dataclass_asdict(context.scale),
            "seed": context.seed,
            "dtype": str(context.dtype) if context.dtype is not None else None,
            "cache_root": str(self.cache.root) if self.cache is not None else None,
            "model": self.model,
            "defense": self.defense,
            "defense_params": self.defense_params,
            "threshold": self.threshold,
            "max_batch_size": self.max_batch_size,
            "max_delay_ms": self.max_delay_ms,
        }

    def start(self) -> "WorkerFleet":
        """Build the bundle once, then launch the worker replicas."""
        if self._processes:
            return self
        import multiprocessing

        from repro.serving.registry import ModelRegistry

        mp_context = multiprocessing.get_context(self.start_method)
        context = self._dispatch_context()
        registry = ModelRegistry(cache=self.cache)
        self.servable = registry.get(self.model, context=context)
        config = self._config(context)
        detector = _build_detector(config, context, self.servable)
        self._task_queue = mp_context.Queue()
        self._result_queue = mp_context.Queue()
        try:
            if self.start_method == "fork":
                _FLEET_FORK_STATE["servable"] = self.servable
                _FLEET_FORK_STATE["detector"] = detector
            for worker_id in range(self.n_workers):
                process = mp_context.Process(
                    target=_fleet_worker,
                    args=(worker_id, config, self._task_queue,
                          self._result_queue),
                    daemon=True)
                process.start()
                self._processes.append(process)
            ready = 0
            while ready < self.n_workers:
                kind, worker_id, payload = self._get_result()
                if kind == "failed":
                    self.close()
                    payload.raise_()
                ready += kind == "ready"
        finally:
            _FLEET_FORK_STATE.clear()
        return self

    def __enter__(self) -> "WorkerFleet":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Stop every worker (idempotent)."""
        for process in self._processes:
            if process.is_alive():
                process.terminate()
            process.join(timeout=5.0)
        self._processes = []

    # ------------------------------------------------------------------ #
    # Replay
    # ------------------------------------------------------------------ #
    def _get_result(self) -> Tuple[str, int, object]:
        try:
            return self._result_queue.get(timeout=self.timeout_s)
        except queue_module.Empty:
            dead = [index for index, process in enumerate(self._processes)
                    if not process.is_alive()]
            # Tear the wedged fleet down before raising: leaving live workers
            # behind would make the next start() reuse their stale queues.
            self.close()
            raise ParallelError(
                f"fleet produced no results for {self.timeout_s:.0f}s "
                f"(dead workers: {dead or 'none'})") from None

    def score_stream(self, requests: Sequence,
                     rate_per_s: Optional[float] = None,
                     seed: int = 0) -> Tuple[List, FleetReport]:
        """Replay ``requests`` through the fleet; one-shot per start.

        Returns ``(verdicts, report)`` with verdicts merged in submission
        order.  With ``rate_per_s`` the dispatcher paces enqueues like a
        Poisson arrival process (same schedule as the single-service
        :func:`~repro.serving.loadgen.replay`); otherwise requests are
        enqueued back-to-back.  The stop sentinels end the worker processes,
        so a subsequent call transparently starts a fresh fleet.
        """
        if not requests:
            return [], FleetReport(n_workers=self.n_workers,
                                   start_method=self.start_method,
                                   throughput=LatencyTracker().report(0.0),
                                   per_worker=[])
        from repro.serving.service import ScoringRequest

        # Wrap raw payloads here, at the dispatcher: per-replica id counters
        # would otherwise hand the same ``req-...`` id out in every worker.
        requests = [request if isinstance(request, ScoringRequest)
                    else ScoringRequest(request_id=f"req-{seq + 1:06d}",
                                        payload=request)
                    for seq, request in enumerate(requests)]
        self.start()
        offsets = None
        if rate_per_s is not None:
            from repro.serving.loadgen import _poisson_offsets

            offsets = _poisson_offsets(len(requests), rate_per_s, seed)
        started = time.perf_counter()
        for seq, request in enumerate(requests):
            if offsets is not None:
                remaining = (started + offsets[seq]) - time.perf_counter()
                if remaining > 0:
                    time.sleep(remaining)
            self._task_queue.put((seq, request, time.perf_counter()))
        for _ in self._processes:
            self._task_queue.put(None)

        verdicts: Dict[int, object] = {}
        worker_stats: Dict[int, Dict[str, object]] = {}
        n_expected = len(requests)
        while len(verdicts) < n_expected or len(worker_stats) < len(self._processes):
            kind, worker_id, payload = self._get_result()
            if kind == "failed":
                self.close()
                payload.raise_()
            elif kind == "verdicts":
                for seq, verdict in payload:
                    verdicts[seq] = verdict
            elif kind == "stats":
                worker_stats[worker_id] = payload
        elapsed = time.perf_counter() - started
        self.close()  # workers have already exited on the sentinel; reap them

        tracker = LatencyTracker()
        per_worker = []
        for worker_id in sorted(worker_stats):
            stats = worker_stats[worker_id]
            latencies = stats["latencies_ms"]
            tracker.extend(latencies)
            per_worker.append({
                "worker_id": worker_id,
                "n_requests": stats["n_requests"],
                "n_batches": stats["n_batches"],
                "mean_ms": (float(sum(latencies) / len(latencies))
                            if latencies else 0.0),
            })
        report = FleetReport(n_workers=self.n_workers,
                             start_method=self.start_method,
                             throughput=tracker.report(elapsed),
                             per_worker=per_worker)
        return [verdicts[seq] for seq in range(n_expected)], report

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"WorkerFleet(n_workers={self.n_workers}, model={self.model!r}, "
                f"defense={self.defense!r}, start_method={self.start_method!r})")
