"""Figure 4 — security evaluation curves for the grey-box attacks.

Three experiments from Section III-B:

(a) the attacker knows the exact 491 features: a Table IV substitute is
    trained on the attacker's own data, examples are crafted on it
    (θ = 0.1, γ swept) and replayed on the target;
(b) same, with γ = 0.005 fixed and θ swept;
(c) the attacker only knows the API names: the substitute uses *binary*
    features, so the crafted perturbations transfer much more poorly to the
    count-feature target.

Crafting for transfer uses the full γ budget (``early_stop=False``): stopping
as soon as the substitute is fooled produces minimal perturbations that do
not transfer, whereas the paper's CleverHans configuration perturbs up to the
budget.

Both γ panels run through the trajectory-replay sweep engine
(:mod:`repro.evaluation.sweep`): panel (a) via its scenario, and panel (c)
directly — one instrumented binary-substitute run supplies the substitute
curve, every target-side count-space realisation *and* the operating-point
transfer result, where the seed driver re-crafted from scratch twice per
grid point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.attacks.jsma import JsmaAttack
from repro.attacks.transfer import TransferResult
from repro.attacks.constraints import PerturbationConstraints
from repro.evaluation.reports import render_security_curve
from repro.evaluation.security_curve import (
    SecurityCurve,
    paper_gamma_grid,
    paper_theta_grid,
)
from repro.evaluation.sweep import replay_gamma_sweep, score_sweep_points
from repro.experiments import paper_values
from repro.experiments.context import ExperimentContext
from repro.scenarios import ScenarioSpec


@dataclass
class Figure4Result:
    """All three grey-box panels plus the paper's headline operating points."""

    gamma_curve: SecurityCurve
    theta_curve: SecurityCurve
    binary_gamma_curve: SecurityCurve
    operating_point: TransferResult
    binary_operating_point: TransferResult
    baseline_detection_rate: float

    @property
    def transfer_rate(self) -> float:
        """Transfer rate at the paper's (θ=0.1, γ=0.005) operating point."""
        return self.operating_point.transfer_rate

    @property
    def binary_transfer_rate(self) -> float:
        """Transfer rate of the binary-feature substitute attack."""
        return self.binary_operating_point.transfer_rate

    def count_attack_transfers_better_than_binary(self) -> bool:
        """The paper's qualitative claim: less feature knowledge ⇒ worse transfer."""
        count_min = self.gamma_curve.minimum_detection_rate("target")
        binary_min = self.binary_gamma_curve.minimum_detection_rate("target")
        return count_min < binary_min

    def render(self) -> str:
        """ASCII rendering of all panels."""
        parts = [
            render_security_curve(self.gamma_curve,
                                  title="Figure 4(a) — grey-box, theta=0.1, gamma sweep"),
            "",
            render_security_curve(self.theta_curve,
                                  title="Figure 4(b) — grey-box, gamma=0.005, theta sweep"),
            "",
            render_security_curve(self.binary_gamma_curve,
                                  title="Figure 4(c) — grey-box, binary-feature substitute"),
            "",
            (f"operating point (theta=0.1, gamma=0.005): reproduced target detection "
             f"{self.operating_point.target_detection_rate:.3f} / transfer "
             f"{self.transfer_rate:.3f}; paper "
             f"{paper_values.GREY_BOX_COUNTS['target_detection_rate']:.3f} / "
             f"{paper_values.GREY_BOX_COUNTS['transfer_rate']:.3f}"),
            (f"binary substitute: reproduced target detection "
             f"{self.binary_operating_point.target_detection_rate:.3f}; paper "
             f"{paper_values.GREY_BOX_BINARY['target_detection_rate']:.3f}"),
        ]
        return "\n".join(parts)


def specs(context: ExperimentContext, n_gamma_points: Optional[int] = None,
          n_theta_points: Optional[int] = None) -> Dict[str, ScenarioSpec]:
    """The count-substitute scenarios Figure 4 consists of (keyed by panel).

    Panel (c) — the binary-feature substitute — needs a bespoke replay step
    (binary perturbations are realised as added API calls in the target's
    count space), so it stays in :func:`run`.
    """
    gamma_grid = tuple(paper_gamma_grid(n_gamma_points
                                        or context.scale.sweep_points_gamma))
    theta_grid = tuple(paper_theta_grid(n_theta_points
                                        or context.scale.sweep_points_theta))
    common = dict(attack="jsma", attack_params={"early_stop": False},
                  model="substitute", scale=context.scale.name,
                  seed=context.seed)
    return {
        "gamma": ScenarioSpec(sweep="gamma", theta=0.1, sweep_values=gamma_grid,
                              label="figure4(a) grey-box gamma sweep", **common),
        "theta": ScenarioSpec(sweep="theta", gamma=0.005, sweep_values=theta_grid,
                              label="figure4(b) grey-box theta sweep", **common),
        "operating_point": ScenarioSpec(
            theta=paper_values.GREY_BOX_COUNTS["theta"],
            gamma=paper_values.GREY_BOX_COUNTS["gamma"],
            label="figure4 operating point (theta=0.1, gamma=0.005)", **common),
    }


def run(context: ExperimentContext, n_gamma_points: Optional[int] = None,
        n_theta_points: Optional[int] = None,
        workers: Optional[int] = None) -> Figure4Result:
    """Run the grey-box sweeps (count substitute and binary substitute).

    ``workers`` > 1 fans the count-substitute scenarios out over a process
    pool; panel (c)'s bespoke binary replay stays in-process either way.
    """
    from repro.parallel.grid import run_spec_reports  # lazy: avoids an import cycle

    target = context.target_model
    substitute = context.substitute_model
    malware = context.attack_malware
    gamma_grid = paper_gamma_grid(n_gamma_points or context.scale.sweep_points_gamma)

    reports = run_spec_reports(specs(context, n_gamma_points, n_theta_points),
                               context=context, workers=workers)
    gamma_curve = reports["gamma"].curve
    theta_curve = reports["theta"].curve
    operating_report = reports["operating_point"]
    operating_point = TransferResult(
        attack_result=operating_report.attack_result,
        substitute_detection_rate=operating_report.detection["substitute"],
        target_detection_rate=operating_report.detection["target"],
        target_detection_rate_original=operating_report.baseline_detection["target"],
    )

    # Panel (c): the binary-feature substitute.  The attacker does not know
    # the target's count transformation, so they craft in their own binary
    # feature space (a perturbed feature means "make this API present", i.e.
    # the natural per-feature magnitude is 1.0).  To realise the attack they
    # add a handful of calls to each selected API; the *target* then sees the
    # count-normalised value of those few calls, which is far smaller than
    # what the substitute was satisfied by — the feature-knowledge gap that
    # makes this attack transfer poorly in the paper.
    binary_substitute = context.binary_substitute
    malware_binary = (malware.features > 0).astype(np.float64)
    scales = context.pipeline.transformer.scales
    calls_per_feature = 1.0

    def binary_attack(constraints: PerturbationConstraints) -> JsmaAttack:
        binary_constraints = constraints.with_strength(theta=1.0)
        return JsmaAttack(binary_substitute.network, constraints=binary_constraints,
                          early_stop=False)

    def replay_on_target(adversarial_binary: np.ndarray) -> np.ndarray:
        changed = (adversarial_binary - malware_binary) > 1e-12
        count_delta = changed * (calls_per_feature / scales[None, :])
        return np.clip(malware.features + count_delta, 0.0, 1.0)

    # One instrumented full-budget run covers the whole panel: each grid
    # point (substitute side), every target-side realisation, and the
    # operating-point transfer result are views over the same trajectory —
    # the seed driver re-crafted from scratch *twice* per grid point.
    binary_models = {"substitute": binary_substitute.network}
    binary_sweep = replay_gamma_sweep(binary_attack, malware_binary,
                                      binary_models, theta=0.1,
                                      gamma_values=gamma_grid)
    binary_curve = binary_sweep.curve
    # Add the target's detection rate at each point by realising the binary
    # perturbations as "add a few API calls" in the target's count space
    # (all points through one stacked target predict).
    target_rates, target_evaded = score_sweep_points(
        {"target": target.network},
        [replay_on_target(adversarial)
         for adversarial in binary_sweep.adversarials])
    for point, rates, evaded in zip(binary_curve.points, target_rates,
                                    target_evaded):
        point.detection_rates["target"] = rates["target"]
        point.evaded_counts["target"] = evaded["target"]

    operating_gamma = 0.025
    if binary_sweep.budget_for(operating_gamma) <= binary_sweep.trajectory.budget:
        operating_crafted = binary_sweep.result_at(operating_gamma)
    else:  # grid subsampled below the paper operating point: craft directly
        operating_crafted = binary_attack(
            PerturbationConstraints(theta=0.1, gamma=operating_gamma)).run(malware_binary)
    from repro.nn.metrics import detection_rate as _detection_rate

    operating_target_rate = _detection_rate(
        target.network.predict(replay_on_target(operating_crafted.adversarial)))
    binary_operating = TransferResult(
        attack_result=operating_crafted,
        substitute_detection_rate=operating_crafted.detection_rate,
        target_detection_rate=operating_target_rate,
        target_detection_rate_original=target.detection_rate(malware.features),
    )

    return Figure4Result(
        gamma_curve=gamma_curve,
        theta_curve=theta_curve,
        binary_gamma_curve=binary_curve,
        operating_point=operating_point,
        binary_operating_point=binary_operating,
        baseline_detection_rate=target.detection_rate(malware.features),
    )
