"""Table II — excerpt of a sandbox log file."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.apilog.log_format import ApiLog, parse_line
from repro.apilog.sandbox import Sandbox
from repro.experiments.context import ExperimentContext


@dataclass
class Table2Result:
    """A generated log excerpt in the Table II format."""

    sample_id: str
    os_version: str
    excerpt_lines: List[str]
    total_records: int

    def render(self) -> str:
        """The excerpt as the paper prints it."""
        header = (f"Table II — excerpt of a log file "
                  f"(sample {self.sample_id}, {self.os_version}, "
                  f"{self.total_records} monitored calls)")
        return "\n".join([header, "-" * len(header), *self.excerpt_lines])

    def round_trips(self) -> bool:
        """Whether every excerpt line parses back into a record."""
        try:
            for line in self.excerpt_lines:
                parse_line(line)
        except Exception:
            return False
        return True


def run(context: ExperimentContext, excerpt_length: int = 10) -> Table2Result:
    """Execute one malware sample in the sandbox and show the log head."""
    samples = context.generator.generate_source_samples(
        1, label=1, source="train", rng_name="table2:sample")
    sandbox = Sandbox(os_version="win7",
                      random_state=context.seeds.seed_for("table2:sandbox"),
                      record_args=True)
    run_result = sandbox.execute(samples[0])
    log: ApiLog = run_result.log
    excerpt = log.head(excerpt_length)
    return Table2Result(
        sample_id=samples[0].sample_id,
        os_version=run_result.os_version,
        excerpt_lines=excerpt.to_text().splitlines(),
        total_records=len(log),
    )
