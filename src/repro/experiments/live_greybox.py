"""Section III-B (third experiment) — the live grey-box source-modification test."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.attacks.live_greybox import LiveGreyBoxAttack, LiveGreyBoxTrace
from repro.config import CLASS_MALWARE
from repro.evaluation.reports import format_table
from repro.experiments import paper_values
from repro.experiments.context import ExperimentContext


@dataclass
class LiveGreyBoxResult:
    """The confidence-decay trace plus the paper's reference trajectory."""

    trace: LiveGreyBoxTrace
    paper_original_confidence: float
    paper_confidence_after_1: float
    paper_confidence_after_8: float

    def confidence_decreases(self) -> bool:
        """Whether adding the chosen API call lowers the engine's confidence."""
        return self.trace.final_confidence < self.trace.original_confidence

    def rows(self) -> List[List[object]]:
        """One row per injection count."""
        return [[row["added_calls"], row["confidence"], row["detected"]]
                for row in self.trace.rows()]

    def render(self) -> str:
        """ASCII rendering of the confidence trajectory."""
        table = format_table(["added calls", "engine confidence", "detected"],
                             self.rows(),
                             title=f"Live grey-box test — injected API "
                                   f"{self.trace.injected_api!r} into {self.trace.sample_id}")
        reference = (f"paper: {self.paper_original_confidence:.4f} (original) -> "
                     f"{self.paper_confidence_after_1:.4f} (1 call) -> "
                     f"{self.paper_confidence_after_8:.4f} (8 calls)")
        return f"{table}\n{reference}"


def run(context: ExperimentContext, max_repetitions: int = 8,
        sample_index: Optional[int] = None) -> LiveGreyBoxResult:
    """Pick a confidently-detected malware source sample and run the live attack."""
    target = context.target_model
    substitute = context.substitute_model
    pipeline = context.pipeline

    sources = context.generator.generate_source_samples(
        16, label=CLASS_MALWARE, source="test", rng_name="live_greybox:sources")
    attack = LiveGreyBoxAttack(target.network, substitute.network, pipeline,
                               sandbox_os="win7",
                               random_state=context.seeds.seed_for("live_greybox"))

    if sample_index is None:
        # Mirror the paper: start from a sample the engine detects with high
        # (but not saturated) confidence — the paper's sample sat at 98.43%.
        reference = paper_values.LIVE_GREY_BOX["original_confidence"]
        scored = [(abs(attack.engine_confidence(sample) - reference), i)
                  for i, sample in enumerate(sources)]
        scored.sort()
        sample_index = scored[0][1]
    sample = sources[sample_index]

    trace = attack.run(sample, max_repetitions=max_repetitions)
    return LiveGreyBoxResult(
        trace=trace,
        paper_original_confidence=paper_values.LIVE_GREY_BOX["original_confidence"],
        paper_confidence_after_1=paper_values.LIVE_GREY_BOX["confidence_after_1"],
        paper_confidence_after_8=paper_values.LIVE_GREY_BOX["confidence_after_8"],
    )
