"""Section III-B (third experiment) — the live grey-box source-modification test."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.attacks.live_greybox import LiveGreyBoxTrace
from repro.evaluation.reports import format_table
from repro.experiments import paper_values
from repro.experiments.context import ExperimentContext
from repro.scenarios import ScenarioSpec, run_scenario


@dataclass
class LiveGreyBoxResult:
    """The confidence-decay trace plus the paper's reference trajectory."""

    trace: LiveGreyBoxTrace
    paper_original_confidence: float
    paper_confidence_after_1: float
    paper_confidence_after_8: float

    def confidence_decreases(self) -> bool:
        """Whether adding the chosen API call lowers the engine's confidence."""
        return self.trace.final_confidence < self.trace.original_confidence

    def rows(self) -> List[List[object]]:
        """One row per injection count."""
        return [[row["added_calls"], row["confidence"], row["detected"]]
                for row in self.trace.rows()]

    def render(self) -> str:
        """ASCII rendering of the confidence trajectory."""
        table = format_table(["added calls", "engine confidence", "detected"],
                             self.rows(),
                             title=f"Live grey-box test — injected API "
                                   f"{self.trace.injected_api!r} into {self.trace.sample_id}")
        reference = (f"paper: {self.paper_original_confidence:.4f} (original) -> "
                     f"{self.paper_confidence_after_1:.4f} (1 call) -> "
                     f"{self.paper_confidence_after_8:.4f} (8 calls)")
        return f"{table}\n{reference}"


def spec(context: ExperimentContext, max_repetitions: int = 8,
         sample_index: Optional[int] = None) -> ScenarioSpec:
    """The declarative scenario this experiment consists of."""
    return ScenarioSpec(
        attack="live_greybox",
        attack_params={"max_repetitions": max_repetitions,
                       "sample_index": sample_index},
        scale=context.scale.name, seed=context.seed,
        label="live grey-box source-modification test")


def run(context: ExperimentContext, max_repetitions: int = 8,
        sample_index: Optional[int] = None) -> LiveGreyBoxResult:
    """Pick a confidently-detected malware source sample and run the live attack."""
    report = run_scenario(spec(context, max_repetitions, sample_index),
                          context=context)
    return LiveGreyBoxResult(
        trace=report.live_trace,
        paper_original_confidence=paper_values.LIVE_GREY_BOX["original_confidence"],
        paper_confidence_after_1=paper_values.LIVE_GREY_BOX["confidence_after_1"],
        paper_confidence_after_8=paper_values.LIVE_GREY_BOX["confidence_after_8"],
    )
