"""Shared, lazily-built experiment state.

Reproducing every table and figure requires the same expensive artifacts —
the Table I corpus, the trained target model, the attacker's substitute
models, and the grey-box adversarial examples used by the defense
experiments.  :class:`ExperimentContext` builds each of them exactly once
(on first use) so the full experiment suite and the benchmark harness do not
retrain models per figure.

With an :class:`~repro.utils.artifact_cache.ArtifactCache` attached, the
artifacts additionally persist *across processes*: a warm run loads the
corpus and trained models from disk instead of regenerating and retraining
them.  Cache keys cover the scale profile, the master seed, the compute
dtype and (for adversarial sets) the attack operating point, so any change
to those builds a fresh artifact; code changes that alter artifact semantics
are handled by bumping
:data:`~repro.utils.artifact_cache.CACHE_SCHEMA_VERSION` (see that module's
invalidation rules).
"""

from __future__ import annotations

import json
from contextlib import nullcontext
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.attacks.constraints import PerturbationConstraints
from repro.attacks.jsma import JsmaAttack
from repro.config import CLASS_MALWARE, ScaleProfile, default_profile
from repro.data.dataset import Dataset
from repro.data.generator import CorpusBundle, CorpusGenerator
from repro.features.pipeline import FeaturePipeline
from repro.models.factory import (
    train_binary_substitute_model,
    train_substitute_model,
    train_target_model,
)
from repro.models.substitute_model import SubstituteModel
from repro.models.target_model import TargetModel
from repro.models.base import DetectorModel
from repro.nn.engine import compute_dtype, resolve_dtype, use_dtype
from repro.nn.training import TrainingHistory
from repro.utils.artifact_cache import ArtifactCache
from repro.utils.rng import SeedSequence


class ExperimentContext:
    """Lazily builds and caches everything the experiments share.

    Parameters
    ----------
    scale:
        Scale profile (defaults to the ``REPRO_SCALE`` environment selection).
    seed:
        Master seed; every derived component gets a named child seed.
    cache:
        Optional :class:`~repro.utils.artifact_cache.ArtifactCache` (or a
        cache-root path) that persists the corpus, trained models and
        adversarial sets across processes.  ``None`` (the default) keeps the
        in-process lazy behaviour only.
    dtype:
        Optional compute dtype (``"float32"``/``"float64"``) for every
        artifact this context builds.  ``None`` (the default) follows the
        process-wide engine dtype (``REPRO_DTYPE``).  When set, artifact
        builds run under :func:`~repro.nn.engine.use_dtype`, so the trained
        networks carry the dtype with them without mutating global engine
        state.
    """

    def __init__(self, scale: Optional[ScaleProfile] = None, seed: int = 0,
                 cache: Optional[Union[ArtifactCache, str, Path]] = None,
                 dtype=None) -> None:
        self.scale = scale if scale is not None else default_profile()
        self.seed = seed
        self.dtype = resolve_dtype(dtype) if dtype is not None else None
        if cache is not None and not isinstance(cache, ArtifactCache):
            cache = ArtifactCache(cache)
        self.cache = cache
        self.seeds = SeedSequence(master_seed=seed)
        self._generator: Optional[CorpusGenerator] = None
        self._corpus: Optional[CorpusBundle] = None
        self._target: Optional[TargetModel] = None
        self._substitute: Optional[SubstituteModel] = None
        self._binary_substitute: Optional[SubstituteModel] = None
        self._binary_pipeline: Optional[FeaturePipeline] = None
        self._attack_malware: Optional[Dataset] = None
        self._greybox_adversarial: Dict[tuple, Dataset] = {}

    # ------------------------------------------------------------------ #
    # Artifact-cache plumbing
    # ------------------------------------------------------------------ #
    def effective_dtype(self):
        """The dtype artifacts are built under (context override or engine)."""
        return self.dtype if self.dtype is not None else compute_dtype()

    def _dtype_scope(self):
        """Context manager activating this context's dtype override (if any)."""
        return use_dtype(self.dtype) if self.dtype is not None else nullcontext()

    def _cache_key(self, kind: str, **extra) -> str:
        """Cache key covering scale, seed, compute dtype and ``extra``."""
        return self.cache.key_for(kind, scale=asdict(self.scale), seed=self.seed,
                                  dtype=str(self.effective_dtype()), **extra)

    def _cached(self, kind: str, build, save, load, **extra):
        """Build through the artifact cache when one is attached."""
        with self._dtype_scope():
            if self.cache is None:
                return build()
            return self.cache.load_or_build(kind, self._cache_key(kind, **extra),
                                            build, save, load)

    @staticmethod
    def _save_model(model: DetectorModel, path: Path) -> None:
        """Persist a trained detector plus its training history."""
        model.save(path / "network")
        if model.history is not None:
            (path / "history.json").write_text(
                json.dumps(model.history.as_dict()), encoding="utf-8")

    @staticmethod
    def _restore_history(model: DetectorModel, path: Path) -> DetectorModel:
        history_file = path / "history.json"
        if history_file.exists():
            data = json.loads(history_file.read_text(encoding="utf-8"))
            model.history = TrainingHistory(**data)
        return model

    @staticmethod
    def _save_corpus(bundle: CorpusBundle, path: Path) -> None:
        bundle.train.save(path / "train")
        bundle.validation.save(path / "validation")
        bundle.test.save(path / "test")
        bundle.pipeline.save(path / "pipeline")

    @staticmethod
    def _load_corpus(path: Path) -> CorpusBundle:
        return CorpusBundle(
            train=Dataset.load(path / "train"),
            validation=Dataset.load(path / "validation"),
            test=Dataset.load(path / "test"),
            pipeline=FeaturePipeline.load(path / "pipeline"),
        )

    # ------------------------------------------------------------------ #
    # Corpus and models
    # ------------------------------------------------------------------ #
    @property
    def generator(self) -> CorpusGenerator:
        """The corpus generator (shared so family/OS mixtures are consistent)."""
        if self._generator is None:
            self._generator = CorpusGenerator(scale=self.scale,
                                              seed=self.seeds.seed_for("corpus"))
        return self._generator

    @property
    def corpus(self) -> CorpusBundle:
        """The Table I corpus bundle (train/validation/test + pipeline)."""
        if self._corpus is None:
            self._corpus = self._cached(
                "corpus",
                build=lambda: self.generator.generate_corpus(),
                save=self._save_corpus,
                load=self._load_corpus,
            )
        return self._corpus

    @property
    def pipeline(self) -> FeaturePipeline:
        """The defender's fitted feature pipeline."""
        return self.corpus.pipeline

    @property
    def target_model(self) -> TargetModel:
        """The deployed 4-layer target DNN, trained on the corpus."""
        if self._target is None:
            self._target = self._cached(
                "target",
                build=lambda: train_target_model(
                    self.corpus, scale=self.scale,
                    random_state=self.seeds.seed_for("target")),
                save=self._save_model,
                load=lambda path: self._restore_history(
                    TargetModel.load(path / "network", name="target_dnn"), path),
            )
        return self._target

    def _build_substitute(self) -> SubstituteModel:
        attacker_data = self.generator.generate_attacker_corpus(
            n_clean=self.scale.train_clean,
            n_malware=self.scale.train_malware,
            pipeline=self.pipeline,
            name="attacker_counts")
        return train_substitute_model(
            attacker_data, scale=self.scale,
            random_state=self.seeds.seed_for("substitute"))

    @property
    def substitute_model(self) -> SubstituteModel:
        """The Table IV substitute trained on the attacker's own data (491 features)."""
        if self._substitute is None:
            self._substitute = self._cached(
                "substitute",
                build=self._build_substitute,
                save=self._save_model,
                load=lambda path: self._restore_history(
                    SubstituteModel.load(path / "network", name="substitute_dnn"),
                    path),
            )
        return self._substitute

    def _build_binary_substitute(self) -> SubstituteModel:
        model, self._binary_pipeline = train_binary_substitute_model(
            self.generator,
            n_clean=self.scale.train_clean,
            n_malware=self.scale.train_malware,
            scale=self.scale,
            random_state=self.seeds.seed_for("binary_substitute"))
        return model

    def _save_binary_substitute(self, model: SubstituteModel, path: Path) -> None:
        self._save_model(model, path)
        self._binary_pipeline.save(path / "pipeline")

    def _load_binary_substitute(self, path: Path) -> SubstituteModel:
        self._binary_pipeline = FeaturePipeline.load(path / "pipeline")
        return self._restore_history(
            SubstituteModel.load(path / "network", name="substitute_binary_dnn"), path)

    @property
    def binary_substitute(self) -> SubstituteModel:
        """The binary-feature substitute of the second grey-box experiment."""
        if self._binary_substitute is None:
            self._binary_substitute = self._cached(
                "binary_substitute",
                build=self._build_binary_substitute,
                save=self._save_binary_substitute,
                load=self._load_binary_substitute,
            )
        return self._binary_substitute

    @property
    def binary_pipeline(self) -> FeaturePipeline:
        """The binary-feature pipeline owned by the binary substitute's attacker."""
        if self._binary_pipeline is None:
            _ = self.binary_substitute
        return self._binary_pipeline

    # ------------------------------------------------------------------ #
    # Attack inputs
    # ------------------------------------------------------------------ #
    @property
    def attack_malware(self) -> Dataset:
        """The malware samples used to craft adversarial examples.

        The paper uses all 28,874 test malware samples; scale profiles cap
        this at ``attack_samples`` for tractability.
        """
        if self._attack_malware is None:
            malware = self.corpus.test.malware_only()
            n = min(self.scale.attack_samples, malware.n_samples)
            self._attack_malware = malware.sample(
                n, random_state=self.seeds.seed_for("attack_malware"),
                name="attack_malware", stratify=False)
        return self._attack_malware

    def greybox_adversarial(self, theta: float = 0.1, gamma: float = 0.02) -> Dataset:
        """Adversarial examples crafted on the substitute at (θ, γ).

        These are the examples the defense experiments consume (the paper
        uses the grey-box set crafted at θ=0.1, γ=0.02).  Results are cached
        per operating point.
        """
        key = (round(float(theta), 6), round(float(gamma), 6))
        if key not in self._greybox_adversarial:
            def build() -> Dataset:
                constraints = PerturbationConstraints(theta=theta, gamma=gamma)
                # Full-budget crafting (no early stop): stopping as soon as
                # the substitute is fooled produces minimal perturbations
                # that do not transfer to the target model.
                attack = JsmaAttack(self.substitute_model.network,
                                    constraints=constraints, early_stop=False)
                result = attack.run(self.attack_malware.features)
                return Dataset(
                    features=result.adversarial,
                    labels=np.full(result.n_samples, CLASS_MALWARE, dtype=np.int64),
                    name=f"advex_theta{theta}_gamma{gamma}",
                )

            self._greybox_adversarial[key] = self._cached(
                "greybox_adversarial",
                build=build,
                save=lambda dataset, path: dataset.save(path / "dataset"),
                load=lambda path: Dataset.load(path / "dataset"),
                theta=key[0], gamma=key[1],
            )
        return self._greybox_adversarial[key]

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def describe(self) -> Dict[str, object]:
        """Summary of what has been built so far (for logs and debugging)."""
        return {
            "scale": self.scale.name,
            "seed": self.seed,
            "dtype": str(self.effective_dtype()),
            "cache_root": str(self.cache.root) if self.cache is not None else None,
            "corpus_built": self._corpus is not None,
            "target_trained": self._target is not None,
            "substitute_trained": self._substitute is not None,
            "binary_substitute_trained": self._binary_substitute is not None,
            "cached_adversarial_sets": sorted(self._greybox_adversarial),
        }
