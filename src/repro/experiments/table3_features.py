"""Table III — excerpt of the 491 API features."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.apilog.api_catalog import TABLE_III_EXCERPT, TABLE_III_START_INDEX
from repro.evaluation.reports import format_table
from repro.experiments.context import ExperimentContext


@dataclass
class Table3Result:
    """The catalog excerpt at indices 475-484 next to the paper's excerpt."""

    n_features: int
    excerpt: List[Tuple[int, str]]
    paper_excerpt: Tuple[str, ...]

    def matches_paper(self) -> bool:
        """Whether the reproduced catalog excerpt equals the paper's verbatim."""
        return tuple(name for _, name in self.excerpt) == self.paper_excerpt

    def rows(self) -> List[Tuple[int, str, str]]:
        """(index, reproduced name, paper name)."""
        return [(index, name, self.paper_excerpt[i])
                for i, (index, name) in enumerate(self.excerpt)]

    def render(self) -> str:
        """ASCII rendering of the excerpt comparison."""
        return format_table(["Index", "Catalog", "Paper"], self.rows(),
                            title=f"Table III — API feature excerpt "
                                  f"(catalog size {self.n_features})")


def run(context: ExperimentContext) -> Table3Result:
    """Report the canonical catalog's Table III excerpt."""
    catalog = context.generator.catalog
    start = TABLE_III_START_INDEX
    return Table3Result(
        n_features=len(catalog),
        excerpt=catalog.excerpt(start, start + len(TABLE_III_EXCERPT)),
        paper_excerpt=TABLE_III_EXCERPT,
    )
