"""Table IV — the substitute model's architecture and training setup."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.evaluation.reports import format_table
from repro.experiments import paper_values
from repro.experiments.context import ExperimentContext
from repro.models.substitute_model import SUBSTITUTE_LAYER_SIZES


@dataclass
class Table4Result:
    """Measured substitute architecture next to Table IV."""

    scale_name: str
    measured_layers: List[int]
    paper_layers: List[int]
    training_samples: int
    epochs: int
    batch_size: int
    learning_rate: float
    final_train_accuracy: float

    def depth_matches(self) -> bool:
        """Whether the substitute keeps the paper's 5-layer depth."""
        return len(self.measured_layers) == len(self.paper_layers)

    def rows(self) -> List[List[object]]:
        """One row per Table IV line."""
        rows: List[List[object]] = [
            ["training data", self.training_samples, paper_values.TABLE_IV["training_samples"]],
        ]
        for index, paper_width in enumerate(self.paper_layers):
            measured = (self.measured_layers[index]
                        if index < len(self.measured_layers) else "-")
            rows.append([f"layer {index + 1}", measured, paper_width])
        rows.append(["epochs", self.epochs, paper_values.TABLE_IV["epochs"]])
        rows.append(["batch size", self.batch_size, paper_values.TABLE_IV["batch_size"]])
        rows.append(["learning rate", self.learning_rate, paper_values.TABLE_IV["learning_rate"]])
        rows.append(["train accuracy", self.final_train_accuracy, "-"])
        return rows

    def render(self) -> str:
        """ASCII rendering of the comparison."""
        return format_table(["Property", "Reproduction", "Paper"], self.rows(),
                            title=f"Table IV — substitute model (scale={self.scale_name})")


def run(context: ExperimentContext) -> Table4Result:
    """Train (or reuse) the substitute and report its architecture."""
    substitute = context.substitute_model
    history = substitute.history
    return Table4Result(
        scale_name=context.scale.name,
        measured_layers=substitute.network.layer_sizes,
        paper_layers=list(SUBSTITUTE_LAYER_SIZES),
        training_samples=context.scale.train_total,
        epochs=context.scale.substitute_epochs,
        batch_size=context.scale.batch_size,
        learning_rate=context.scale.learning_rate,
        final_train_accuracy=(history.train_accuracy[-1]
                              if history is not None and history.train_accuracy else float("nan")),
    )
