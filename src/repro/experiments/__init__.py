"""Experiment drivers: one module per table / figure of the paper.

Every experiment consumes a shared :class:`~repro.experiments.context.ExperimentContext`
(which lazily builds and caches the corpus, the target model and the
substitute models so a full reproduction run trains each model exactly once)
and returns a result object with ``rows()`` and ``render()`` methods that
print the same quantities the paper reports.

Use :func:`repro.experiments.registry.run_experiment` (or the registry's
``EXPERIMENTS`` mapping) to execute them by id, e.g. ``figure3``.
"""

from repro.experiments.context import ExperimentContext
from repro.experiments.registry import EXPERIMENTS, available_experiments, run_experiment

__all__ = [
    "ExperimentContext",
    "EXPERIMENTS",
    "available_experiments",
    "run_experiment",
]
