"""Experiment drivers: one module per table / figure of the paper.

Every experiment consumes a shared :class:`~repro.experiments.context.ExperimentContext`
(which lazily builds and caches the corpus, the target model and the
substitute models so a full reproduction run trains each model exactly once)
and returns a result object with ``rows()`` and ``render()`` methods that
print the same quantities the paper reports.

Use :func:`repro.experiments.registry.run_experiment` (or the registry's
``EXPERIMENTS`` mapping) to execute them by id, e.g. ``figure3``.

Pass ``cache=ArtifactCache(...)`` (or a directory path) to
:class:`ExperimentContext` to persist the expensive artifacts across
*processes* as well: warm runs load the corpus and trained models from disk
(keyed by scale profile, seed and compute dtype — see
:mod:`repro.utils.artifact_cache` for the layout and invalidation rules)
instead of regenerating and retraining them.  The CLI exposes this as
``--cache-dir`` and the benchmark harness warms ``benchmarks/.cache`` by
default.
"""

from repro.experiments.context import ExperimentContext
from repro.experiments.registry import EXPERIMENTS, available_experiments, run_experiment

__all__ = [
    "ExperimentContext",
    "EXPERIMENTS",
    "available_experiments",
    "run_experiment",
]
