"""Figure 2 — the grey/black-box attack framework in a real-world setting.

The paper proposes (as future work) a black-box framework: the attacker has
no knowledge of the target's training data, features or model, can only
query the deployed detector for decisions, trains a substitute from those
decisions, and relies on transferability.  This experiment runs that full
pipeline on the synthetic substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.attacks.blackbox import BlackBoxAttackReport, BlackBoxFramework
from repro.attacks.constraints import PerturbationConstraints
from repro.data.oracle import LabelOracle
from repro.evaluation.reports import format_table
from repro.experiments.context import ExperimentContext


@dataclass
class Figure2Result:
    """Black-box engagement statistics."""

    report: BlackBoxAttackReport
    baseline_detection_rate: float
    theta: float
    gamma: float

    @property
    def target_detection_rate(self) -> float:
        """Target detection rate on the black-box adversarial examples."""
        return self.report.transfer.target_detection_rate

    @property
    def transfer_rate(self) -> float:
        """Transfer rate of the black-box attack."""
        return self.report.transfer.transfer_rate

    def attack_is_effective(self, margin: float = 0.1) -> bool:
        """Whether the black-box attack lowers detection below the baseline."""
        return self.target_detection_rate < self.baseline_detection_rate - margin

    def rows(self) -> List[List[object]]:
        """Summary rows."""
        return [
            ["seed set size", self.report.seed_set_size],
            ["augmentation rounds", self.report.augmentation_rounds],
            ["oracle queries", self.report.oracle_queries],
            ["substitute/oracle agreement", self.report.substitute_agreement],
            ["baseline target detection", self.baseline_detection_rate],
            ["target detection on advEx", self.target_detection_rate],
            ["transfer rate", self.transfer_rate],
            ["theta / gamma", f"{self.theta} / {self.gamma}"],
        ]

    def render(self) -> str:
        """ASCII rendering."""
        return format_table(["Property", "Value"], self.rows(),
                            title="Figure 2 — black-box attack framework")


def run(context: ExperimentContext, theta: float = 0.1, gamma: float = 0.025,
        seed_samples: Optional[int] = None, augmentation_rounds: int = 2) -> Figure2Result:
    """Run the black-box framework against the deployed target model."""
    target = context.target_model
    malware = context.attack_malware

    seed_samples = seed_samples if seed_samples is not None else max(
        64, context.scale.val_total)
    seed_set = context.corpus.validation
    if seed_set.n_samples > seed_samples:
        seed_set = seed_set.sample(seed_samples,
                                   random_state=context.seeds.seed_for("figure2:seed_set"))

    oracle = LabelOracle(target)
    framework = BlackBoxFramework(
        oracle,
        scale=context.scale,
        augmentation_rounds=augmentation_rounds,
        constraints=PerturbationConstraints(theta=theta, gamma=gamma),
        random_state=context.seeds.seed_for("figure2:framework"),
    )
    report = framework.execute(seed_set.features, malware.features)
    return Figure2Result(
        report=report,
        baseline_detection_rate=target.detection_rate(malware.features),
        theta=theta,
        gamma=gamma,
    )
