"""Figure 5 — L2 distances between malware, clean and adversarial populations.

For the grey-box attack (crafted on the substitute with the original 491
features) the paper measures three L2 distances as the attack strength
grows: malware↔adversarial, malware↔clean and clean↔adversarial, and finds
malware↔adversarial < malware↔clean < clean↔adversarial — adversarial
examples live in a blind spot far from the clean population.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.attacks.constraints import PerturbationConstraints
from repro.attacks.jsma import JsmaAttack
from repro.evaluation.distances import DistanceReport, l2_distance_report
from repro.evaluation.reports import format_table
from repro.evaluation.security_curve import paper_gamma_grid, paper_theta_grid
from repro.experiments.context import ExperimentContext


@dataclass
class Figure5Result:
    """Distance reports for the γ sweep (panel a) and θ sweep (panel b)."""

    gamma_reports: List[DistanceReport]
    theta_reports: List[DistanceReport]

    def ordering_holds_everywhere(self, skip_zero_strength: bool = True) -> bool:
        """Whether the paper's distance ordering holds at every swept point."""
        reports = self.gamma_reports + self.theta_reports
        for report in reports:
            if skip_zero_strength and (report.gamma == 0.0 or report.theta == 0.0):
                continue
            if not report.ordering_holds():
                return False
        return True

    def distances_grow_with_strength(self) -> bool:
        """Whether malware↔adversarial distance increases with attack strength."""
        def _monotonic(reports: List[DistanceReport]) -> bool:
            values = [r.malware_to_adversarial for r in reports]
            return all(b >= a - 1e-9 for a, b in zip(values, values[1:]))
        return _monotonic(self.gamma_reports) and _monotonic(self.theta_reports)

    def rows(self) -> List[List[object]]:
        """One row per swept point."""
        rows = []
        for report in self.gamma_reports + self.theta_reports:
            rows.append([report.theta, report.gamma,
                         report.malware_to_adversarial,
                         report.malware_to_clean,
                         report.clean_to_adversarial])
        return rows

    def render(self) -> str:
        """ASCII rendering of both panels."""
        headers = ["theta", "gamma", "L2(mal, adv)", "L2(mal, clean)", "L2(clean, adv)"]
        return format_table(headers, self.rows(),
                            title="Figure 5 — L2 distances in the grey-box attack")


def run(context: ExperimentContext, n_gamma_points: Optional[int] = None,
        n_theta_points: Optional[int] = None,
        max_pairs: int = 100_000) -> Figure5Result:
    """Compute the Figure 5 distance curves."""
    substitute = context.substitute_model
    malware = context.attack_malware
    clean = context.corpus.test.clean_only()
    seed = context.seeds.seed_for("figure5:pairs")
    gamma_grid = paper_gamma_grid(n_gamma_points or context.scale.sweep_points_gamma)
    theta_grid = paper_theta_grid(n_theta_points or context.scale.sweep_points_theta)

    def craft(theta: float, gamma: float):
        constraints = PerturbationConstraints(theta=theta, gamma=gamma)
        attack = JsmaAttack(substitute.network, constraints=constraints, early_stop=False)
        return attack.run(malware.features)

    gamma_reports = []
    for gamma in gamma_grid:
        result = craft(0.1, gamma)
        gamma_reports.append(l2_distance_report(
            result.original, result.adversarial, clean.features,
            theta=0.1, gamma=gamma, max_pairs=max_pairs, random_state=seed))

    theta_reports = []
    for theta in theta_grid:
        result = craft(theta, 0.005)
        theta_reports.append(l2_distance_report(
            result.original, result.adversarial, clean.features,
            theta=theta, gamma=0.005, max_pairs=max_pairs, random_state=seed))

    return Figure5Result(gamma_reports=gamma_reports, theta_reports=theta_reports)
