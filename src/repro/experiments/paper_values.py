"""The numbers the paper reports, collected in one place.

Experiment result objects embed the corresponding paper values so that
result renderings (and EXPERIMENTS.md) can show paper-vs-measured side by
side.  Absolute agreement is not expected — the substrate is synthetic — but
the qualitative orderings and the approximate factors should match.
"""

from __future__ import annotations

#: Table I — dataset sizes.
TABLE_I = {
    "train": {"total": 57170, "clean": 28594, "malware": 28576},
    "validation": {"total": 578, "clean": 280, "malware": 298},
    "test": {"total": 45028, "clean": 16154, "malware": 28874},
}

#: Table IV — substitute model architecture.
TABLE_IV = {
    "training_samples": 57170,
    "layers": [491, 1200, 1500, 1300, 2],
    "epochs": 1000,
    "batch_size": 256,
    "learning_rate": 1e-3,
    "optimizer": "adam",
}

#: Section III-A — white-box attack operating point.
WHITE_BOX = {
    "theta": 0.1,
    "gamma": 0.025,
    "added_features": 12,
    "detection_rate": 0.099,
    "evaded_malware": 26015,
    "attack_samples": 28874,
}

#: Section III-B — grey-box attack (exact 491 features).
GREY_BOX_COUNTS = {
    "theta": 0.1,
    "gamma": 0.005,
    "added_features": 2,
    "target_detection_rate": 0.147,
    "transfer_rate": 0.853,
    "evaded_malware": 24630,
}

#: Section III-B — grey-box attack with a binary-feature substitute.
GREY_BOX_BINARY = {
    "target_detection_rate": 0.6951,
    "transfer_rate": 0.3049,
}

#: Section III-B — live grey-box test (single API added to the source).
LIVE_GREY_BOX = {
    "original_confidence": 0.9843,
    "confidence_after_1": 0.8888,
    "confidence_after_8": 0.0,
    "max_repetitions": 8,
}

#: Table V — adversarial-training dataset composition.
TABLE_V = {
    "train": {"total": 53482, "clean": 26118, "malware_and_advex": 27364},
    "test": {"total": 26560, "clean": 5090, "malware": 5252, "advex": 16218},
}

#: Table VI — defense testing results (TPR / TNR per test set).
TABLE_VI = {
    "no_defense": {"clean_tnr": 0.964, "malware_tpr": 0.883, "advex_tpr": 0.304},
    "adversarial_training": {"clean_tnr": 0.995, "malware_tpr": 0.888, "advex_tpr": 0.931},
    "distillation": {"clean_tnr": 0.428, "malware_tpr": 0.573, "advex_tpr": 0.577},
    "feature_squeezing": {"clean_tnr": 0.586, "malware_tpr": 0.438, "advex_tpr": 0.554},
    "dim_reduction": {"clean_tnr": 0.674, "malware_tpr": 0.914, "advex_tpr": 0.913},
}

#: Defense hyper-parameters reported in the paper.
DEFENSE_PARAMS = {
    "distillation_temperature": 50.0,
    "pca_components": 19,
    "adv_training_theta": 0.1,
    "adv_training_gamma": 0.02,
}

#: Figure 1 — the illustrated adversarial example adds two API calls.
FIGURE_1 = {"added_api_calls": 2, "example_apis": ["destroyicon", "dllsload"]}
