"""Table V — the adversarial-training dataset composition."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.defenses.adversarial_training import AdversarialTrainingData, AdversarialTrainingDefense
from repro.evaluation.reports import format_table
from repro.experiments import paper_values
from repro.experiments.context import ExperimentContext


@dataclass
class Table5Result:
    """The measured Table V composition next to the paper's."""

    scale_name: str
    data: AdversarialTrainingData
    paper: Dict[str, Dict[str, int]]

    def rows(self) -> List[List[object]]:
        """One row per Table V line."""
        train_counts = self.data.train.class_counts()
        test_counts = self.data.test.class_counts()
        return [
            ["Training Set", self.data.train.n_samples,
             train_counts["clean"], train_counts["malware"],
             self.paper["train"]["total"]],
            ["Test Set", self.data.test.n_samples,
             test_counts["clean"], test_counts["malware"],
             self.paper["test"]["total"]],
        ]

    def render(self) -> str:
        """ASCII rendering."""
        headers = ["Dataset", "Samples", "Clean", "Malware+AdvEx", "Paper samples"]
        return format_table(headers, self.rows(),
                            title=f"Table V — adversarial training dataset "
                                  f"(scale={self.scale_name})")

    def training_set_is_balanced(self, tolerance: float = 0.25) -> bool:
        """Whether the augmented training set keeps a rough class balance."""
        counts = self.data.train.class_counts()
        total = self.data.train.n_samples
        return abs(counts["clean"] / total - 0.5) <= tolerance

    def adversarial_examples_included(self) -> bool:
        """Whether adversarial examples were injected into the training set."""
        return self.data.n_adversarial_train > 0


def run(context: ExperimentContext,
        defense: Optional[AdversarialTrainingDefense] = None) -> Table5Result:
    """Assemble the Table V datasets (without retraining the model)."""
    adversarial = context.greybox_adversarial(
        theta=paper_values.DEFENSE_PARAMS["adv_training_theta"],
        gamma=paper_values.DEFENSE_PARAMS["adv_training_gamma"])
    defense = defense if defense is not None else AdversarialTrainingDefense(
        scale=context.scale, random_state=context.seeds.seed_for("table5"))
    data = defense.build_datasets(context.corpus.train, context.corpus.test, adversarial)
    return Table5Result(scale_name=context.scale.name, data=data,
                        paper=paper_values.TABLE_V)
