"""Registry of every reproduced table and figure.

``run_experiment("figure3", context)`` executes the corresponding driver;
``available_experiments()`` lists what can be run.  The benchmark harness in
``benchmarks/`` iterates this registry so that every table and figure has a
regenerating bench target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.exceptions import ConfigurationError
from repro.experiments import (
    figure1_example,
    figure2_blackbox,
    figure3_whitebox,
    figure4_greybox,
    figure5_l2,
    live_greybox,
    table1_dataset,
    table2_logs,
    table3_features,
    table4_substitute,
    table5_advtraining,
    table6_defense,
)
from repro.experiments.context import ExperimentContext


@dataclass(frozen=True)
class ExperimentSpec:
    """Metadata for one reproducible table/figure."""

    experiment_id: str
    title: str
    runner: Callable[[ExperimentContext], object]
    paper_section: str
    kind: str  # "table" or "figure" or "live"


EXPERIMENTS: Dict[str, ExperimentSpec] = {
    spec.experiment_id: spec for spec in (
        ExperimentSpec("table1", "Dataset composition", table1_dataset.run,
                       "Section II-A, Table I", "table"),
        ExperimentSpec("table2", "Excerpt of a log file", table2_logs.run,
                       "Section II-A, Table II", "table"),
        ExperimentSpec("table3", "Excerpt of the API features", table3_features.run,
                       "Section II-A, Table III", "table"),
        ExperimentSpec("table4", "Substitute model architecture", table4_substitute.run,
                       "Section II-B, Table IV", "table"),
        ExperimentSpec("table5", "Adversarial training dataset", table5_advtraining.run,
                       "Section III-C, Table V", "table"),
        ExperimentSpec("table6", "Defense testing results", table6_defense.run,
                       "Section III-C, Table VI", "table"),
        ExperimentSpec("figure1", "Adversarial example generation", figure1_example.run,
                       "Section II-B, Figure 1", "figure"),
        ExperimentSpec("figure2", "Black-box attack framework", figure2_blackbox.run,
                       "Section II-B / IV, Figure 2", "figure"),
        ExperimentSpec("figure3", "White-box security evaluation curves", figure3_whitebox.run,
                       "Section III-A, Figure 3", "figure"),
        ExperimentSpec("figure4", "Grey-box security evaluation curves", figure4_greybox.run,
                       "Section III-B, Figure 4", "figure"),
        ExperimentSpec("figure5", "L2 distances in the grey-box attack", figure5_l2.run,
                       "Section III-B, Figure 5", "figure"),
        ExperimentSpec("live_greybox", "Live grey-box source-modification test",
                       live_greybox.run, "Section III-B", "live"),
    )
}


def available_experiments() -> List[str]:
    """Sorted list of experiment ids."""
    return sorted(EXPERIMENTS)


def run_experiment(experiment_id: str, context: Optional[ExperimentContext] = None,
                   **kwargs):
    """Run one experiment by id and return its result object."""
    if experiment_id not in EXPERIMENTS:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; expected one of {available_experiments()}"
        )
    context = context if context is not None else ExperimentContext()
    return EXPERIMENTS[experiment_id].runner(context, **kwargs)


def run_all(context: Optional[ExperimentContext] = None) -> Dict[str, object]:
    """Run every registered experiment, sharing one context."""
    context = context if context is not None else ExperimentContext()
    return {experiment_id: spec.runner(context)
            for experiment_id, spec in sorted(EXPERIMENTS.items())}
