"""Table I — dataset composition."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.evaluation.reports import format_table
from repro.experiments import paper_values
from repro.experiments.context import ExperimentContext


@dataclass
class Table1Result:
    """Measured split sizes next to the paper's Table I."""

    scale_name: str
    measured: Dict[str, Dict[str, int]]
    paper: Dict[str, Dict[str, int]]

    def rows(self) -> List[Tuple[str, int, int, int, int]]:
        """(split, measured total, measured clean, measured malware, paper total)."""
        rows = []
        for split in ("train", "validation", "test"):
            m = self.measured[split]
            rows.append((split, m["total"], m["clean"], m["malware"],
                         self.paper[split]["total"]))
        return rows

    def render(self) -> str:
        """ASCII rendering in the Table I layout."""
        headers = ["Dataset", "Samples", "Clean", "Malware", "Paper samples"]
        return format_table(headers, self.rows(),
                            title=f"Table I — dataset (scale={self.scale_name})")

    def class_balance_preserved(self, tolerance: float = 0.15) -> bool:
        """Whether each split's clean/malware ratio matches the paper's within tolerance."""
        for split in ("train", "validation", "test"):
            measured = self.measured[split]
            paper = self.paper[split]
            measured_ratio = measured["malware"] / max(measured["total"], 1)
            paper_ratio = paper["malware"] / paper["total"]
            if abs(measured_ratio - paper_ratio) > tolerance:
                return False
        return True


def run(context: ExperimentContext) -> Table1Result:
    """Generate the corpus and report its Table I composition."""
    corpus = context.corpus
    measured = {}
    for split_name, dataset in (("train", corpus.train),
                                ("validation", corpus.validation),
                                ("test", corpus.test)):
        counts = dataset.class_counts()
        measured[split_name] = {
            "total": dataset.n_samples,
            "clean": counts["clean"],
            "malware": counts["malware"],
        }
    return Table1Result(scale_name=context.scale.name, measured=measured,
                        paper=paper_values.TABLE_I)
