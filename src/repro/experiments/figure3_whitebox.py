"""Figure 3 — security evaluation curves for the white-box attack.

(a) θ = 0.1 with γ swept over [0 : 0.005 : 0.030] (0 to 14 added features);
(b) γ = 0.025 with θ swept over [0 : 0.0125 : 0.15].

The paper additionally notes that randomly adding features does not decrease
the detection rate, so each sweep also carries a random-addition baseline.

The figure is three declarative scenarios (see :func:`specs`) run through
:func:`repro.scenarios.run_scenario`; this module only supplies the specs
and the two-panel rendering.  The γ panels execute through the
trajectory-replay sweep engine (one instrumented JSMA run per curve, see
:mod:`repro.evaluation.sweep`); the random-addition control has no
trajectory and runs per point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.evaluation.reports import render_security_curve
from repro.evaluation.security_curve import (
    SecurityCurve,
    paper_gamma_grid,
    paper_theta_grid,
)
from repro.experiments import paper_values
from repro.experiments.context import ExperimentContext
from repro.scenarios import ScenarioSpec


@dataclass
class Figure3Result:
    """Both panels of Figure 3 plus the random baseline curves."""

    gamma_curve: SecurityCurve
    theta_curve: SecurityCurve
    random_gamma_curve: SecurityCurve
    baseline_detection_rate: float
    paper_operating_point: Dict[str, float]

    def operating_point_detection(self) -> float:
        """Detection rate at the paper's operating point (θ=0.1, γ=0.025)."""
        best = None
        for point in self.gamma_curve.points:
            if abs(point.gamma - self.paper_operating_point["gamma"]) < 1e-9:
                best = point.detection_rates["target"]
        if best is None and self.gamma_curve.points:
            best = self.gamma_curve.points[-1].detection_rates["target"]
        return float(best) if best is not None else float("nan")

    def attack_beats_random(self) -> bool:
        """Whether JSMA is strictly more effective than random addition."""
        jsma_min = self.gamma_curve.minimum_detection_rate("target")
        random_min = self.random_gamma_curve.minimum_detection_rate("target")
        return jsma_min < random_min - 0.1

    def render(self) -> str:
        """ASCII rendering of both panels."""
        parts = [
            render_security_curve(self.gamma_curve,
                                  title="Figure 3(a) — white-box, theta=0.1, gamma sweep"),
            "",
            render_security_curve(self.theta_curve,
                                  title="Figure 3(b) — white-box, gamma=0.025, theta sweep"),
            "",
            render_security_curve(self.random_gamma_curve,
                                  title="Figure 3(a) control — random feature addition"),
            "",
            (f"paper operating point detection rate: "
             f"{paper_values.WHITE_BOX['detection_rate']:.3f}; "
             f"reproduced: {self.operating_point_detection():.3f}; "
             f"no-attack baseline: {self.baseline_detection_rate:.3f}"),
        ]
        return "\n".join(parts)


def specs(context: ExperimentContext, n_gamma_points: Optional[int] = None,
          n_theta_points: Optional[int] = None) -> Dict[str, ScenarioSpec]:
    """The three scenarios Figure 3 consists of (keyed by panel)."""
    gamma_grid = tuple(paper_gamma_grid(n_gamma_points
                                        or context.scale.sweep_points_gamma))
    theta_grid = tuple(paper_theta_grid(n_theta_points
                                        or context.scale.sweep_points_theta))
    common = dict(model="target", scale=context.scale.name, seed=context.seed)
    return {
        "gamma": ScenarioSpec(attack="jsma", sweep="gamma", theta=0.1,
                              sweep_values=gamma_grid,
                              label="figure3(a) white-box gamma sweep", **common),
        "theta": ScenarioSpec(attack="jsma", sweep="theta", gamma=0.025,
                              sweep_values=theta_grid,
                              label="figure3(b) white-box theta sweep", **common),
        "random": ScenarioSpec(attack="random_addition",
                               attack_params={"seed_name": "figure3:random"},
                               sweep="gamma", theta=0.1, sweep_values=gamma_grid,
                               label="figure3(a) random-addition control",
                               **common),
    }


def run(context: ExperimentContext, n_gamma_points: Optional[int] = None,
        n_theta_points: Optional[int] = None,
        workers: Optional[int] = None) -> Figure3Result:
    """Run the white-box sweeps against the target model.

    ``workers`` > 1 fans the three panel scenarios out over a process pool
    (see :func:`repro.parallel.run_spec_reports`); the rendering is
    byte-identical either way under float64.
    """
    from repro.parallel.grid import run_spec_reports  # lazy: avoids an import cycle

    reports = run_spec_reports(specs(context, n_gamma_points, n_theta_points),
                               context=context, workers=workers)
    return Figure3Result(
        gamma_curve=reports["gamma"].curve,
        theta_curve=reports["theta"].curve,
        random_gamma_curve=reports["random"].curve,
        baseline_detection_rate=reports["gamma"].baseline_detection["target"],
        paper_operating_point={"theta": paper_values.WHITE_BOX["theta"],
                               "gamma": paper_values.WHITE_BOX["gamma"],
                               "detection_rate": paper_values.WHITE_BOX["detection_rate"]},
    )
