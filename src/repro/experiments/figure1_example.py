"""Figure 1 — generating one adversarial example by adding two API calls."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.attacks.constraints import PerturbationConstraints
from repro.attacks.jsma import JsmaAttack
from repro.config import CLASS_CLEAN
from repro.evaluation.reports import format_table
from repro.experiments import paper_values
from repro.experiments.context import ExperimentContext


@dataclass
class Figure1Result:
    """One malware sample, the APIs JSMA adds, and the before/after verdicts."""

    sample_id: str
    added_apis: List[str]
    added_feature_indices: List[int]
    original_malware_confidence: float
    adversarial_malware_confidence: float
    original_prediction: int
    adversarial_prediction: int
    n_features: int

    @property
    def evaded(self) -> bool:
        """Whether the adversarial example is classified clean."""
        return self.adversarial_prediction == CLASS_CLEAN

    def rows(self) -> List[List[object]]:
        """Summary rows for rendering."""
        return [
            ["sample", self.sample_id],
            ["feature vector size", self.n_features],
            ["added API calls", ", ".join(self.added_apis)],
            ["malware confidence (original)", self.original_malware_confidence],
            ["malware confidence (adversarial)", self.adversarial_malware_confidence],
            ["verdict (original)", "malware" if self.original_prediction == 1 else "clean"],
            ["verdict (adversarial)", "malware" if self.adversarial_prediction == 1 else "clean"],
        ]

    def render(self) -> str:
        """ASCII rendering of the Figure 1 narrative."""
        return format_table(["Property", "Value"], self.rows(),
                            title="Figure 1 — adversarial example generation "
                                  f"(paper adds {paper_values.FIGURE_1['added_api_calls']} API calls)")


def run(context: ExperimentContext, n_added_features: int = 2) -> Figure1Result:
    """Craft one adversarial example by adding ``n_added_features`` API calls."""
    target = context.target_model
    malware = context.attack_malware
    catalog = context.generator.catalog

    # Attack every malware sample with the tiny two-feature budget and
    # illustrate with one that actually flips (preferring the most confidently
    # detected one), exactly like the paper's Figure 1 narrative.  If none
    # flips at this budget, fall back to the most confidently detected sample.
    gamma = n_added_features / malware.n_features
    constraints = PerturbationConstraints(theta=0.1, gamma=gamma)
    attack = JsmaAttack(target.network, constraints=constraints, early_stop=False)
    batch_result = attack.run(malware.features)

    confidences = target.malware_confidence(malware.features)
    evaded = np.flatnonzero(target.predict(batch_result.adversarial) == CLASS_CLEAN)
    if evaded.size:
        index = int(evaded[np.argmax(confidences[evaded])])
    else:
        index = int(np.argmax(confidences))
    original = malware.features[index:index + 1]
    result = attack.run(original)

    changed = np.flatnonzero(np.abs(result.adversarial[0] - original[0]) > 1e-12)
    sample_id = (malware.sample_ids[index]
                 if malware.sample_ids is not None else f"malware-{index}")
    return Figure1Result(
        sample_id=sample_id,
        added_apis=[catalog.name_of(int(i)) for i in changed],
        added_feature_indices=[int(i) for i in changed],
        original_malware_confidence=float(target.malware_confidence(original)[0]),
        adversarial_malware_confidence=float(target.malware_confidence(result.adversarial)[0]),
        original_prediction=int(target.predict(original)[0]),
        adversarial_prediction=int(target.predict(result.adversarial)[0]),
        n_features=malware.n_features,
    )
