"""Table VI — defense testing results.

Five rows are reproduced: No Defense, Adversarial Training, Defensive
Distillation (T = 50), Feature Squeezing and Dimensionality Reduction
(k = 19).  Each is evaluated on three test sets — the clean test split, the
malware test split and the grey-box adversarial examples (crafted at
θ = 0.1, γ = 0.02 on the substitute) — reporting TNR on the clean set and
TPR on the malware / adversarial sets, exactly the cells Table VI fills in
(the remaining cells are ``nan``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.config import CLASS_MALWARE
from repro.data.dataset import Dataset
from repro.defenses.adversarial_training import AdversarialTrainingDefense
from repro.defenses.base import DefendedDetector, ModelBackedDetector
from repro.defenses.dim_reduction import DimensionalityReductionDefense
from repro.defenses.distillation import DefensiveDistillation
from repro.defenses.ensemble import EnsembleDefense
from repro.defenses.feature_squeezing import FeatureSqueezingDefense
from repro.evaluation.reports import render_defense_table
from repro.experiments import paper_values
from repro.experiments.context import ExperimentContext


@dataclass
class Table6Result:
    """Measured defense rates next to the paper's Table VI."""

    scale_name: str
    results: Dict[str, Dict[str, Dict[str, float]]]
    paper: Dict[str, Dict[str, float]]
    include_ensemble: bool = False

    # ------------------------------------------------------------------ #
    # Convenience accessors
    # ------------------------------------------------------------------ #
    def rate(self, defense: str, dataset: str, metric: str) -> float:
        """Look up one measured cell (e.g. ``rate("adv_training", "advex", "tpr")``)."""
        return self.results[defense][dataset][metric]

    def adversarial_training_recovers_detection(self, margin: float = 0.2) -> bool:
        """Paper claim: adversarial training raises advEx TPR far above no-defense."""
        return (self.rate("adversarial_training", "advex_test", "tpr")
                > self.rate("no_defense", "advex_test", "tpr") + margin)

    def adversarial_training_preserves_clean(self, tolerance: float = 0.05) -> bool:
        """Paper claim: adversarial training does not hurt the clean TNR."""
        return (self.rate("adversarial_training", "clean_test", "tnr")
                >= self.rate("no_defense", "clean_test", "tnr") - tolerance)

    def dim_reduction_costs_clean_accuracy(self) -> bool:
        """Paper claim: the PCA defense trades clean TNR for adversarial TPR."""
        return (self.rate("dim_reduction", "clean_test", "tnr")
                < self.rate("no_defense", "clean_test", "tnr"))

    def rows(self) -> List[List[object]]:
        """Flat rows: defense, dataset, measured TPR/TNR, paper TPR/TNR."""
        paper_lookup = {
            ("no_defense", "clean_test"): ("", self.paper["no_defense"]["clean_tnr"]),
            ("no_defense", "malware_test"): (self.paper["no_defense"]["malware_tpr"], ""),
            ("no_defense", "advex_test"): (self.paper["no_defense"]["advex_tpr"], ""),
            ("adversarial_training", "clean_test"): ("", self.paper["adversarial_training"]["clean_tnr"]),
            ("adversarial_training", "malware_test"): (self.paper["adversarial_training"]["malware_tpr"], ""),
            ("adversarial_training", "advex_test"): (self.paper["adversarial_training"]["advex_tpr"], ""),
            ("distillation", "clean_test"): ("", self.paper["distillation"]["clean_tnr"]),
            ("distillation", "malware_test"): (self.paper["distillation"]["malware_tpr"], ""),
            ("distillation", "advex_test"): (self.paper["distillation"]["advex_tpr"], ""),
            ("feature_squeezing", "clean_test"): ("", self.paper["feature_squeezing"]["clean_tnr"]),
            ("feature_squeezing", "malware_test"): (self.paper["feature_squeezing"]["malware_tpr"], ""),
            ("feature_squeezing", "advex_test"): (self.paper["feature_squeezing"]["advex_tpr"], ""),
            ("dim_reduction", "clean_test"): ("", self.paper["dim_reduction"]["clean_tnr"]),
            ("dim_reduction", "malware_test"): (self.paper["dim_reduction"]["malware_tpr"], ""),
            ("dim_reduction", "advex_test"): (self.paper["dim_reduction"]["advex_tpr"], ""),
        }
        rows = []
        for defense_name, per_dataset in self.results.items():
            for dataset_name, rates in per_dataset.items():
                paper_tpr, paper_tnr = paper_lookup.get((defense_name, dataset_name), ("", ""))
                rows.append([defense_name, dataset_name,
                             rates.get("tpr", float("nan")),
                             rates.get("tnr", float("nan")),
                             paper_tpr, paper_tnr])
        return rows

    def render(self) -> str:
        """ASCII rendering in the Table VI layout (with paper columns)."""
        from repro.evaluation.reports import format_table

        headers = ["Defense", "Dataset", "TPR", "TNR", "Paper TPR", "Paper TNR"]
        return format_table(headers, self.rows(),
                            title=f"Table VI — defense testing results "
                                  f"(scale={self.scale_name})")


def _evaluate(detector: DefendedDetector, clean: Dataset, malware: Dataset,
              advex: Dataset) -> Dict[str, Dict[str, float]]:
    """TNR on the clean set, TPR on the malware and adversarial sets."""
    return {
        "clean_test": {"tpr": float("nan"), "tnr": detector.report(clean).tnr},
        "malware_test": {"tpr": detector.report(malware).tpr, "tnr": float("nan")},
        "advex_test": {"tpr": detector.detection_rate(advex.features), "tnr": float("nan")},
    }


def run(context: ExperimentContext, include_ensemble: bool = False,
        distillation_temperature: Optional[float] = None,
        pca_components: Optional[int] = None) -> Table6Result:
    """Fit every defense and evaluate the Table VI grid."""
    corpus = context.corpus
    target = context.target_model
    clean_test = corpus.test.clean_only()
    malware_test = corpus.test.malware_only()
    advex = context.greybox_adversarial(
        theta=paper_values.DEFENSE_PARAMS["adv_training_theta"],
        gamma=paper_values.DEFENSE_PARAMS["adv_training_gamma"])

    temperature = (distillation_temperature if distillation_temperature is not None
                   else paper_values.DEFENSE_PARAMS["distillation_temperature"])
    n_components = (pca_components if pca_components is not None
                    else min(paper_values.DEFENSE_PARAMS["pca_components"],
                             corpus.train.n_features))

    results: Dict[str, Dict[str, Dict[str, float]]] = {}

    no_defense = ModelBackedDetector(target, name="no_defense")
    results["no_defense"] = _evaluate(no_defense, clean_test, malware_test, advex)

    adv_training = AdversarialTrainingDefense(
        scale=context.scale, random_state=context.seeds.seed_for("table6:advtraining"))
    adv_detector = adv_training.fit(corpus.train, corpus.test, advex,
                                    validation=corpus.validation)
    results["adversarial_training"] = _evaluate(adv_detector, clean_test, malware_test, advex)

    distillation = DefensiveDistillation(
        temperature=temperature, scale=context.scale,
        random_state=context.seeds.seed_for("table6:distillation"))
    distilled = distillation.fit(corpus.train, corpus.validation)
    results["distillation"] = _evaluate(distilled, clean_test, malware_test, advex)

    squeezing = FeatureSqueezingDefense()
    squeezed = squeezing.fit(target.network, corpus.validation)
    results["feature_squeezing"] = _evaluate(squeezed, clean_test, malware_test, advex)

    dim_reduction = DimensionalityReductionDefense(
        n_components=n_components, scale=context.scale,
        random_state=context.seeds.seed_for("table6:dimreduct"))
    reduced = dim_reduction.fit(corpus.train, corpus.validation)
    results["dim_reduction"] = _evaluate(reduced, clean_test, malware_test, advex)

    if include_ensemble:
        ensemble = EnsembleDefense(voting="average").fit([adv_detector, reduced])
        results["ensemble_advtrain_dimreduct"] = _evaluate(ensemble, clean_test,
                                                           malware_test, advex)

    return Table6Result(scale_name=context.scale.name, results=results,
                        paper=paper_values.TABLE_VI, include_ensemble=include_ensemble)
