"""Table VI — defense testing results.

Five rows are reproduced: No Defense, Adversarial Training, Defensive
Distillation (T = 50), Feature Squeezing and Dimensionality Reduction
(k = 19).  Each is evaluated on three test sets — the clean test split, the
malware test split and the grey-box adversarial examples (crafted at
θ = 0.1, γ = 0.02 on the substitute) — reporting TNR on the clean set and
TPR on the malware / adversarial sets, exactly the cells Table VI fills in
(the remaining cells are ``nan``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.evaluation.reports import render_defense_table
from repro.experiments import paper_values
from repro.experiments.context import ExperimentContext
from repro.scenarios import ScenarioSpec


@dataclass
class Table6Result:
    """Measured defense rates next to the paper's Table VI."""

    scale_name: str
    results: Dict[str, Dict[str, Dict[str, float]]]
    paper: Dict[str, Dict[str, float]]
    include_ensemble: bool = False

    # ------------------------------------------------------------------ #
    # Convenience accessors
    # ------------------------------------------------------------------ #
    def rate(self, defense: str, dataset: str, metric: str) -> float:
        """Look up one measured cell (e.g. ``rate("adv_training", "advex", "tpr")``)."""
        return self.results[defense][dataset][metric]

    def adversarial_training_recovers_detection(self, margin: float = 0.2) -> bool:
        """Paper claim: adversarial training raises advEx TPR far above no-defense."""
        return (self.rate("adversarial_training", "advex_test", "tpr")
                > self.rate("no_defense", "advex_test", "tpr") + margin)

    def adversarial_training_preserves_clean(self, tolerance: float = 0.05) -> bool:
        """Paper claim: adversarial training does not hurt the clean TNR."""
        return (self.rate("adversarial_training", "clean_test", "tnr")
                >= self.rate("no_defense", "clean_test", "tnr") - tolerance)

    def dim_reduction_costs_clean_accuracy(self) -> bool:
        """Paper claim: the PCA defense trades clean TNR for adversarial TPR."""
        return (self.rate("dim_reduction", "clean_test", "tnr")
                < self.rate("no_defense", "clean_test", "tnr"))

    def rows(self) -> List[List[object]]:
        """Flat rows: defense, dataset, measured TPR/TNR, paper TPR/TNR."""
        paper_lookup = {
            ("no_defense", "clean_test"): ("", self.paper["no_defense"]["clean_tnr"]),
            ("no_defense", "malware_test"): (self.paper["no_defense"]["malware_tpr"], ""),
            ("no_defense", "advex_test"): (self.paper["no_defense"]["advex_tpr"], ""),
            ("adversarial_training", "clean_test"): ("", self.paper["adversarial_training"]["clean_tnr"]),
            ("adversarial_training", "malware_test"): (self.paper["adversarial_training"]["malware_tpr"], ""),
            ("adversarial_training", "advex_test"): (self.paper["adversarial_training"]["advex_tpr"], ""),
            ("distillation", "clean_test"): ("", self.paper["distillation"]["clean_tnr"]),
            ("distillation", "malware_test"): (self.paper["distillation"]["malware_tpr"], ""),
            ("distillation", "advex_test"): (self.paper["distillation"]["advex_tpr"], ""),
            ("feature_squeezing", "clean_test"): ("", self.paper["feature_squeezing"]["clean_tnr"]),
            ("feature_squeezing", "malware_test"): (self.paper["feature_squeezing"]["malware_tpr"], ""),
            ("feature_squeezing", "advex_test"): (self.paper["feature_squeezing"]["advex_tpr"], ""),
            ("dim_reduction", "clean_test"): ("", self.paper["dim_reduction"]["clean_tnr"]),
            ("dim_reduction", "malware_test"): (self.paper["dim_reduction"]["malware_tpr"], ""),
            ("dim_reduction", "advex_test"): (self.paper["dim_reduction"]["advex_tpr"], ""),
        }
        rows = []
        for defense_name, per_dataset in self.results.items():
            for dataset_name, rates in per_dataset.items():
                paper_tpr, paper_tnr = paper_lookup.get((defense_name, dataset_name), ("", ""))
                rows.append([defense_name, dataset_name,
                             rates.get("tpr", float("nan")),
                             rates.get("tnr", float("nan")),
                             paper_tpr, paper_tnr])
        return rows

    def render(self) -> str:
        """ASCII rendering in the Table VI layout (with paper columns)."""
        from repro.evaluation.reports import format_table

        headers = ["Defense", "Dataset", "TPR", "TNR", "Paper TPR", "Paper TNR"]
        return format_table(headers, self.rows(),
                            title=f"Table VI — defense testing results "
                                  f"(scale={self.scale_name})")


def specs(context: ExperimentContext, include_ensemble: bool = False,
          distillation_temperature: Optional[float] = None,
          pca_components: Optional[int] = None) -> Dict[str, ScenarioSpec]:
    """One scenario per Table VI row (keyed by the table's row name).

    Every row is the same grey-box attack — full-budget JSMA crafted on the
    substitute at the paper's (θ=0.1, γ=0.02) operating point — against a
    different registered defense; the engine's ``defense_eval`` cells are
    exactly the TNR/TPR entries Table VI fills in.
    """
    distillation_params: Dict[str, object] = {}
    if distillation_temperature is not None:
        distillation_params["temperature"] = distillation_temperature
    dim_reduction_params: Dict[str, object] = {}
    if pca_components is not None:
        dim_reduction_params["n_components"] = pca_components

    common = dict(
        attack="jsma", attack_params={"early_stop": False}, model="substitute",
        theta=paper_values.DEFENSE_PARAMS["adv_training_theta"],
        gamma=paper_values.DEFENSE_PARAMS["adv_training_gamma"],
        scale=context.scale.name, seed=context.seed)
    rows = {
        "no_defense": ScenarioSpec(defense="none", **common),
        "adversarial_training": ScenarioSpec(defense="adversarial_training",
                                             **common),
        "distillation": ScenarioSpec(defense="distillation",
                                     defense_params=distillation_params, **common),
        "feature_squeezing": ScenarioSpec(defense="feature_squeezing", **common),
        "dim_reduction": ScenarioSpec(defense="dim_reduction",
                                      defense_params=dim_reduction_params,
                                      **common),
    }
    if include_ensemble:
        # The combination the paper's discussion proposes.  Members resolve
        # through the registry's per-context memo, so the fits above are
        # reused rather than retrained.
        rows["ensemble_advtrain_dimreduct"] = ScenarioSpec(
            defense="ensemble",
            defense_params={"voting": "average",
                            "members": ({"defense": "adversarial_training"},
                                        {"defense": "dim_reduction",
                                         "params": dim_reduction_params})},
            **common)
    return rows


def run(context: ExperimentContext, include_ensemble: bool = False,
        distillation_temperature: Optional[float] = None,
        pca_components: Optional[int] = None,
        workers: Optional[int] = None) -> Table6Result:
    """Fit every defense and evaluate the Table VI grid.

    ``workers`` > 1 fans the per-row scenarios (one defense fit each) out
    over a process pool — the defense fits are the expensive, embarrassingly
    parallel part of this table.
    """
    from repro.parallel.grid import run_spec_reports  # lazy: avoids an import cycle

    spec_map = specs(context, include_ensemble, distillation_temperature,
                     pca_components)
    results = {row_name: report.defense_eval
               for row_name, report in run_spec_reports(
                   spec_map, context=context, workers=workers).items()}

    return Table6Result(scale_name=context.scale.name, results=results,
                        paper=paper_values.TABLE_VI, include_ensemble=include_ensemble)
