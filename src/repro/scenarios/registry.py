"""Decorator-driven registries for attacks and defenses.

The paper's contribution is a grid — {white-box, grey-box, black-box}
attacks x {no defense, squeezing, distillation, ensemble, adversarial
training, dim-reduction} defenses — and this module makes that grid
*explicit*: every attack and defense class registers itself under a stable
id with a typed parameter schema, so any consumer (the scenario engine, the
CLI, the serving registry, sweep harnesses) can resolve "any attack vs any
defense" by name instead of hand-wiring constructors.

Registration happens where the class is defined::

    @register_attack("jsma", params=(Param("early_stop", "bool", True), ...))
    class JsmaAttack(Attack):
        ...

The decorator also *stamps* the registry id onto ``cls.name``, so every
:class:`~repro.attacks.base.AttackResult` carries the id it was produced
under (``attack_name`` can never be the generic ``"attack"`` placeholder for
a registered attack).

This module deliberately imports nothing heavy (only the exceptions module),
so attack/defense modules can import it without cycles; the scenario engine
lives in :mod:`repro.scenarios.runner`.
"""

from __future__ import annotations

import importlib
import json
import weakref
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError

__all__ = [
    "Param",
    "RegistryEntry",
    "ComponentRegistry",
    "ATTACKS",
    "DEFENSES",
    "register_attack",
    "register_defense",
    "build_defense",
    "ensure_registries",
]


@dataclass(frozen=True)
class Param:
    """One typed, documented parameter of a registered component.

    ``kind`` is a small closed vocabulary (``"int"``, ``"float"``,
    ``"bool"``, ``"str"``, ``"list"``) used both for validation and for the
    CLI's ``list-attacks`` / ``list-defenses`` schema rendering.
    """

    name: str
    kind: str
    default: object
    help: str = ""
    choices: Optional[Tuple[object, ...]] = None
    optional: bool = False

    _KINDS = ("int", "float", "bool", "str", "list")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ConfigurationError(
                f"parameter {self.name!r}: unknown kind {self.kind!r}; "
                f"expected one of {self._KINDS}")

    def validate(self, value: object) -> object:
        """Coerce and validate ``value``; raise ConfigurationError on mismatch."""
        if value is None:
            if self.optional or self.default is None:
                return None
            raise ConfigurationError(f"parameter {self.name!r} may not be None")
        if self.kind == "bool":
            if not isinstance(value, bool):
                raise ConfigurationError(
                    f"parameter {self.name!r} must be a bool, got {value!r}")
            coerced: object = value
        elif self.kind == "int":
            if isinstance(value, bool) or not isinstance(value, int):
                raise ConfigurationError(
                    f"parameter {self.name!r} must be an int, got {value!r}")
            coerced = int(value)
        elif self.kind == "float":
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ConfigurationError(
                    f"parameter {self.name!r} must be a number, got {value!r}")
            coerced = float(value)
        elif self.kind == "str":
            if not isinstance(value, str):
                raise ConfigurationError(
                    f"parameter {self.name!r} must be a string, got {value!r}")
            coerced = value
        else:  # "list"
            if isinstance(value, (str, bytes)) or not isinstance(value, Sequence):
                raise ConfigurationError(
                    f"parameter {self.name!r} must be a list/tuple, got {value!r}")
            coerced = tuple(value)
        if self.choices is not None and coerced not in self.choices:
            raise ConfigurationError(
                f"parameter {self.name!r} must be one of {list(self.choices)}, "
                f"got {coerced!r}")
        return coerced

    def describe(self) -> str:
        """Compact ``name=default (kind)`` schema cell for CLI listings."""
        rendered = f"{self.name}={self.default!r}:{self.kind}"
        if self.choices is not None:
            rendered += f"{{{','.join(str(c) for c in self.choices)}}}"
        return rendered


@dataclass
class RegistryEntry:
    """One registered component: id, class, parameter schema and factory."""

    entry_id: str
    cls: type
    params: Tuple[Param, ...]
    factory: Callable
    kind: str
    summary: str
    aliases: Tuple[str, ...] = ()

    def resolve_params(self, overrides: Optional[Mapping[str, object]] = None
                       ) -> Dict[str, object]:
        """Defaults merged with validated ``overrides``.

        Unknown parameter names raise :class:`ConfigurationError` (listing
        the valid schema), so scenario specs fail loudly instead of silently
        ignoring a typo.
        """
        schema = {param.name: param for param in self.params}
        resolved = {param.name: param.default for param in self.params}
        for name, value in dict(overrides or {}).items():
            if name not in schema:
                raise ConfigurationError(
                    f"{self.kind} {self.entry_id!r} has no parameter {name!r}; "
                    f"valid parameters: {sorted(schema)}")
            resolved[name] = schema[name].validate(value)
        return resolved

    def schema(self) -> str:
        """Space-separated ``name=default:kind`` rendering of the params."""
        return " ".join(param.describe() for param in self.params) or "(no params)"


class ComponentRegistry:
    """Id -> :class:`RegistryEntry` mapping with aliases and class lookup."""

    def __init__(self, kind_label: str) -> None:
        self.kind_label = kind_label
        self._entries: Dict[str, RegistryEntry] = {}
        self._aliases: Dict[str, str] = {}

    # -------------------------------------------------------------- #
    # Registration
    # -------------------------------------------------------------- #
    def register(self, entry_id: str, cls: type, *, params: Sequence[Param] = (),
                 factory: Callable, kind: Optional[str] = None,
                 aliases: Sequence[str] = (), summary: Optional[str] = None
                 ) -> RegistryEntry:
        if not entry_id or not isinstance(entry_id, str):
            raise ConfigurationError(
                f"{self.kind_label} id must be a non-empty string, got {entry_id!r}")
        for name in (entry_id, *aliases):
            if name in self._entries or name in self._aliases:
                raise ConfigurationError(
                    f"duplicate {self.kind_label} id/alias {name!r}")
        if self.entry_for_class(cls) is not None:
            raise ConfigurationError(
                f"{cls.__name__} is already registered as "
                f"{self.entry_for_class(cls).entry_id!r}")
        names = {param.name for param in params}
        if len(names) != len(params):
            raise ConfigurationError(
                f"{self.kind_label} {entry_id!r} declares duplicate parameters")
        entry = RegistryEntry(
            entry_id=entry_id, cls=cls, params=tuple(params), factory=factory,
            kind=kind or self.kind_label,
            summary=summary or _first_doc_line(cls), aliases=tuple(aliases))
        self._entries[entry_id] = entry
        for alias in aliases:
            self._aliases[alias] = entry_id
        return entry

    # -------------------------------------------------------------- #
    # Lookup
    # -------------------------------------------------------------- #
    def get(self, entry_id: str) -> RegistryEntry:
        """Resolve an id or alias to its entry (raising on unknown names)."""
        canonical = self._aliases.get(entry_id, entry_id)
        if canonical not in self._entries:
            raise ConfigurationError(
                f"unknown {self.kind_label} {entry_id!r}; "
                f"registered: {self.available()}")
        return self._entries[canonical]

    def __contains__(self, entry_id: str) -> bool:
        return entry_id in self._entries or entry_id in self._aliases

    def available(self) -> List[str]:
        """Sorted canonical ids."""
        return sorted(self._entries)

    def entries(self) -> List[RegistryEntry]:
        """Entries sorted by id."""
        return [self._entries[entry_id] for entry_id in self.available()]

    def entry_for_class(self, cls: type) -> Optional[RegistryEntry]:
        """The entry registered for exactly ``cls`` (None when unregistered)."""
        for entry in self._entries.values():
            if entry.cls is cls:
                return entry
        return None


def _first_doc_line(cls: type) -> str:
    doc = (cls.__doc__ or "").strip()
    return doc.splitlines()[0] if doc else cls.__name__


#: The two registries every scenario resolves through.
ATTACKS = ComponentRegistry("attack")
DEFENSES = ComponentRegistry("defense")


def _default_attack_factory(cls: type, network, constraints, params: Mapping,
                            context) -> object:
    """Construct ``cls(network, constraints=..., **params)`` (the common shape)."""
    return cls(network, constraints=constraints, **dict(params))


def register_attack(attack_id: str, *, params: Sequence[Param] = (),
                    factory: Optional[Callable] = None, kind: str = "attack",
                    aliases: Sequence[str] = (), summary: Optional[str] = None):
    """Class decorator registering an attack under ``attack_id``.

    The decorator stamps ``cls.name = attack_id`` so every
    :class:`~repro.attacks.base.AttackResult` the attack packages carries its
    registry id (never the base-class ``"attack"`` placeholder).

    ``factory(cls, network, constraints, params, context)`` builds a ready
    attack; the default passes ``params`` straight to the constructor.
    ``kind="live"`` marks source-level attacks the scenario engine runs
    through the live-sandbox flow instead of the feature-matrix flow.
    """
    def decorator(cls: type) -> type:
        cls.name = attack_id
        ATTACKS.register(attack_id, cls, params=params,
                         factory=factory or _default_attack_factory,
                         kind=kind, aliases=aliases, summary=summary)
        return cls
    return decorator


def register_defense(defense_id: str, *, params: Sequence[Param] = (),
                     fitter: Callable, aliases: Sequence[str] = (),
                     summary: Optional[str] = None):
    """Class decorator registering a defense under ``defense_id``.

    ``fitter(cls, context, params, model=None)`` fits the defense from the
    defender's assets on an
    :class:`~repro.experiments.context.ExperimentContext` and returns a
    :class:`~repro.defenses.base.DefendedDetector`.  ``model`` optionally
    overrides the detector being defended (the serving CLI passes the served
    bundle's model so wrap-style defenses guard the endpoint actually being
    served); retraining defenses ignore it.
    """
    def decorator(cls: type) -> type:
        cls.name = defense_id
        DEFENSES.register(defense_id, cls, params=params, factory=fitter,
                          kind="defense", aliases=aliases, summary=summary)
        return cls
    return decorator


# ------------------------------------------------------------------ #
# Defense resolution (with per-context memoisation)
# ------------------------------------------------------------------ #
#: context -> {(defense id, canonical params): fitted detector}.  Weakly
#: keyed so contexts (and the models their detectors hold) are collectable.
_FITTED: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _params_key(resolved: Mapping[str, object]) -> str:
    return json.dumps(resolved, sort_keys=True, default=str)


def build_defense(defense_id: str, context, params: Optional[Mapping] = None,
                  model=None):
    """Fit (or reuse) the defended detector ``defense_id`` on ``context``.

    Fits are memoised per context and resolved-parameter set, so a Table VI
    run and an ensemble referencing the same member share one expensive fit
    (exactly as the hand-wired drivers shared detector objects).  Passing a
    ``model`` override skips the memo — the fit is specific to that bundle.
    """
    entry = DEFENSES.get(defense_id)
    resolved = entry.resolve_params(params)
    if model is not None:
        return entry.factory(entry.cls, context, resolved, model)
    memo = _FITTED.setdefault(context, {})
    key = (entry.entry_id, _params_key(resolved))
    if key not in memo:
        memo[key] = entry.factory(entry.cls, context, resolved, None)
    return memo[key]


def ensure_registries() -> None:
    """Import the attack and defense packages so every decorator has run.

    Consumers that resolve by id before touching the classes (the CLI's
    ``--defense`` choices, ``list-attacks``) call this instead of importing
    the packages directly.
    """
    importlib.import_module("repro.attacks")
    importlib.import_module("repro.defenses")
