"""The declarative scenario description: one attack vs one defense.

A :class:`ScenarioSpec` is a frozen value object naming everything one run
of the paper's grid needs — attack id + params, defense id + params, the
crafting surface, the scale/seed/dtype and the (θ, γ) constraint operating
point — and nothing else.  It round-trips through JSON (``from_dict`` /
``to_dict`` / ``from_json`` / ``to_json``) so specs travel over the CLI,
config files and the serving registry unchanged, and it expands grids
(:meth:`ScenarioSpec.grid`) so "every attack vs every defense" is one call.

The spec is *inert*: resolving ids against the registries and executing the
run is :func:`repro.scenarios.runner.run_scenario`'s job.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.exceptions import ConfigurationError

__all__ = ["ScenarioSpec"]

#: Crafting surfaces a scenario can target.  ``target`` is the white-box
#: setting (the attacker crafts on the deployed detector), ``substitute``
#: the grey-box setting (craft on the attacker's Table IV model, replay on
#: the target) and ``binary_substitute`` the reduced-knowledge grey-box
#: variant where the attacker only knows the API names.
MODEL_KINDS = ("target", "substitute", "binary_substitute")

_SWEEPS = (None, "gamma", "theta")

_SWEEP_STRATEGIES = (None, "replay", "per_point")


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative cell of the attack x defense grid.

    Attributes
    ----------
    attack / attack_params:
        Registry id (see ``repro scenarios`` / ``repro list-attacks``) and
        parameter overrides validated against the entry's schema.
    defense / defense_params:
        Defense registry id and parameter overrides.
    model:
        Crafting surface, one of :data:`MODEL_KINDS`.
    scale:
        Scale-profile name (``None`` follows the ambient context/default).
    seed / dtype:
        Master seed and compute dtype for a context built from this spec
        (ignored when an existing context is supplied to ``run_scenario``).
    theta / gamma:
        The constraint operating point (per-feature perturbation magnitude
        and fraction of perturbable features).
    sweep / sweep_values:
        ``"gamma"`` or ``"theta"`` turns the run into a security-curve sweep
        over ``sweep_values`` (``None`` uses the paper grid at the scale
        profile's resolution); the other constraint parameter stays fixed at
        ``theta``/``gamma``.
    sweep_strategy:
        How γ-sweeps execute: ``"replay"`` (the default when ``None``)
        records one full-budget attack trajectory and slices it per
        operating point; ``"per_point"`` re-runs the attack at every point.
        Results are byte-identical under float64; θ-sweeps ignore this.
    robustness_budget:
        When set, additionally computes the per-sample minimal-evasion-budget
        distribution up to this many added features.
    label:
        Optional display name (grid expansion fills one in).
    """

    attack: str = "jsma"
    defense: str = "none"
    model: str = "target"
    scale: Optional[str] = None
    seed: int = 0
    dtype: Optional[str] = None
    theta: float = 0.1
    gamma: float = 0.02
    sweep: Optional[str] = None
    sweep_values: Optional[Tuple[float, ...]] = None
    sweep_strategy: Optional[str] = None
    robustness_budget: Optional[int] = None
    attack_params: Mapping[str, object] = field(default_factory=dict)
    defense_params: Mapping[str, object] = field(default_factory=dict)
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.model not in MODEL_KINDS:
            raise ConfigurationError(
                f"model must be one of {MODEL_KINDS}, got {self.model!r}")
        if self.sweep not in _SWEEPS:
            raise ConfigurationError(
                f"sweep must be one of {_SWEEPS}, got {self.sweep!r}")
        if self.theta < 0 or self.gamma < 0:
            raise ConfigurationError(
                f"theta and gamma must be non-negative, got "
                f"theta={self.theta}, gamma={self.gamma}")
        if self.robustness_budget is not None and self.robustness_budget < 1:
            raise ConfigurationError(
                f"robustness_budget must be >= 1, got {self.robustness_budget}")
        if self.sweep_values is not None and self.sweep is None:
            raise ConfigurationError("sweep_values requires sweep to be set")
        if self.sweep_strategy not in _SWEEP_STRATEGIES:
            raise ConfigurationError(
                f"sweep_strategy must be one of {_SWEEP_STRATEGIES}, "
                f"got {self.sweep_strategy!r}")
        if self.sweep_strategy is not None and self.sweep is None:
            raise ConfigurationError("sweep_strategy requires sweep to be set")
        # Normalise mutable inputs so equality and serialisation are stable
        # (explicit nulls in hand-written spec files mean "no overrides").
        object.__setattr__(self, "theta", float(self.theta))
        object.__setattr__(self, "gamma", float(self.gamma))
        object.__setattr__(self, "seed", int(self.seed))
        object.__setattr__(self, "attack_params", dict(self.attack_params or {}))
        object.__setattr__(self, "defense_params", dict(self.defense_params or {}))
        if self.sweep_values is not None:
            object.__setattr__(self, "sweep_values",
                               tuple(float(v) for v in self.sweep_values))

    # -------------------------------------------------------------- #
    # Serialisation
    # -------------------------------------------------------------- #
    def to_dict(self) -> Dict[str, object]:
        """JSON-able mapping; defaults are included so specs are explicit."""
        return {
            "attack": self.attack,
            "attack_params": dict(self.attack_params),
            "defense": self.defense,
            "defense_params": dict(self.defense_params),
            "model": self.model,
            "scale": self.scale,
            "seed": self.seed,
            "dtype": self.dtype,
            "theta": self.theta,
            "gamma": self.gamma,
            "sweep": self.sweep,
            "sweep_values": (list(self.sweep_values)
                             if self.sweep_values is not None else None),
            "sweep_strategy": self.sweep_strategy,
            "robustness_budget": self.robustness_budget,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ScenarioSpec":
        """Inverse of :meth:`to_dict`; unknown keys raise ConfigurationError."""
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"scenario spec must be a mapping, got {type(data).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown scenario spec keys {unknown}; valid keys: {sorted(known)}")
        payload = dict(data)
        if payload.get("sweep_values") is not None:
            payload["sweep_values"] = tuple(payload["sweep_values"])
        return cls(**payload)

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The spec as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Parse a spec from a JSON document."""
        try:
            data = json.loads(text)
        except ValueError as error:
            raise ConfigurationError(f"invalid scenario spec JSON: {error}") from error
        return cls.from_dict(data)

    def with_overrides(self, **changes) -> "ScenarioSpec":
        """A copy with ``changes`` applied (frozen-dataclass ``replace``)."""
        return replace(self, **changes)

    # -------------------------------------------------------------- #
    # Grid expansion
    # -------------------------------------------------------------- #
    @classmethod
    def grid(cls, attacks: Sequence[Union[str, Mapping]] = ("jsma",),
             defenses: Sequence[Union[str, Mapping]] = ("none",),
             **common) -> List["ScenarioSpec"]:
        """Expand an attack x defense grid into concrete specs.

        ``attacks`` / ``defenses`` entries are either plain registry ids or
        mappings ``{"id": ..., "params": {...}}``; every remaining keyword is
        forwarded to each spec (scale, seed, theta, ...).  The grid iterates
        defenses fastest, so all cells of one attack are adjacent::

            specs = ScenarioSpec.grid(
                attacks=["jsma", {"id": "fgsm", "params": {"epsilon": 0.2}}],
                defenses=["none", "feature_squeezing"],
                scale="tiny", theta=0.1, gamma=0.02)
        """
        def parse(item: Union[str, Mapping], what: str) -> Tuple[str, Dict]:
            if isinstance(item, str):
                return item, {}
            if isinstance(item, Mapping):
                unknown = sorted(set(item) - {"id", "params"})
                if unknown:
                    raise ConfigurationError(
                        f"{what} grid entry has unknown keys {unknown}; "
                        f"expected 'id' and optional 'params'")
                if "id" not in item:
                    raise ConfigurationError(f"{what} grid entry needs an 'id'")
                return str(item["id"]), dict(item.get("params") or {})
            raise ConfigurationError(
                f"{what} grid entries must be ids or mappings, got {item!r}")

        specs: List[ScenarioSpec] = []
        for attack_item in attacks:
            attack_id, attack_params = parse(attack_item, "attack")
            for defense_item in defenses:
                defense_id, defense_params = parse(defense_item, "defense")
                specs.append(cls(
                    attack=attack_id, attack_params=attack_params,
                    defense=defense_id, defense_params=defense_params,
                    label=f"{attack_id} vs {defense_id}", **common))
        return specs

    def describe(self) -> str:
        """One-line human rendering used by reports and logs."""
        parts = [f"attack={self.attack}"]
        if self.attack_params:
            parts.append(f"attack_params={self.attack_params}")
        parts.append(f"defense={self.defense}")
        if self.defense_params:
            parts.append(f"defense_params={self.defense_params}")
        parts.append(f"model={self.model}")
        if self.sweep:
            parts.append(f"sweep={self.sweep}")
        parts.append(f"theta={self.theta:g}")
        parts.append(f"gamma={self.gamma:g}")
        return " ".join(parts)
