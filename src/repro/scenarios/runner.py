"""The scenario engine: resolve a :class:`ScenarioSpec` and run it.

``run_scenario(spec, context=None)`` is the one call behind which the whole
attack x defense grid lives:

1. the attack and defense ids are resolved against the registries and their
   parameters validated against the per-entry schemas;
2. artifacts (corpus, trained models, cached adversarial sets) come from an
   :class:`~repro.experiments.context.ExperimentContext`, so scenarios share
   the same lazy/per-process/artifact-cache reuse — and the same dtype
   scoping — as the experiment drivers;
3. the result is a typed :class:`ScenarioReport` unifying the fragments the
   drivers used to juggle by hand: the raw
   :class:`~repro.attacks.base.AttackResult`, the
   :class:`~repro.evaluation.security_curve.SecurityCurve` for sweeps, the
   :class:`~repro.evaluation.robustness.RobustnessReport` distribution, the
   Table VI defense cells and the live-attack trace, with ``summary()`` /
   ``to_json()`` / ``render()`` renderers.

The figure/table drivers, the CLI's ``run-scenario`` and the serving
registry are all thin clients of this module.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.attacks.base import AttackResult
from repro.attacks.constraints import PerturbationConstraints
from repro.config import CLASS_CLEAN, CLASS_MALWARE, get_profile
from repro.evaluation.reports import format_table, render_security_curve
from repro.evaluation.robustness import (
    RobustnessReport,
    minimal_evasion_budget,
    robustness_from_trajectory,
)
from repro.evaluation.security_curve import (
    SecurityCurve,
    paper_gamma_grid,
    paper_theta_grid,
    theta_sweep,
)
from repro.evaluation.sweep import ReplaySweep, dispatch_gamma_sweep
from repro.exceptions import ConfigurationError
from repro.nn.metrics import detection_rate
from repro.scenarios.registry import (
    ATTACKS,
    DEFENSES,
    build_defense,
    ensure_registries,
)
from repro.scenarios.spec import ScenarioSpec

__all__ = ["ScenarioReport", "run_scenario"]

# Registration is decorator-driven; make sure every attack/defense module
# has been imported before the first resolution.
ensure_registries()


@dataclass
class ScenarioReport:
    """Everything one scenario run produced, in one typed container.

    Exactly one of the three payload shapes is populated, depending on the
    spec: ``curve`` for sweeps, ``attack_result`` + ``defense_eval`` for
    operating-point runs, ``live_trace`` for live source-modification runs.
    ``robustness`` rides along when the spec asked for it.
    """

    spec: ScenarioSpec
    scale: str
    seed: int
    dtype: str
    attack_name: str
    defense_name: str
    detector_name: Optional[str]
    elapsed_s: float
    attack_result: Optional[AttackResult] = None
    curve: Optional[SecurityCurve] = None
    robustness: Optional[RobustnessReport] = None
    live_trace: Optional[object] = None
    #: Detection rate per evaluation surface on the *adversarial* examples.
    detection: Dict[str, float] = field(default_factory=dict)
    #: Detection rate per evaluation surface on the *unmodified* malware.
    baseline_detection: Dict[str, float] = field(default_factory=dict)
    #: Table VI cells: dataset -> {"tpr": ..., "tnr": ...}.
    defense_eval: Optional[Dict[str, Dict[str, float]]] = None

    # -------------------------------------------------------------- #
    # Accessors
    # -------------------------------------------------------------- #
    @property
    def transfer_rate(self) -> Optional[float]:
        """1 - target detection rate on adversarial examples (grey-box runs)."""
        if self.spec.model == "target" or "target" not in self.detection:
            return None
        return 1.0 - self.detection["target"]

    def summary(self, include_timing: bool = True) -> Dict[str, object]:
        """Flat numeric summary (the fields experiment tables aggregate).

        ``include_timing=False`` drops the wall-clock field — the *only*
        non-deterministic one — leaving the canonical payload the parallel
        grid compares byte-for-byte against serial execution.
        """
        summary: Dict[str, object] = {
            "attack": self.attack_name,
            "defense": self.defense_name,
            "model": self.spec.model,
            "scale": self.scale,
            "seed": self.seed,
            "dtype": self.dtype,
            "theta": self.spec.theta,
            "gamma": self.spec.gamma,
        }
        if include_timing:
            summary["elapsed_s"] = self.elapsed_s
        if self.attack_result is not None:
            summary.update(self.attack_result.summary())
        for name, rate in self.detection.items():
            summary[f"detection_rate[{name}]"] = rate
        for name, rate in self.baseline_detection.items():
            summary[f"baseline_detection_rate[{name}]"] = rate
        if self.transfer_rate is not None:
            summary["transfer_rate"] = self.transfer_rate
        if self.curve is not None:
            for name in self.curve.model_names():
                summary[f"minimum_detection_rate[{name}]"] = \
                    self.curve.minimum_detection_rate(name)
        if self.robustness is not None:
            for key, value in self.robustness.summary().items():
                summary[f"robustness[{key}]"] = value
        if self.defense_eval is not None:
            for dataset, rates in self.defense_eval.items():
                for metric, value in rates.items():
                    if not (isinstance(value, float) and np.isnan(value)):
                        summary[f"{dataset}_{metric}"] = value
        if self.live_trace is not None:
            summary["original_confidence"] = self.live_trace.original_confidence
            summary["final_confidence"] = self.live_trace.final_confidence
        return summary

    def to_dict(self, include_timing: bool = True) -> Dict[str, object]:
        """JSON-able report (raw feature matrices are deliberately excluded).

        ``nan`` cells (e.g. the TPR of a clean-only dataset) become ``None``
        so the payload is strict RFC-8259 JSON, not Python's ``NaN`` dialect.
        ``include_timing=False`` omits ``elapsed_s``, making the document a
        deterministic function of (spec, scale, seed, dtype) under float64 —
        the form serial-vs-parallel byte-parity is asserted on.
        """
        payload: Dict[str, object] = {
            "spec": self.spec.to_dict(),
            "scale": self.scale,
            "seed": self.seed,
            "dtype": self.dtype,
            "attack": self.attack_name,
            "defense": self.defense_name,
            "detector": self.detector_name,
            "detection": dict(self.detection),
            "baseline_detection": dict(self.baseline_detection),
        }
        if include_timing:
            payload["elapsed_s"] = round(self.elapsed_s, 6)
        if self.attack_result is not None:
            payload["attack_summary"] = self.attack_result.summary()
        if self.transfer_rate is not None:
            payload["transfer_rate"] = self.transfer_rate
        if self.curve is not None:
            payload["curve"] = {
                "swept_parameter": self.curve.swept_parameter,
                "fixed_value": self.curve.fixed_value,
                "attack_name": self.curve.attack_name,
                "points": self.curve.as_rows(),
            }
        if self.robustness is not None:
            payload["robustness"] = self.robustness.summary()
        if self.defense_eval is not None:
            payload["defense_eval"] = self.defense_eval
        if self.live_trace is not None:
            payload["live_trace"] = {
                "sample_id": self.live_trace.sample_id,
                "injected_api": self.live_trace.injected_api,
                "original_confidence": self.live_trace.original_confidence,
                "final_confidence": self.live_trace.final_confidence,
                "rows": self.live_trace.rows(),
            }
        return _without_nans(payload)

    def to_json(self, indent: Optional[int] = 2,
                include_timing: bool = True) -> str:
        """The report as a JSON document (see :meth:`to_dict`)."""
        import json

        return json.dumps(self.to_dict(include_timing=include_timing),
                          indent=indent, sort_keys=True)

    def render(self) -> str:
        """Human-readable rendering (what ``repro run-scenario`` prints)."""
        lines = [
            f"scenario: {self.spec.describe()}",
            f"context: scale={self.scale} seed={self.seed} dtype={self.dtype} "
            f"elapsed={self.elapsed_s:.2f}s",
        ]
        if self.live_trace is not None:
            rows = [[row["added_calls"], row["confidence"], row["detected"]]
                    for row in self.live_trace.rows()]
            lines.append(format_table(
                ["added calls", "engine confidence", "detected"], rows,
                title=f"live attack — injected {self.live_trace.injected_api!r} "
                      f"into {self.live_trace.sample_id}"))
            return "\n".join(lines)
        if self.curve is not None:
            lines.append(render_security_curve(
                self.curve,
                title=f"security curve — {self.attack_name}, "
                      f"{self.curve.swept_parameter} sweep"))
            baseline = ", ".join(f"{name}={rate:.3f}"
                                 for name, rate in sorted(self.baseline_detection.items()))
            lines.append(f"no-attack baseline detection: {baseline}")
            return "\n".join(lines)
        if self.attack_result is not None:
            summary = self.attack_result.summary()
            lines.append(
                f"attack: evasion {summary['evasion_rate']:.3f} on the crafting "
                f"model, mean L2 {summary['mean_l2_distance']:.3f}, "
                f"mean perturbed features {summary['mean_perturbed_features']:.1f}")
            for name in sorted(self.detection):
                lines.append(
                    f"  detection[{name}]: {self.detection[name]:.3f} "
                    f"(baseline {self.baseline_detection.get(name, float('nan')):.3f})")
            if self.transfer_rate is not None:
                lines.append(f"  transfer rate onto target: {self.transfer_rate:.3f}")
        if self.defense_eval is not None:
            rows = []
            for dataset, rates in self.defense_eval.items():
                rows.append([dataset, rates.get("tpr", float("nan")),
                             rates.get("tnr", float("nan"))])
            lines.append(format_table(
                ["Dataset", "TPR", "TNR"], rows,
                title=f"defense evaluation — {self.detector_name or self.defense_name}"))
        if self.robustness is not None:
            rob = self.robustness.summary()
            lines.append(
                f"robustness: {rob['evadable_fraction']:.3f} evadable within "
                f"{self.robustness.max_features} features "
                f"(median budget {rob['median_budget']:.1f}, "
                f"{rob['evadable_with_1_feature']:.3f} with one feature)")
        return "\n".join(lines)


# ------------------------------------------------------------------ #
# Engine internals
# ------------------------------------------------------------------ #
def _without_nans(value):
    """Recursively replace float NaNs with None (strict-JSON payloads)."""
    if isinstance(value, dict):
        return {key: _without_nans(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_without_nans(item) for item in value]
    if isinstance(value, float) and np.isnan(value):
        return None
    return value


def _crafting_network(context, model_kind: str):
    if model_kind == "target":
        return context.target_model.network
    if model_kind == "substitute":
        return context.substitute_model.network
    if model_kind == "binary_substitute":
        return context.binary_substitute.network
    raise ConfigurationError(f"unknown crafting surface {model_kind!r}")


def _canonical_greybox(spec: ScenarioSpec, entry, params: Mapping[str, object]) -> bool:
    """Whether the crafted set is exactly the cached grey-box JSMA artifact.

    ``ExperimentContext.greybox_adversarial`` persists full-budget JSMA sets
    crafted on the substitute (the configuration every defense experiment
    consumes); when the spec asks for precisely that configuration the engine
    reuses the cached artifact instead of re-crafting.
    """
    return (entry.entry_id == "jsma"
            and spec.model == "substitute"
            and params.get("early_stop") is False
            and params.get("target_class") == CLASS_CLEAN
            and params.get("use_saliency_map") is True
            and params.get("features_per_step") == 1)


def _craft(spec: ScenarioSpec, context, entry, attack, params, inputs) -> AttackResult:
    if _canonical_greybox(spec, entry, params):
        advex = context.greybox_adversarial(theta=spec.theta, gamma=spec.gamma)
        return attack._package(inputs, advex.features)
    return attack.run(inputs)


def _robustness_for(spec: ScenarioSpec, network, inputs,
                    replayed) -> "RobustnessReport":
    """The minimal-evasion-budget distribution for one scenario.

    When the scenario's γ-sweep already ran the replay engine with a
    configuration matching :func:`minimal_evasion_budget`'s canonical attack
    (same network, early-stop single-feature saliency JSMA at the same θ,
    trajectory covering the requested budget), the distribution is a free
    view over that trajectory; otherwise one instrumented run is made.
    """
    from repro.attacks.jsma import JsmaAttack

    budget = spec.robustness_budget
    if replayed is not None:
        attack = replayed.attack
        trajectory = replayed.trajectory
        shareable = (isinstance(attack, JsmaAttack)
                     and attack.network is network
                     and attack.early_stop
                     and attack.use_saliency_map
                     and attack.features_per_step == 1
                     and attack.target_class == CLASS_CLEAN
                     and attack.constraints.feature_mask is None
                     and trajectory.theta == float(spec.theta)
                     and trajectory.budget >= min(budget,
                                                  trajectory.n_features))
        if shareable:
            return robustness_from_trajectory(trajectory, replayed.full_result,
                                              max_features=budget,
                                              theta=spec.theta)
    return minimal_evasion_budget(network, inputs, theta=spec.theta,
                                  max_features=budget)


def _defense_cells(context, detector, adversarial: np.ndarray) -> Dict[str, Dict[str, float]]:
    """The Table VI cells: TNR on clean, TPR on malware and adversarial sets."""
    clean_test = context.corpus.test.clean_only()
    malware_test = context.corpus.test.malware_only()
    return {
        "clean_test": {"tpr": float("nan"), "tnr": detector.report(clean_test).tnr},
        "malware_test": {"tpr": detector.report(malware_test).tpr, "tnr": float("nan")},
        "advex_test": {"tpr": detector.detection_rate(adversarial), "tnr": float("nan")},
    }


def _run_live(spec: ScenarioSpec, context, entry, params, started: float
              ) -> ScenarioReport:
    """Live source-modification flow (Section III-B third experiment)."""
    from repro.experiments import paper_values

    attack = entry.factory(entry.cls, None, None, params, context)
    sources = context.generator.generate_source_samples(
        params["n_sources"], label=CLASS_MALWARE, source="test",
        rng_name=params["sources_rng_name"])
    sample_index = params["sample_index"]
    if sample_index is None:
        # Mirror the paper: start from a sample the engine detects with high
        # (but not saturated) confidence — the paper's sample sat at 98.43%.
        reference = paper_values.LIVE_GREY_BOX["original_confidence"]
        scored = [(abs(attack.engine_confidence(sample) - reference), index)
                  for index, sample in enumerate(sources)]
        scored.sort()
        sample_index = scored[0][1]
    trace = attack.run(sources[sample_index],
                       max_repetitions=params["max_repetitions"])
    return ScenarioReport(
        spec=spec,
        scale=context.scale.name,
        seed=context.seed,
        dtype=str(context.effective_dtype()),
        attack_name=entry.entry_id,
        defense_name="none",
        detector_name=None,
        elapsed_s=time.perf_counter() - started,
        live_trace=trace,
    )


def run_scenario(spec: ScenarioSpec, context=None) -> ScenarioReport:
    """Run one declarative scenario and return its typed report.

    Parameters
    ----------
    spec:
        The scenario to run.  Attack/defense ids and parameters are resolved
        against the registries (unknown ids or parameters raise
        :class:`~repro.exceptions.ConfigurationError` before anything is
        built).
    context:
        Optional shared :class:`~repro.experiments.context.ExperimentContext`.
        When given, its scale/seed/dtype/cache govern the run (the spec's
        ``scale``/``seed``/``dtype`` fields are informational); when omitted
        a fresh context is built from the spec.
    """
    if isinstance(spec, Mapping):
        spec = ScenarioSpec.from_dict(spec)
    attack_entry = ATTACKS.get(spec.attack)
    defense_entry = DEFENSES.get(spec.defense)
    attack_params = attack_entry.resolve_params(spec.attack_params)
    defense_entry.resolve_params(spec.defense_params)  # fail fast on typos

    if context is None:
        from repro.experiments.context import ExperimentContext

        scale = get_profile(spec.scale) if spec.scale is not None else None
        context = ExperimentContext(scale=scale, seed=spec.seed, dtype=spec.dtype)

    started = time.perf_counter()
    if attack_entry.kind == "live":
        if defense_entry.entry_id != "none":
            raise ConfigurationError(
                "live scenarios replay source samples against the undefended "
                "engine; use defense='none'")
        if spec.sweep is not None or spec.robustness_budget is not None:
            raise ConfigurationError(
                "live scenarios attack one source sample; sweep and "
                "robustness_budget do not apply (vary attack_params "
                "max_repetitions instead)")
        return _run_live(spec, context, attack_entry, attack_params, started)
    if spec.model == "binary_substitute" and defense_entry.entry_id != "none":
        raise ConfigurationError(
            "defenses score the target's count feature space, which cannot "
            "evaluate binary-substitute matrices directly; use defense='none' "
            "and realise the perturbations as added API calls (see the "
            "figure4 driver's panel (c))")

    # The detector is needed for the Table VI cells of every operating-point
    # run and as an extra sweep surface when a defense is active; binary
    # crafting spaces have no detector surface at all.
    needs_detector = (spec.model != "binary_substitute"
                      and (spec.sweep is None or defense_entry.entry_id != "none"))
    detector = (build_defense(spec.defense, context, spec.defense_params)
                if needs_detector else None)
    network = _crafting_network(context, spec.model)
    inputs = context.attack_malware.features
    if spec.model == "binary_substitute":
        inputs = (inputs > 0).astype(np.float64)

    # Evaluation surfaces: the crafting model, the deployed target for
    # grey-box transfer, and the defended detector when a defense is active.
    # (The binary substitute crafts in its own feature space, so the target
    # cannot score those matrices directly — drivers realise them first.)
    models: Dict[str, object] = {spec.model: network}
    if spec.model == "substitute":
        models["target"] = context.target_model.network
    if defense_entry.entry_id != "none" and spec.model != "binary_substitute":
        models[f"defended[{defense_entry.entry_id}]"] = detector

    # The no-attack predictions double as the sweep/operating-point baseline
    # and as the primed original predictions every crafted attack reuses
    # (sweep points and grid workers stop re-predicting identical matrices).
    original_predictions = {name: model.predict(inputs)
                            for name, model in models.items()}
    baseline = {name: detection_rate(predictions)
                for name, predictions in original_predictions.items()}

    def attack_factory(constraints: PerturbationConstraints):
        attack = attack_entry.factory(attack_entry.cls, network, constraints,
                                      attack_params, context)
        if hasattr(attack, "prime_original_predictions"):
            attack.prime_original_predictions(inputs,
                                              original_predictions[spec.model])
        return attack

    curve: Optional[SecurityCurve] = None
    attack_result: Optional[AttackResult] = None
    detection: Dict[str, float] = {}
    defense_eval: Optional[Dict[str, Dict[str, float]]] = None
    replayed: Optional[ReplaySweep] = None

    if spec.sweep is not None:
        if spec.sweep_values is not None:
            grid = list(spec.sweep_values)
        elif spec.sweep == "gamma":
            grid = paper_gamma_grid(context.scale.sweep_points_gamma)
        else:
            grid = paper_theta_grid(context.scale.sweep_points_theta)
        if spec.sweep == "gamma":
            # Keep the replay object (when the engine ran): the robustness
            # distribution below may be another view over its trajectory.
            curve, replayed = dispatch_gamma_sweep(
                attack_factory, inputs, models, theta=spec.theta,
                gamma_values=grid, strategy=spec.sweep_strategy or "replay")
        else:
            curve = theta_sweep(attack_factory, inputs, models,
                                gamma=spec.gamma, theta_values=grid)
    else:
        constraints = PerturbationConstraints(theta=spec.theta, gamma=spec.gamma)
        attack = attack_factory(constraints)
        attack_result = _craft(spec, context, attack_entry, attack,
                               attack_params, inputs)
        detection = {name: detection_rate(model.predict(attack_result.adversarial))
                     for name, model in models.items()}
        if detector is not None:
            defense_eval = _defense_cells(context, detector,
                                          attack_result.adversarial)

    robustness: Optional[RobustnessReport] = None
    if spec.robustness_budget is not None:
        robustness = _robustness_for(spec, network, inputs, replayed)

    return ScenarioReport(
        spec=spec,
        scale=context.scale.name,
        seed=context.seed,
        dtype=str(context.effective_dtype()),
        attack_name=attack_entry.entry_id,
        defense_name=defense_entry.entry_id,
        detector_name=getattr(detector, "name", None),
        elapsed_s=time.perf_counter() - started,
        attack_result=attack_result,
        curve=curve,
        robustness=robustness,
        detection=detection,
        baseline_detection=baseline,
        defense_eval=defense_eval,
    )
