"""One declarative run API over registry-driven attacks, defenses and models.

The paper's whole contribution is a grid — attacks x defenses evaluated on
one detector — and this package is that grid as an API:

* :mod:`repro.scenarios.registry` — ``AttackRegistry`` / ``DefenseRegistry``
  populated by ``@register_attack`` / ``@register_defense`` decorators on the
  classes themselves, each entry carrying a typed parameter schema;
* :mod:`repro.scenarios.spec` — the frozen :class:`ScenarioSpec` value
  object (attack id + params, defense id + params, crafting surface, scale,
  seed, dtype, constraint operating point) with JSON round-trips and grid
  expansion;
* :mod:`repro.scenarios.runner` — ``run_scenario(spec) -> ScenarioReport``,
  the engine the figure/table drivers, the CLI and the serving registry are
  thin clients of.

Quickstart::

    from repro.scenarios import ScenarioSpec, run_scenario

    report = run_scenario(ScenarioSpec(
        attack="jsma", defense="feature_squeezing",
        model="substitute", scale="tiny", theta=0.1, gamma=0.02))
    print(report.render())

``run_scenario`` / ``ScenarioReport`` are provided lazily (PEP 562): the
registry decorators live in attack/defense modules, so importing the engine
eagerly here would cycle back through them.
"""

from repro.scenarios.registry import (
    ATTACKS,
    DEFENSES,
    ComponentRegistry,
    Param,
    RegistryEntry,
    build_defense,
    ensure_registries,
    register_attack,
    register_defense,
)
from repro.scenarios.spec import MODEL_KINDS, ScenarioSpec

__all__ = [
    "ATTACKS",
    "DEFENSES",
    "ComponentRegistry",
    "Param",
    "RegistryEntry",
    "MODEL_KINDS",
    "ScenarioSpec",
    "ScenarioReport",
    "register_attack",
    "register_defense",
    "build_defense",
    "ensure_registries",
    "run_scenario",
]

_LAZY = {"run_scenario", "ScenarioReport"}


def __getattr__(name: str):
    if name in _LAZY:
        from repro.scenarios import runner

        return getattr(runner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | _LAZY)
