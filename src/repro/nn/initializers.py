"""Weight initialisation schemes for dense layers."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import RandomState, as_rng


def he_normal(fan_in: int, fan_out: int, random_state: RandomState = None) -> np.ndarray:
    """He (Kaiming) normal initialisation, suited to ReLU activations."""
    rng = as_rng(random_state)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=(fan_in, fan_out))


def xavier_uniform(fan_in: int, fan_out: int, random_state: RandomState = None) -> np.ndarray:
    """Xavier/Glorot uniform initialisation, suited to tanh/sigmoid layers."""
    rng = as_rng(random_state)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def zeros_init(fan_in: int, fan_out: int, random_state: RandomState = None) -> np.ndarray:
    """All-zero initialisation (used for biases)."""
    return np.zeros((fan_in, fan_out))


INITIALIZERS = {
    "he_normal": he_normal,
    "xavier_uniform": xavier_uniform,
    "zeros": zeros_init,
}


def get_initializer(name: str):
    """Look up an initializer by name."""
    try:
        return INITIALIZERS[name]
    except KeyError:
        raise ValueError(
            f"unknown initializer {name!r}; expected one of {sorted(INITIALIZERS)}"
        ) from None
