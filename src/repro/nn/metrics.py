"""Classification metrics used for attack and defense evaluation.

The paper reports the confusion-matrix rates (TPR, TNR, FPR, FNR — Table VI)
and "detection rate" (the fraction of malware / adversarial samples that the
detector still flags as malware — the y-axis of every security-evaluation
curve).  ROC/AUC helpers are included for the feature-squeezing threshold
ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.config import CLASS_MALWARE
from repro.exceptions import ShapeError
from repro.utils.validation import check_labels


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of correct predictions."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ShapeError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        raise ShapeError("cannot compute accuracy of empty arrays")
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray,
                     n_classes: int = 2) -> np.ndarray:
    """Confusion matrix ``C[i, j]`` = count of true class ``i`` predicted ``j``."""
    y_true = check_labels(y_true, name="y_true", n_classes=n_classes)
    y_pred = check_labels(y_pred, n_samples=y_true.shape[0], name="y_pred",
                          n_classes=n_classes)
    matrix = np.zeros((n_classes, n_classes), dtype=np.int64)
    np.add.at(matrix, (y_true, y_pred), 1)
    return matrix


def rates_from_confusion(matrix: np.ndarray,
                         positive_class: int = CLASS_MALWARE) -> Dict[str, float]:
    """TPR / TNR / FPR / FNR for a binary confusion matrix.

    ``positive_class`` is the malware class throughout the paper.  Rates
    whose denominator is zero are reported as ``nan`` — exactly how Table VI
    reports e.g. TPR on a clean-only test set.
    """
    matrix = np.asarray(matrix)
    if matrix.shape != (2, 2):
        raise ShapeError(f"expected a 2x2 confusion matrix, got shape {matrix.shape}")
    negative_class = 1 - positive_class
    tp = matrix[positive_class, positive_class]
    fn = matrix[positive_class, negative_class]
    tn = matrix[negative_class, negative_class]
    fp = matrix[negative_class, positive_class]
    positives = tp + fn
    negatives = tn + fp

    def _safe(num: float, den: float) -> float:
        return float(num / den) if den > 0 else float("nan")

    return {
        "tpr": _safe(tp, positives),
        "fnr": _safe(fn, positives),
        "tnr": _safe(tn, negatives),
        "fpr": _safe(fp, negatives),
    }


def detection_rate(y_pred: np.ndarray, positive_class: int = CLASS_MALWARE) -> float:
    """Fraction of samples predicted as malware.

    Applied to a malware-only (or adversarial-example-only) batch this is the
    paper's "detection rate": the quantity tracked by every security
    evaluation curve in Figures 3 and 4.
    """
    y_pred = np.asarray(y_pred)
    if y_pred.size == 0:
        raise ShapeError("cannot compute detection rate of an empty prediction array")
    return float(np.mean(y_pred == positive_class))


def roc_curve(y_true: np.ndarray, scores: np.ndarray,
              positive_class: int = CLASS_MALWARE) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Compute (fpr, tpr, thresholds) by sweeping a decision threshold."""
    y_true = np.asarray(y_true)
    scores = np.asarray(scores, dtype=np.float64)
    if y_true.shape != scores.shape:
        raise ShapeError(f"shape mismatch: {y_true.shape} vs {scores.shape}")
    positives = y_true == positive_class
    n_pos = positives.sum()
    n_neg = (~positives).sum()
    if n_pos == 0 or n_neg == 0:
        raise ShapeError("roc_curve requires at least one positive and one negative sample")
    order = np.argsort(-scores, kind="stable")
    sorted_pos = positives[order]
    tps = np.cumsum(sorted_pos)
    fps = np.cumsum(~sorted_pos)
    thresholds = scores[order]
    # Keep only the last occurrence of each distinct threshold.
    distinct = np.r_[np.diff(thresholds) != 0, True]
    tpr = np.r_[0.0, tps[distinct] / n_pos]
    fpr = np.r_[0.0, fps[distinct] / n_neg]
    thresholds = np.r_[np.inf, thresholds[distinct]]
    return fpr, tpr, thresholds


def roc_auc(y_true: np.ndarray, scores: np.ndarray,
            positive_class: int = CLASS_MALWARE) -> float:
    """Area under the ROC curve via the trapezoidal rule."""
    fpr, tpr, _ = roc_curve(y_true, scores, positive_class=positive_class)
    integrate = getattr(np, "trapezoid", None) or np.trapz
    return float(integrate(tpr, fpr))


@dataclass(frozen=True)
class ClassificationReport:
    """All the rates Table VI reports for one (defense, test-set) pair."""

    n_samples: int
    accuracy: float
    tpr: float
    tnr: float
    fpr: float
    fnr: float

    @classmethod
    def from_predictions(cls, y_true: np.ndarray, y_pred: np.ndarray,
                         positive_class: int = CLASS_MALWARE) -> "ClassificationReport":
        """Build a report from true/predicted labels."""
        matrix = confusion_matrix(y_true, y_pred)
        rates = rates_from_confusion(matrix, positive_class=positive_class)
        return cls(
            n_samples=int(np.asarray(y_true).shape[0]),
            accuracy=accuracy(np.asarray(y_true), np.asarray(y_pred)),
            tpr=rates["tpr"],
            tnr=rates["tnr"],
            fpr=rates["fpr"],
            fnr=rates["fnr"],
        )

    def as_dict(self) -> Dict[str, float]:
        """Dictionary view (useful for table rendering)."""
        return {
            "n_samples": self.n_samples,
            "accuracy": self.accuracy,
            "tpr": self.tpr,
            "tnr": self.tnr,
            "fpr": self.fpr,
            "fnr": self.fnr,
        }
