"""Mini-batch training loop with validation tracking and early stopping."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn.engine import ensure_buffer, get_engine
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.metrics import accuracy
from repro.nn.network import NeuralNetwork
from repro.nn.optimizers import Adam, Optimizer
from repro.utils.rng import RandomState, as_rng


@dataclass
class TrainingHistory:
    """Per-epoch training curves."""

    train_loss: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    val_loss: List[float] = field(default_factory=list)
    val_accuracy: List[float] = field(default_factory=list)

    @property
    def epochs_run(self) -> int:
        """Number of completed epochs."""
        return len(self.train_loss)

    def best_epoch(self, monitor: str = "val_loss") -> int:
        """Index of the best epoch under ``monitor`` (lower-is-better for
        losses, higher-is-better for accuracies)."""
        values = getattr(self, monitor)
        if not values:
            raise ConfigurationError(f"history has no values for {monitor!r}")
        arr = np.asarray(values)
        return int(np.argmax(arr)) if monitor.endswith("accuracy") else int(np.argmin(arr))

    def as_dict(self) -> Dict[str, List[float]]:
        """Dictionary view of all curves."""
        return {
            "train_loss": list(self.train_loss),
            "train_accuracy": list(self.train_accuracy),
            "val_loss": list(self.val_loss),
            "val_accuracy": list(self.val_accuracy),
        }


class EarlyStopping:
    """Stop training when the monitored value stops improving.

    Parameters
    ----------
    patience:
        Number of epochs without improvement tolerated before stopping.
    min_delta:
        Minimum change that counts as an improvement.
    monitor:
        ``val_loss`` (default), ``train_loss``, ``val_accuracy`` or
        ``train_accuracy``.
    """

    def __init__(self, patience: int = 5, min_delta: float = 1e-4,
                 monitor: str = "val_loss") -> None:
        if patience < 1:
            raise ConfigurationError(f"patience must be >= 1, got {patience}")
        if min_delta < 0:
            raise ConfigurationError(f"min_delta must be non-negative, got {min_delta}")
        if monitor not in ("val_loss", "train_loss", "val_accuracy", "train_accuracy"):
            raise ConfigurationError(f"unsupported monitor {monitor!r}")
        self.patience = patience
        self.min_delta = min_delta
        self.monitor = monitor
        self._best: Optional[float] = None
        self._stale_epochs = 0

    @property
    def maximize(self) -> bool:
        """Whether the monitored quantity should increase."""
        return self.monitor.endswith("accuracy")

    def update(self, value: float) -> bool:
        """Record the latest value; return True when training should stop."""
        if self._best is None:
            self._best = value
            return False
        improved = (value > self._best + self.min_delta if self.maximize
                    else value < self._best - self.min_delta)
        if improved:
            self._best = value
            self._stale_epochs = 0
        else:
            self._stale_epochs += 1
        return self._stale_epochs >= self.patience


class Trainer:
    """Mini-batch gradient-descent trainer for :class:`NeuralNetwork`.

    Parameters
    ----------
    network:
        The network to train (modified in place).
    optimizer:
        Any :class:`~repro.nn.optimizers.Optimizer`; defaults to Adam with
        the paper's learning rate of ``1e-3``.
    loss:
        The training loss; defaults to temperature-1 softmax cross-entropy.
    batch_size, epochs:
        Mini-batch size and number of passes over the training data (the
        paper uses batch size 256).
    shuffle:
        Whether to reshuffle the training data every epoch.
    early_stopping:
        Optional :class:`EarlyStopping` policy (requires validation data when
        monitoring a validation quantity).
    random_state:
        Seed controlling shuffling.
    """

    def __init__(self, network: NeuralNetwork, optimizer: Optional[Optimizer] = None,
                 loss: Optional[SoftmaxCrossEntropy] = None, batch_size: int = 256,
                 epochs: int = 10, shuffle: bool = True,
                 early_stopping: Optional[EarlyStopping] = None,
                 random_state: RandomState = None,
                 epoch_callback: Optional[Callable[[int, TrainingHistory], None]] = None) -> None:
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        if epochs < 1:
            raise ConfigurationError(f"epochs must be >= 1, got {epochs}")
        self.network = network
        self.optimizer = optimizer if optimizer is not None else Adam(learning_rate=1e-3)
        self.loss = loss if loss is not None else SoftmaxCrossEntropy()
        self.batch_size = int(batch_size)
        self.epochs = int(epochs)
        self.shuffle = bool(shuffle)
        self.early_stopping = early_stopping
        self.epoch_callback = epoch_callback
        self._rng = as_rng(random_state)

    def _validate_inputs(self, x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        # Cast to the compute dtype once up front so per-batch slices need no
        # dtype conversion inside the epoch loop.
        x = get_engine().asarray(x)
        y = np.asarray(y)
        if x.ndim != 2:
            raise ShapeError(f"training inputs must be 2-D, got shape {x.shape}")
        if y.shape[0] != x.shape[0]:
            raise ShapeError(
                f"targets have {y.shape[0]} rows but inputs have {x.shape[0]}"
            )
        return x, y

    def fit(self, x_train: np.ndarray, y_train: np.ndarray,
            x_val: Optional[np.ndarray] = None,
            y_val: Optional[np.ndarray] = None) -> TrainingHistory:
        """Train the network and return per-epoch history.

        ``y_train`` may be integer labels or soft-label rows (the latter is
        how defensive distillation trains the distilled model).
        """
        x_train, y_train = self._validate_inputs(x_train, y_train)
        has_val = x_val is not None and y_val is not None
        if self.early_stopping is not None and self.early_stopping.monitor.startswith("val") \
                and not has_val:
            raise ConfigurationError(
                "early stopping monitors a validation quantity but no validation data was given"
            )
        history = TrainingHistory()
        n_samples = x_train.shape[0]
        indices = np.arange(n_samples)
        hard_labels = y_train if y_train.ndim == 1 else np.argmax(y_train, axis=1)

        # Reusable mini-batch gather buffers: full-size batches are copied
        # into preallocated arrays (np.take with out=) instead of allocating
        # a fresh batch every step; the ragged final batch falls back to
        # fancy indexing.
        reuse = get_engine().reuse_buffers
        x_buf: Optional[np.ndarray] = None
        y_buf: Optional[np.ndarray] = None

        for epoch in range(self.epochs):
            if self.shuffle:
                self._rng.shuffle(indices)
            epoch_loss = 0.0
            n_batches = 0
            for start in range(0, n_samples, self.batch_size):
                batch_idx = indices[start:start + self.batch_size]
                if reuse and batch_idx.size == self.batch_size:
                    x_buf = ensure_buffer(
                        x_buf, (self.batch_size,) + x_train.shape[1:], x_train.dtype)
                    y_buf = ensure_buffer(
                        y_buf, (self.batch_size,) + y_train.shape[1:], y_train.dtype)
                    np.take(x_train, batch_idx, axis=0, out=x_buf)
                    np.take(y_train, batch_idx, axis=0, out=y_buf)
                    x_batch, y_batch = x_buf, y_buf
                else:
                    x_batch, y_batch = x_train[batch_idx], y_train[batch_idx]
                batch_loss = self.network.train_step(
                    x_batch, y_batch, self.loss, self.optimizer)
                epoch_loss += batch_loss
                n_batches += 1
            history.train_loss.append(epoch_loss / max(n_batches, 1))
            history.train_accuracy.append(
                accuracy(hard_labels, self.network.predict(x_train)))
            if has_val:
                val_logits = self.network.predict_logits(x_val)
                val_loss = SoftmaxCrossEntropy(temperature=self.loss.temperature)
                history.val_loss.append(val_loss.forward(val_logits, np.asarray(y_val)))
                val_hard = np.asarray(y_val)
                if val_hard.ndim == 2:
                    val_hard = np.argmax(val_hard, axis=1)
                history.val_accuracy.append(
                    accuracy(val_hard, np.argmax(val_logits, axis=1)))
            if self.epoch_callback is not None:
                self.epoch_callback(epoch, history)
            if self.early_stopping is not None:
                monitored = getattr(history, self.early_stopping.monitor)[-1]
                if self.early_stopping.update(monitored):
                    break
        return history
