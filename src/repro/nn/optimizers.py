"""First-order optimisers for the numpy substrate.

The paper trains the substitute model with Adam (learning rate ``1e-3``,
batch size 256); :class:`Adam` reproduces that configuration.  Plain
:class:`SGD` and :class:`Momentum` are provided for ablations.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.nn.layers import Parameter


class Optimizer:
    """Base class: subclasses implement :meth:`update` for a single parameter."""

    def __init__(self, learning_rate: float = 1e-3, weight_decay: float = 0.0) -> None:
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        self.learning_rate = float(learning_rate)
        self.weight_decay = float(weight_decay)
        self._state: Dict[int, dict] = {}
        self.iterations = 0

    def state_for(self, param: Parameter) -> dict:
        """Return (and lazily create) the per-parameter optimiser state."""
        key = id(param)
        if key not in self._state:
            self._state[key] = self._init_state(param)
        return self._state[key]

    def _init_state(self, param: Parameter) -> dict:
        return {}

    def step(self, parameters: Sequence[Parameter]) -> None:
        """Apply one update to every parameter, then clear its gradient."""
        self.iterations += 1
        for param in parameters:
            grad = param.grad
            if self.weight_decay > 0:
                grad = grad + self.weight_decay * param.value
            self.update(param, grad)
            param.zero_grad()

    def update(self, param: Parameter, grad: np.ndarray) -> None:
        """Update ``param.value`` in place given ``grad``."""
        raise NotImplementedError

    def get_config(self) -> dict:
        """Return a serialisable description of the optimiser."""
        return {
            "type": type(self).__name__,
            "learning_rate": self.learning_rate,
            "weight_decay": self.weight_decay,
        }


class SGD(Optimizer):
    """Vanilla stochastic gradient descent."""

    def update(self, param: Parameter, grad: np.ndarray) -> None:
        param.value -= self.learning_rate * grad


class Momentum(Optimizer):
    """SGD with classical momentum."""

    def __init__(self, learning_rate: float = 1e-2, momentum: float = 0.9,
                 weight_decay: float = 0.0) -> None:
        super().__init__(learning_rate, weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)

    def _init_state(self, param: Parameter) -> dict:
        return {"velocity": np.zeros_like(param.value)}

    def update(self, param: Parameter, grad: np.ndarray) -> None:
        state = self.state_for(param)
        state["velocity"] = self.momentum * state["velocity"] - self.learning_rate * grad
        param.value += state["velocity"]

    def get_config(self) -> dict:
        config = super().get_config()
        config["momentum"] = self.momentum
        return config


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015)."""

    def __init__(self, learning_rate: float = 1e-3, beta1: float = 0.9,
                 beta2: float = 0.999, epsilon: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(learning_rate, weight_decay)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got ({beta1}, {beta2})")
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)

    def _init_state(self, param: Parameter) -> dict:
        return {
            "m": np.zeros_like(param.value),
            "v": np.zeros_like(param.value),
            "t": 0,
        }

    def update(self, param: Parameter, grad: np.ndarray) -> None:
        state = self.state_for(param)
        state["t"] += 1
        state["m"] = self.beta1 * state["m"] + (1 - self.beta1) * grad
        state["v"] = self.beta2 * state["v"] + (1 - self.beta2) * grad ** 2
        m_hat = state["m"] / (1 - self.beta1 ** state["t"])
        v_hat = state["v"] / (1 - self.beta2 ** state["t"])
        param.value -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)

    def get_config(self) -> dict:
        config = super().get_config()
        config.update({"beta1": self.beta1, "beta2": self.beta2, "epsilon": self.epsilon})
        return config


OPTIMIZERS = {"sgd": SGD, "momentum": Momentum, "adam": Adam}


def get_optimizer(name: str, **kwargs) -> Optimizer:
    """Instantiate an optimiser by name."""
    try:
        cls = OPTIMIZERS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown optimizer {name!r}; expected one of {sorted(OPTIMIZERS)}"
        ) from None
    return cls(**kwargs)
