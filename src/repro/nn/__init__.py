"""From-scratch numpy neural-network substrate.

The paper trains its detector and substitute models with a standard deep
learning stack (and crafts JSMA adversarial examples with CleverHans).
Neither TensorFlow nor PyTorch is available offline here, so this package
re-implements the pieces those experiments need:

* fully-connected layers with He/Xavier initialisation (:mod:`layers`),
* ReLU / sigmoid / tanh activations (:mod:`activations`),
* temperature-scaled softmax cross-entropy with hard *or soft* labels —
  soft labels are what defensive distillation trains on (:mod:`losses`),
* SGD, momentum and Adam optimisers (:mod:`optimizers`),
* a :class:`~repro.nn.network.NeuralNetwork` container exposing
  prediction, class-probability output, loss/backprop, *input* gradients and
  the per-class Jacobian that JSMA's saliency map is built from,
* a mini-batch :class:`~repro.nn.training.Trainer` with validation tracking
  and early stopping,
* classification metrics (confusion matrix, TPR/TNR/FPR/FNR, ROC/AUC)
  (:mod:`metrics`),
* a tensor compute engine (:mod:`engine`) controlling the compute dtype and
  buffer reuse of every hot path.

Engine configuration (see :mod:`repro.nn.engine` for the full contract):
``float64`` is the default compute dtype and reproduces the reference
experiment outputs digit for digit; set ``REPRO_DTYPE=float32`` (or call
:func:`~repro.nn.engine.set_default_dtype` / use the
:func:`~repro.nn.engine.use_dtype` context manager) before building a
network to roughly halve memory bandwidth in attack/training loops at the
cost of low-order digits (attack success rates agree within 1%).  Binary
networks additionally use a fused single-backward Jacobian in
:meth:`NeuralNetwork.class_gradients` — softmax rows sum to 1, so
``dF_clean/dx == -dF_malware/dx`` and one backward pass yields both rows.
"""

from repro.nn.activations import LeakyReLU, ReLU, Sigmoid, Tanh, softmax
from repro.nn.engine import (
    TensorEngine,
    as_compute,
    compute_dtype,
    get_engine,
    set_default_dtype,
    set_engine,
    use_dtype,
)
from repro.nn.initializers import he_normal, xavier_uniform, zeros_init
from repro.nn.layers import Dense, Dropout, Layer, Parameter
from repro.nn.losses import Loss, MeanSquaredError, SoftmaxCrossEntropy
from repro.nn.metrics import (
    ClassificationReport,
    accuracy,
    confusion_matrix,
    detection_rate,
    rates_from_confusion,
    roc_auc,
    roc_curve,
)
from repro.nn.network import NeuralNetwork
from repro.nn.optimizers import SGD, Adam, Momentum, Optimizer
from repro.nn.training import EarlyStopping, Trainer, TrainingHistory

__all__ = [
    "ReLU", "LeakyReLU", "Sigmoid", "Tanh", "softmax",
    "TensorEngine", "get_engine", "set_engine", "compute_dtype",
    "set_default_dtype", "use_dtype", "as_compute",
    "he_normal", "xavier_uniform", "zeros_init",
    "Layer", "Dense", "Dropout", "Parameter",
    "Loss", "SoftmaxCrossEntropy", "MeanSquaredError",
    "accuracy", "confusion_matrix", "rates_from_confusion", "detection_rate",
    "roc_curve", "roc_auc", "ClassificationReport",
    "NeuralNetwork",
    "Optimizer", "SGD", "Momentum", "Adam",
    "Trainer", "TrainingHistory", "EarlyStopping",
]
