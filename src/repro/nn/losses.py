"""Loss functions.

:class:`SoftmaxCrossEntropy` is the work-horse: it combines the softmax and
the cross-entropy so the backward pass is the numerically friendly
``probabilities - targets`` form.  It supports

* hard integer labels (normal training),
* soft probability targets (defensive distillation trains the student on the
  teacher's soft labels), and
* a distillation temperature ``T`` applied inside the softmax.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.activations import softmax
from repro.nn.engine import float_dtype_of


class Loss:
    """Base class for losses operating on network logits."""

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        """Return the scalar loss value."""
        raise NotImplementedError

    def backward(self) -> np.ndarray:
        """Return the gradient of the loss w.r.t. the logits."""
        raise NotImplementedError

    def __call__(self, logits: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(logits, targets)


def one_hot(labels: np.ndarray, n_classes: int) -> np.ndarray:
    """Encode integer ``labels`` as one-hot rows."""
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ShapeError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= n_classes):
        raise ShapeError(
            f"labels must be in [0, {n_classes}), got range [{labels.min()}, {labels.max()}]"
        )
    encoded = np.zeros((labels.shape[0], n_classes), dtype=np.float64)
    encoded[np.arange(labels.shape[0]), labels.astype(int)] = 1.0
    return encoded


class SoftmaxCrossEntropy(Loss):
    """Temperature-scaled softmax + cross-entropy.

    Parameters
    ----------
    temperature:
        Softmax temperature ``T`` (1.0 for standard training, 50 for the
        paper's defensive distillation configuration).
    label_smoothing:
        Optional label-smoothing factor applied to hard labels.
    """

    def __init__(self, temperature: float = 1.0, label_smoothing: float = 0.0) -> None:
        if temperature <= 0:
            raise ValueError(f"temperature must be positive, got {temperature}")
        if not 0.0 <= label_smoothing < 1.0:
            raise ValueError(f"label_smoothing must be in [0, 1), got {label_smoothing}")
        self.temperature = float(temperature)
        self.label_smoothing = float(label_smoothing)
        self._probs: np.ndarray | None = None
        self._targets: np.ndarray | None = None

    def _prepare_targets(self, targets: np.ndarray, n_classes: int) -> np.ndarray:
        targets = np.asarray(targets)
        if targets.ndim == 1:
            encoded = one_hot(targets, n_classes)
        elif targets.ndim == 2:
            if targets.shape[1] != n_classes:
                raise ShapeError(
                    f"soft targets must have {n_classes} columns, got {targets.shape[1]}"
                )
            encoded = targets.astype(np.float64)
        else:
            raise ShapeError(f"targets must be 1-D labels or 2-D soft labels, got {targets.shape}")
        if self.label_smoothing > 0:
            encoded = (1 - self.label_smoothing) * encoded + self.label_smoothing / n_classes
        return encoded

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        logits = np.asarray(logits, dtype=float_dtype_of(logits))
        if logits.ndim != 2:
            raise ShapeError(f"logits must be 2-D, got shape {logits.shape}")
        encoded = self._prepare_targets(targets, logits.shape[1])
        if encoded.shape[0] != logits.shape[0]:
            raise ShapeError(
                f"targets have {encoded.shape[0]} rows but logits have {logits.shape[0]}"
            )
        probs = softmax(logits, temperature=self.temperature)
        self._probs = probs
        self._targets = encoded.astype(probs.dtype, copy=False)
        log_probs = np.log(np.clip(probs, 1e-12, 1.0))
        return float(-(encoded * log_probs).sum(axis=1).mean())

    def backward(self) -> np.ndarray:
        if self._probs is None or self._targets is None:
            raise RuntimeError("backward called before forward")
        n = self._probs.shape[0]
        return (self._probs - self._targets) / (n * self.temperature)


class MeanSquaredError(Loss):
    """Mean squared error on raw network outputs (no softmax)."""

    def __init__(self) -> None:
        self._diff: np.ndarray | None = None

    def forward(self, outputs: np.ndarray, targets: np.ndarray) -> float:
        outputs = np.asarray(outputs, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if outputs.shape != targets.shape:
            raise ShapeError(
                f"outputs shape {outputs.shape} does not match targets shape {targets.shape}"
            )
        self._diff = outputs - targets
        return float(np.mean(self._diff ** 2))

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise RuntimeError("backward called before forward")
        return 2.0 * self._diff / self._diff.size
