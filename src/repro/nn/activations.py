"""Activation layers and the (temperature-scaled) softmax function.

Activations are implemented as :class:`~repro.nn.layers.Layer` subclasses so
that a network is simply an ordered list of layers; each stores the cache it
needs for its backward pass.
"""

from __future__ import annotations

import numpy as np

from repro.nn.engine import float_dtype_of
from repro.nn.layers import Layer


def softmax(logits: np.ndarray, temperature: float = 1.0) -> np.ndarray:
    """Numerically stable softmax with distillation temperature.

    Parameters
    ----------
    logits:
        Array of shape ``(n_samples, n_classes)``.
    temperature:
        Softmax temperature ``T``.  ``T > 1`` (the paper uses ``T = 50`` for
        defensive distillation) smooths the output distribution.
    """
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    scaled = np.asarray(logits, dtype=float_dtype_of(logits)) / float(temperature)
    scaled = scaled - scaled.max(axis=-1, keepdims=True)
    exp = np.exp(scaled)
    return exp / exp.sum(axis=-1, keepdims=True)


def softmax_input_gradient(probabilities: np.ndarray, class_index: int,
                           temperature: float = 1.0) -> np.ndarray:
    """Gradient of ``softmax(z/T)[:, class_index]`` with respect to ``z``.

    Used when computing the per-class Jacobian that the JSMA saliency map is
    built on.  For ``p = softmax(z/T)``:

    ``d p_k / d z_j = (1/T) * p_k * (delta_kj - p_j)``
    """
    p = np.asarray(probabilities, dtype=float_dtype_of(probabilities))
    p_k = p[:, class_index:class_index + 1]
    grad = -p_k * p
    grad[:, class_index] += p_k[:, 0]
    return grad / float(temperature)


class ReLU(Layer):
    """Rectified linear unit: ``max(0, x)``."""

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        self._mask = inputs > 0
        return np.where(self._mask, inputs, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * self._mask

    def output_dim(self, input_dim: int) -> int:
        return input_dim


class LeakyReLU(Layer):
    """Leaky ReLU with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        if negative_slope < 0:
            raise ValueError("negative_slope must be non-negative")
        self.negative_slope = float(negative_slope)

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        self._mask = inputs > 0
        return np.where(self._mask, inputs, self.negative_slope * inputs)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return np.where(self._mask, grad_output, self.negative_slope * grad_output)

    def output_dim(self, input_dim: int) -> int:
        return input_dim

    def get_config(self) -> dict:
        config = super().get_config()
        config["negative_slope"] = self.negative_slope
        return config


class Sigmoid(Layer):
    """Logistic sigmoid activation."""

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        # Clip to avoid overflow in exp for extreme logits.
        self._out = 1.0 / (1.0 + np.exp(-np.clip(inputs, -60.0, 60.0)))
        return self._out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * self._out * (1.0 - self._out)

    def output_dim(self, input_dim: int) -> int:
        return input_dim


class Tanh(Layer):
    """Hyperbolic tangent activation."""

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        self._out = np.tanh(inputs)
        return self._out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * (1.0 - self._out ** 2)

    def output_dim(self, input_dim: int) -> int:
        return input_dim


ACTIVATIONS = {
    "relu": ReLU,
    "leaky_relu": LeakyReLU,
    "sigmoid": Sigmoid,
    "tanh": Tanh,
}


def get_activation(name: str) -> Layer:
    """Instantiate an activation layer by name."""
    try:
        return ACTIVATIONS[name]()
    except KeyError:
        raise ValueError(
            f"unknown activation {name!r}; expected one of {sorted(ACTIVATIONS)}"
        ) from None
