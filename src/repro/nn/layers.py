"""Trainable layers of the numpy neural-network substrate."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.engine import as_compute, ensure_buffer, get_engine
from repro.nn.initializers import get_initializer
from repro.utils.rng import RandomState, as_rng


class Parameter:
    """A trainable tensor together with its accumulated gradient.

    Values are stored in the engine's compute dtype at construction time
    (see :mod:`repro.nn.engine`); all layer math follows the parameter dtype.
    """

    __slots__ = ("name", "value", "grad")

    def __init__(self, name: str, value: np.ndarray) -> None:
        self.name = name
        self.value = as_compute(value)
        self.grad = np.zeros_like(self.value)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero."""
        self.grad.fill(0.0)

    @property
    def shape(self) -> tuple:
        """Shape of the underlying value array."""
        return self.value.shape

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(name={self.name!r}, shape={self.value.shape})"


class Layer:
    """Base class for all layers.

    Subclasses implement :meth:`forward` and :meth:`backward`; layers with
    trainable state expose it through :meth:`parameters`.
    """

    def __init__(self) -> None:
        self.training = False

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute the layer output for ``inputs``."""
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate ``grad_output`` and return the gradient w.r.t. inputs.

        Trainable layers also accumulate parameter gradients here.
        """
        raise NotImplementedError

    def parameters(self) -> List[Parameter]:
        """Return this layer's trainable parameters (possibly empty)."""
        return []

    def output_dim(self, input_dim: int) -> int:
        """Return the output feature dimension given ``input_dim``."""
        raise NotImplementedError

    def get_config(self) -> dict:
        """Return a JSON-serialisable description of the layer."""
        return {"type": type(self).__name__}


class Dense(Layer):
    """Fully-connected layer: ``y = x @ W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input and output dimensionality.
    weight_init:
        Name of the weight initializer (``he_normal`` by default, matching
        the ReLU hidden layers used by the paper's DNNs).
    random_state:
        Seed or generator for weight initialisation.
    """

    def __init__(self, in_features: int, out_features: int,
                 weight_init: str = "he_normal",
                 random_state: RandomState = None) -> None:
        super().__init__()
        if in_features < 1 or out_features < 1:
            raise ShapeError(
                f"Dense dimensions must be positive, got ({in_features}, {out_features})"
            )
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.weight_init = weight_init
        rng = as_rng(random_state)
        init = get_initializer(weight_init)
        self.weight = Parameter("weight", init(self.in_features, self.out_features, rng))
        self.bias = Parameter("bias", np.zeros(self.out_features))
        self._inputs: Optional[np.ndarray] = None
        # Preallocated buffers reused across calls when the engine allows it
        # (see repro.nn.engine for the aliasing contract).
        self._fwd_out: Optional[np.ndarray] = None
        self._bwd_out: Optional[np.ndarray] = None
        self._wgrad_scratch: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        weight = self.weight.value
        inputs = np.asarray(inputs, dtype=weight.dtype)
        if inputs.ndim != 2 or inputs.shape[1] != self.in_features:
            raise ShapeError(
                f"Dense layer expected input of shape (n, {self.in_features}), "
                f"got {inputs.shape}"
            )
        self._inputs = inputs
        if get_engine().reuse_buffers:
            out = ensure_buffer(self._fwd_out, (inputs.shape[0], self.out_features),
                                weight.dtype)
            if out is inputs:  # square layer fed its own previous output
                out = np.empty_like(out)
            self._fwd_out = out
            np.matmul(inputs, weight, out=out)
            out += self.bias.value
            return out
        return inputs @ weight + self.bias.value

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._inputs is None:
            raise RuntimeError("backward called before forward")
        weight = self.weight.value
        grad_output = np.asarray(grad_output, dtype=weight.dtype)
        if get_engine().reuse_buffers:
            scratch = ensure_buffer(self._wgrad_scratch, weight.shape, weight.dtype)
            self._wgrad_scratch = scratch
            np.matmul(self._inputs.T, grad_output, out=scratch)
            self.weight.grad += scratch
            self.bias.grad += grad_output.sum(axis=0)
            out = ensure_buffer(self._bwd_out, (grad_output.shape[0], self.in_features),
                                weight.dtype)
            if out is grad_output:
                out = np.empty_like(out)
            self._bwd_out = out
            np.matmul(grad_output, weight.T, out=out)
            return out
        self.weight.grad += self._inputs.T @ grad_output
        self.bias.grad += grad_output.sum(axis=0)
        return grad_output @ weight.T

    def parameters(self) -> List[Parameter]:
        return [self.weight, self.bias]

    def output_dim(self, input_dim: int) -> int:
        if input_dim != self.in_features:
            raise ShapeError(
                f"Dense layer expects {self.in_features} input features, got {input_dim}"
            )
        return self.out_features

    def get_config(self) -> dict:
        return {
            "type": "Dense",
            "in_features": self.in_features,
            "out_features": self.out_features,
            "weight_init": self.weight_init,
        }


class Dropout(Layer):
    """Inverted dropout.

    During training each unit is zeroed with probability ``rate`` and the
    survivors are scaled by ``1 / (1 - rate)`` so that inference needs no
    rescaling.  At inference time the layer is the identity.
    """

    def __init__(self, rate: float = 0.5, random_state: RandomState = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = float(rate)
        self._rng = as_rng(random_state)
        self._mask: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return inputs
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(inputs.shape) < keep) / keep
        return inputs * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask

    def output_dim(self, input_dim: int) -> int:
        return input_dim

    def get_config(self) -> dict:
        return {"type": "Dropout", "rate": self.rate}
