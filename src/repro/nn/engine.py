"""The tensor compute engine: dtype configuration and buffer reuse.

Every hot path of the library (training mini-batches, JSMA Jacobian steps,
defense retraining) bottoms out in dense matmuls over numpy arrays.  This
module centralises two performance knobs that used to be hard-coded:

**Compute dtype.**  The seed implementation forced ``float64`` everywhere via
``np.asarray(..., dtype=np.float64)`` calls scattered through ``layers.py``,
``activations.py``, ``losses.py`` and ``network.py``.  The engine makes the
dtype configurable:

* ``float64`` (the default) — bit-for-bit reproduction of the paper
  experiments; every table and figure is numerically identical to the
  reference outputs recorded in ``EXPERIMENTS.md``.
* ``float32`` (opt-in) — roughly halves memory bandwidth in the matmul-bound
  attack and training loops.  Attack success rates match the ``float64``
  engine within 1% (asserted by the test suite); use it for large sweeps
  where throughput matters more than digit-level reproducibility.

Select the dtype with the ``REPRO_DTYPE`` environment variable (``float64`` /
``float32``), with :func:`set_default_dtype`, or temporarily with the
:func:`use_dtype` context manager.  The dtype is applied when parameters are
*created*: networks built while a dtype is active compute in that dtype
(layers cast their inputs to the parameter dtype, so a ``float32`` network
runs ``float32`` end to end regardless of later engine changes).

**Buffer reuse.**  When :attr:`TensorEngine.reuse_buffers` is enabled (the
default), :class:`~repro.nn.layers.Dense` writes its forward output, its
input-gradient and its weight-gradient scratch into preallocated per-layer
buffers (``np.matmul(..., out=...)``) instead of allocating fresh arrays on
every call, and the :class:`~repro.nn.training.Trainer` gathers mini-batches
into a reusable batch buffer.  The contract: an array returned by
``Dense.forward`` / ``Dense.backward`` is only valid until the *next*
forward/backward pass through the same layer.  Every public API that hands
arrays to callers (``predict``, ``predict_proba``, ``class_gradients``,
``loss_input_gradient``) copies out of the buffers, so the aliasing is
invisible unless you call ``Layer.forward`` directly and hold the result
across passes — set ``get_engine().reuse_buffers = False`` for that.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError

_ENV_DTYPE_VAR = "REPRO_DTYPE"

#: The dtypes the engine supports (the matmul-friendly IEEE float types).
SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


def _resolve_dtype(dtype) -> np.dtype:
    """Normalise a dtype spec to one of the supported compute dtypes."""
    try:
        resolved = np.dtype(dtype)
    except TypeError:
        raise ConfigurationError(
            f"unsupported compute dtype {dtype!r}; expected one of "
            f"{[str(d) for d in SUPPORTED_DTYPES]}"
        ) from None
    if resolved not in SUPPORTED_DTYPES:
        raise ConfigurationError(
            f"unsupported compute dtype {dtype!r}; expected one of "
            f"{[str(d) for d in SUPPORTED_DTYPES]}"
        )
    return resolved


def resolve_dtype(dtype) -> np.dtype:
    """Normalise/validate a compute-dtype spec (``"float32"``/``"float64"``)."""
    return _resolve_dtype(dtype)


def _env_default_dtype() -> np.dtype:
    return _resolve_dtype(os.environ.get(_ENV_DTYPE_VAR, "float64"))


class TensorEngine:
    """Compute configuration shared by the nn substrate.

    Parameters
    ----------
    dtype:
        Compute dtype (``float32`` or ``float64``).  Defaults to the
        ``REPRO_DTYPE`` environment variable, falling back to ``float64``.
    reuse_buffers:
        Whether layers and the trainer reuse preallocated output buffers
        (see the module docstring for the aliasing contract).
    """

    def __init__(self, dtype=None, reuse_buffers: bool = True) -> None:
        self.dtype = _env_default_dtype() if dtype is None else _resolve_dtype(dtype)
        self.reuse_buffers = bool(reuse_buffers)

    def asarray(self, x) -> np.ndarray:
        """View/cast ``x`` as a compute-dtype array (no copy when possible)."""
        return np.asarray(x, dtype=self.dtype)

    def empty(self, shape) -> np.ndarray:
        """Allocate an uninitialised compute-dtype array."""
        return np.empty(shape, dtype=self.dtype)

    def zeros(self, shape) -> np.ndarray:
        """Allocate a zeroed compute-dtype array."""
        return np.zeros(shape, dtype=self.dtype)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TensorEngine(dtype={self.dtype}, reuse_buffers={self.reuse_buffers})"


_engine = TensorEngine()


def get_engine() -> TensorEngine:
    """The process-wide engine instance."""
    return _engine


def set_engine(engine: TensorEngine) -> TensorEngine:
    """Replace the process-wide engine; returns the previous one."""
    global _engine
    previous, _engine = _engine, engine
    return previous


def compute_dtype() -> np.dtype:
    """The current compute dtype."""
    return _engine.dtype


def set_default_dtype(dtype) -> np.dtype:
    """Set the compute dtype for subsequently built networks; returns the old one."""
    previous = _engine.dtype
    _engine.dtype = _resolve_dtype(dtype)
    return previous


def as_compute(x) -> np.ndarray:
    """Cast ``x`` to the current compute dtype (no copy when already right)."""
    return np.asarray(x, dtype=_engine.dtype)


@contextmanager
def use_dtype(dtype) -> Iterator[TensorEngine]:
    """Temporarily switch the compute dtype.

    Networks built inside the block carry the dtype with them afterwards
    (it is baked into their parameters)::

        with use_dtype("float32"):
            network = NeuralNetwork.mlp([491, 96, 120, 104, 2], random_state=0)
        # `network` keeps computing in float32 here.
    """
    previous = set_default_dtype(dtype)
    try:
        yield _engine
    finally:
        set_default_dtype(previous)


def float_dtype_of(x: np.ndarray) -> np.dtype:
    """The dtype an elementwise op should compute in for input ``x``.

    Keeps pure functions (softmax, losses) dtype-following: float inputs are
    processed in their own precision, anything else is promoted to the
    engine's compute dtype.
    """
    dtype = getattr(x, "dtype", None)
    if dtype is not None and np.dtype(dtype) in SUPPORTED_DTYPES:
        return np.dtype(dtype)
    return _engine.dtype


def ensure_buffer(buf: Optional[np.ndarray], shape: Tuple[int, ...],
                  dtype: np.dtype) -> np.ndarray:
    """Return ``buf`` if it matches ``shape``/``dtype``, else a fresh buffer."""
    if buf is None or buf.shape != shape or buf.dtype != dtype:
        return np.empty(shape, dtype=dtype)
    return buf
