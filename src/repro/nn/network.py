"""The :class:`NeuralNetwork` container.

A network is an ordered list of layers ending in a linear (logit) layer; the
softmax lives in the loss / prediction functions so the same logits can be
re-used with different distillation temperatures.  Besides the usual
``fit``-adjacent plumbing (delegated to :class:`repro.nn.training.Trainer`),
the container exposes the *input-gradient* machinery the attacks need:

* :meth:`class_gradients` — the Jacobian ``dF_i(x)/dx_j`` of the softmax
  output with respect to the input, i.e. Equation (1) of the paper, which the
  JSMA saliency map is computed from;
* :meth:`loss_input_gradient` — gradient of the training loss w.r.t. the
  input, used by FGSM and by gradient-based data augmentation in the
  black-box framework.
"""

from __future__ import annotations

import copy
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.exceptions import SerializationError, ShapeError
from repro.nn.activations import ACTIVATIONS, get_activation, softmax, softmax_input_gradient
from repro.nn.engine import SUPPORTED_DTYPES, get_engine
from repro.nn.layers import Dense, Dropout, Layer, Parameter
from repro.nn.losses import SoftmaxCrossEntropy
from repro.utils.rng import RandomState, as_rng, spawn_rngs
from repro.utils.serialization import load_bundle, save_bundle


class NeuralNetwork:
    """A feed-forward network (multi-layer perceptron).

    Parameters
    ----------
    layers:
        Ordered list of layers.  The final layer's output is interpreted as
        class logits.
    n_classes:
        Number of output classes (2 throughout the paper: clean vs malware).
    temperature:
        Default softmax temperature used by :meth:`predict_proba`; defensive
        distillation trains with ``T = 50`` and predicts with ``T = 1``.
    name:
        Human-readable model name, recorded in serialized bundles.
    """

    def __init__(self, layers: Sequence[Layer], n_classes: int = 2,
                 temperature: float = 1.0, name: str = "network") -> None:
        if not layers:
            raise ShapeError("a network needs at least one layer")
        if n_classes < 2:
            raise ShapeError(f"n_classes must be >= 2, got {n_classes}")
        self.layers: List[Layer] = list(layers)
        self.n_classes = int(n_classes)
        self.temperature = float(temperature)
        self.name = name

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def mlp(cls, layer_sizes: Sequence[int], activation: str = "relu",
            dropout: float = 0.0, temperature: float = 1.0,
            name: str = "mlp", random_state: RandomState = None) -> "NeuralNetwork":
        """Build a fully-connected network from ``layer_sizes``.

        ``layer_sizes`` includes the input dimension and the output (class)
        dimension, e.g. Table IV's substitute model is
        ``[491, 1200, 1500, 1300, 2]``.  Hidden layers use ``activation`` and
        optional dropout; the final Dense layer produces logits.
        """
        if len(layer_sizes) < 2:
            raise ShapeError("layer_sizes must contain at least input and output sizes")
        if activation not in ACTIVATIONS:
            raise ValueError(
                f"unknown activation {activation!r}; expected one of {sorted(ACTIVATIONS)}"
            )
        rngs = spawn_rngs(random_state, 2 * (len(layer_sizes) - 1))
        layers: List[Layer] = []
        rng_index = 0
        for i in range(len(layer_sizes) - 1):
            is_output = i == len(layer_sizes) - 2
            init = "xavier_uniform" if is_output or activation in ("tanh", "sigmoid") else "he_normal"
            layers.append(Dense(layer_sizes[i], layer_sizes[i + 1],
                                weight_init=init, random_state=rngs[rng_index]))
            rng_index += 1
            if not is_output:
                layers.append(get_activation(activation))
                if dropout > 0:
                    layers.append(Dropout(dropout, random_state=rngs[rng_index]))
                rng_index += 1
        return cls(layers, n_classes=layer_sizes[-1], temperature=temperature, name=name)

    @property
    def input_dim(self) -> int:
        """Input feature dimension (taken from the first Dense layer)."""
        for layer in self.layers:
            if isinstance(layer, Dense):
                return layer.in_features
        raise ShapeError("network has no Dense layer")

    @property
    def layer_sizes(self) -> List[int]:
        """The Dense layer sizes, e.g. ``[491, 1200, 1500, 1300, 2]``."""
        sizes: List[int] = []
        for layer in self.layers:
            if isinstance(layer, Dense):
                if not sizes:
                    sizes.append(layer.in_features)
                sizes.append(layer.out_features)
        return sizes

    def parameters(self) -> List[Parameter]:
        """Every trainable parameter in layer order."""
        params: List[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def n_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return int(sum(p.value.size for p in self.parameters()))

    def zero_grad(self) -> None:
        """Clear all accumulated parameter gradients."""
        for param in self.parameters():
            param.zero_grad()

    def clone(self) -> "NeuralNetwork":
        """Deep-copy the network (weights and configuration)."""
        return copy.deepcopy(self)

    # ------------------------------------------------------------------ #
    # Forward / prediction
    # ------------------------------------------------------------------ #
    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        """Run a forward pass and return logits of shape ``(n, n_classes)``.

        The compute dtype follows the layer parameters (fixed when the
        network was built, see :mod:`repro.nn.engine`).  When buffer reuse is
        enabled the returned array may alias an internal layer buffer and is
        only valid until the next forward pass.
        """
        out = np.asarray(inputs)
        if out.ndim == 1:
            out = out.reshape(1, -1)
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def predict_logits(self, inputs: np.ndarray) -> np.ndarray:
        """Logits in inference mode, as a fresh array the caller may keep.

        Unlike raw :meth:`forward`, the result never aliases a reused layer
        buffer, so consecutive calls do not overwrite each other.
        """
        logits = self.forward(inputs, training=False)
        return np.array(logits) if get_engine().reuse_buffers else logits

    def predict_proba(self, inputs: np.ndarray,
                      temperature: Optional[float] = None) -> np.ndarray:
        """Class probabilities ``softmax(logits / T)``."""
        temp = self.temperature if temperature is None else temperature
        return softmax(self.predict_logits(inputs), temperature=temp)

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Hard class predictions."""
        return np.argmax(self.predict_logits(inputs), axis=1)

    def malware_score(self, inputs: np.ndarray) -> np.ndarray:
        """Probability assigned to the malware class (class 1).

        This is the "confidence" the paper's live grey-box experiment tracks
        as API calls are added to the source sample.
        """
        return self.predict_proba(inputs)[:, 1]

    # ------------------------------------------------------------------ #
    # Backward passes
    # ------------------------------------------------------------------ #
    def backward(self, grad_logits: np.ndarray) -> np.ndarray:
        """Backpropagate a gradient w.r.t. the logits through every layer.

        Returns the gradient with respect to the network input.  Parameter
        gradients are accumulated as a side effect; callers doing pure
        input-gradient computations should call :meth:`zero_grad` afterwards
        (the convenience wrappers below do this automatically).
        """
        grad = np.asarray(grad_logits)
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def train_step(self, inputs: np.ndarray, targets: np.ndarray,
                   loss: SoftmaxCrossEntropy, optimizer) -> float:
        """One optimisation step on a mini-batch; returns the batch loss."""
        logits = self.forward(inputs, training=True)
        value = loss.forward(logits, targets)
        self.backward(loss.backward())
        optimizer.step(self.parameters())
        return value

    def class_gradients(self, inputs: np.ndarray,
                        temperature: Optional[float] = None,
                        fused: Optional[bool] = None,
                        return_probs: bool = False):
        """Jacobian of the softmax output w.r.t. the input (Equation 1).

        Returns an array of shape ``(n_samples, n_classes, n_features)``
        where entry ``[s, i, j]`` is ``dF_i(x_s) / dx_j`` with
        ``F = softmax(logits / T)``.

        For binary classifiers the softmax rows sum to 1, so
        ``dF_0/dx == -dF_1/dx`` and the full Jacobian needs only ONE backward
        pass — this fused path halves the per-step backward cost of JSMA.
        ``fused=None`` (the default) selects it automatically when
        ``n_classes == 2``; pass ``fused=False`` to force the per-class loop
        (used by the verification tests and benchmarks).

        With ``return_probs=True`` the softmax probabilities from the forward
        pass are returned alongside the Jacobian, letting attack loops reuse
        them for early-stop predictions instead of running a second forward
        pass.
        """
        temp = self.temperature if temperature is None else temperature
        inputs = np.asarray(inputs)
        if inputs.ndim == 1:
            inputs = inputs.reshape(1, -1)
        logits = self.forward(inputs, training=False)
        probs = softmax(logits, temperature=temp)
        jacobian = np.empty((inputs.shape[0], self.n_classes, inputs.shape[1]),
                            dtype=probs.dtype)
        use_fused = self.n_classes == 2 if fused is None else (fused and self.n_classes == 2)
        if use_fused:
            grad_logits = softmax_input_gradient(probs, 0, temperature=temp)
            grad_input = self.backward(grad_logits)
            jacobian[:, 0, :] = grad_input
            np.negative(jacobian[:, 0, :], out=jacobian[:, 1, :])
        else:
            for class_index in range(self.n_classes):
                grad_logits = softmax_input_gradient(probs, class_index, temperature=temp)
                # A fresh forward pass is not needed between classes: layer
                # caches are untouched by backward(); we only need to discard
                # the accumulated parameter gradients afterwards.
                jacobian[:, class_index, :] = self.backward(grad_logits)
        self.zero_grad()
        if return_probs:
            return jacobian, probs
        return jacobian

    def loss_input_gradient(self, inputs: np.ndarray, labels: np.ndarray,
                            temperature: Optional[float] = None) -> np.ndarray:
        """Gradient of the cross-entropy loss w.r.t. the input (for FGSM)."""
        temp = self.temperature if temperature is None else temperature
        loss = SoftmaxCrossEntropy(temperature=temp)
        logits = self.forward(inputs, training=False)
        loss.forward(logits, labels)
        # Copy: backward() may return a reused layer buffer (repro.nn.engine).
        grad_input = np.array(self.backward(loss.backward()))
        self.zero_grad()
        return grad_input

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def get_config(self) -> dict:
        """JSON-serialisable architecture description."""
        return {
            "name": self.name,
            "n_classes": self.n_classes,
            "temperature": self.temperature,
            "layers": [layer.get_config() for layer in self.layers],
        }

    def save(self, path: str | Path) -> Path:
        """Persist architecture + weights to directory ``path``."""
        arrays = {}
        for index, layer in enumerate(self.layers):
            for param in layer.parameters():
                arrays[f"layer{index}_{param.name}"] = param.value
        return save_bundle(path, self.get_config(), arrays)

    @classmethod
    def load(cls, path: str | Path) -> "NeuralNetwork":
        """Restore a network saved with :meth:`save`."""
        meta, arrays = load_bundle(path)
        layers: List[Layer] = []
        for config in meta["layers"]:
            layer_type = config.get("type")
            if layer_type == "Dense":
                layers.append(Dense(config["in_features"], config["out_features"],
                                    weight_init=config.get("weight_init", "he_normal"),
                                    random_state=0))
            elif layer_type == "Dropout":
                layers.append(Dropout(config["rate"]))
            elif layer_type == "LeakyReLU":
                from repro.nn.activations import LeakyReLU
                layers.append(LeakyReLU(config.get("negative_slope", 0.01)))
            elif layer_type in ("ReLU", "Sigmoid", "Tanh"):
                layers.append(get_activation(layer_type.lower()))
            else:
                raise SerializationError(f"unknown layer type {layer_type!r} in bundle")
        network = cls(layers, n_classes=meta["n_classes"],
                      temperature=meta.get("temperature", 1.0),
                      name=meta.get("name", "network"))
        for index, layer in enumerate(network.layers):
            for param in layer.parameters():
                key = f"layer{index}_{param.name}"
                if key not in arrays:
                    raise SerializationError(f"missing weight array {key!r} in bundle")
                if arrays[key].shape != param.value.shape:
                    raise SerializationError(
                        f"weight {key!r} has shape {arrays[key].shape}, "
                        f"expected {param.value.shape}"
                    )
                saved = arrays[key]
                # A checkpoint carries its compute dtype with it: float32
                # bundles restore as float32 regardless of the current engine
                # default (non-float payloads fall back to the engine dtype).
                dtype = saved.dtype if saved.dtype in SUPPORTED_DTYPES else param.value.dtype
                param.value = saved.astype(dtype)
                param.grad = np.zeros_like(param.value)
        return network

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"NeuralNetwork(name={self.name!r}, sizes={self.layer_sizes}, "
                f"parameters={self.n_parameters()})")
