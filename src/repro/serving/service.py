"""The scoring service facade: API logs in, structured verdicts out.

:class:`ScoringService` exposes the trained ``log → features → verdict``
path as a reusable service.  Requests may carry a raw :class:`ApiLog`, a
pre-aggregated ``api -> count`` mapping, or an already-featurised vector
(the form adversarial traffic arrives in); every batch is featurised and
driven through a *single* fused ``predict_proba`` call on the engine path.

Two endpoint flavours coexist over the same bundle:

* **undefended** — the bare detector; the verdict label is the malware
  probability thresholded at :attr:`ScoringService.threshold`;
* **defended** — any :class:`~repro.defenses.base.DefendedDetector`
  (feature squeezing, ensemble, ...) wraps the decision, exactly as the
  Table VI evaluation consumes them.

Per-request latencies accumulate in a
:class:`~repro.serving.stats.LatencyTracker` so the ``serve`` CLI and the
benchmark harness report p50/p95/throughput from real observations.

Reliability hooks (all optional, all off by default — the fault-free path
is unchanged):

* a :class:`~repro.reliability.retry.RetryPolicy` re-attempts failing
  flushes with backoff; a :class:`~repro.reliability.retry.CircuitBreaker`
  observes flush outcomes and, while open, sheds arriving submissions with
  an explicit ``Verdict(status="shed")`` instead of queueing them past the
  flush-deadline SLO;
* ``isolate_poison`` arms the micro-batcher's bisection path so a single
  poison request becomes a ``Verdict(status="error")`` instead of wedging
  the batch;
* ``fallback_after`` demotes a repeatedly-failing defended endpoint to the
  undefended fast path (verdicts then carry ``defense=None``);
* every such event is counted in :attr:`ScoringService.reliability`, the
  structured ledger the chaos benchmark asserts against.

Shed and error verdicts carry ``label=-1`` and are *not* recorded in the
latency tracker — throughput statistics describe scored requests only.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Callable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.apilog.log_format import ApiLog
from repro.config import CLASS_MALWARE, CLASS_NAMES
from repro.defenses.base import DefendedDetector
from repro.exceptions import ServingError
from repro.features.extraction import CountSource
from repro.obs.trace import TraceContext
from repro.reliability import (CircuitBreaker, FaultInjector, ReliabilityReport,
                               RetryPolicy, maybe_fire)
from repro.serving.batcher import MicroBatcher
from repro.serving.registry import ServableModel
from repro.serving.stats import LatencyTracker, ThroughputReport

#: What a scoring request may carry: a log, a count mapping, or a feature row.
RequestPayload = Union[ApiLog, Mapping[str, int], np.ndarray]


@dataclass(frozen=True)
class ScoringRequest:
    """One unit of scoring work submitted to the service.

    ``trace`` is the optional distributed-tracing context a dispatcher
    stamps on (see :class:`~repro.obs.spans.TraceStamper`); the service
    then records each hop of the request's life — queue wait, batch wait,
    score time — as spans of that trace.  ``None`` (the default) traces
    nothing and costs one ``is None`` check.
    """

    request_id: str
    payload: RequestPayload
    trace: Optional[TraceContext] = None


@dataclass(frozen=True)
class Verdict:
    """The structured result the service returns for one request.

    ``status`` distinguishes how the verdict was produced: ``"ok"`` for a
    scored request, ``"shed"`` for one refused under load-shedding, and
    ``"error"`` for a poison request isolated out of a batch.  Non-``ok``
    verdicts carry ``label=-1`` and a zero probability.
    """

    request_id: str
    malware_probability: float
    label: int
    verdict: str
    threshold: float
    model_name: str
    model_version: str
    defense: Optional[str]
    latency_ms: float
    status: str = "ok"

    @property
    def is_malware(self) -> bool:
        """Whether the request was flagged as malware."""
        return self.label == CLASS_MALWARE

    @property
    def is_scored(self) -> bool:
        """Whether the request was actually scored (not shed / errored)."""
        return self.status == "ok"

    def as_dict(self) -> dict:
        """JSON-serialisable representation."""
        data = asdict(self)
        data["malware_probability"] = round(float(data["malware_probability"]), 6)
        data["latency_ms"] = round(float(data["latency_ms"]), 6)
        return data


class ScoringService:
    """Batched malware scoring over one :class:`ServableModel`.

    Parameters
    ----------
    servable:
        The model + pipeline bundle (from a
        :class:`~repro.serving.registry.ModelRegistry`).
    detector:
        Optional defended detector wrapping the decision.  ``None`` serves
        the bare model.
    threshold:
        Malware-probability decision threshold for the undefended endpoint
        (strictly-greater comparison, so the default ``0.5`` reproduces the
        model's own ``argmax`` decision).
    max_batch_size / max_delay_ms:
        Micro-batching knobs for the online :meth:`submit` path.
    clock:
        Time source in seconds (injectable for deterministic tests).
    retry_policy:
        Optional :class:`~repro.reliability.retry.RetryPolicy` re-attempting
        failing flushes with backoff.
    circuit_breaker:
        Optional :class:`~repro.reliability.retry.CircuitBreaker` fed every
        flush outcome; while open, :meth:`submit` sheds instead of queueing.
    isolate_poison:
        Arm the micro-batcher's bisection path: a request whose flush keeps
        failing is answered with ``Verdict(status="error")`` instead of the
        default restore-and-raise.
    fallback_after:
        After this many *consecutive* defended-decision failures the
        service permanently falls back to the undefended fast path
        (``None`` disables fallback).
    injector:
        Optional :class:`~repro.reliability.faults.FaultInjector`; when
        armed, each flush announces itself at the ``service.flush`` site.
    instrumentation:
        Optional :class:`~repro.obs.Instrumentation`.  When set, every
        flush runs inside a ``service.flush`` span (tagged with the batch
        size), the ``serve.requests`` / ``serve.sheds`` /
        ``serve.fallbacks`` / ``serve.errors`` / ``serve.flush_failures``
        counters track degradation, and the micro-batcher reports its
        queue depth and batch sizes.  Requests carrying a
        :class:`~repro.obs.trace.TraceContext` additionally get per-hop
        spans (``fleet.queue``, ``batcher.enqueue``, ``request.score``)
        recorded against their trace.  ``None`` (the default) leaves the
        hot path byte-for-byte unchanged.
    slo:
        Optional :class:`~repro.obs.slo.SLOMonitor`.  Every flush feeds
        its verdict latencies in and re-evaluates the burn-rate windows
        (on this service's ``clock``); a breached spec with
        ``on_breach="shed"`` makes :meth:`submit` shed arriving requests
        while the breach is active, and ``on_breach="fallback"`` demotes
        a defended endpoint like ``fallback_after`` does — degradation
        driven by measured burn instead of breaker trips.
    """

    def __init__(self, servable: ServableModel,
                 detector: Optional[DefendedDetector] = None,
                 threshold: float = 0.5,
                 max_batch_size: int = 32, max_delay_ms: float = 2.0,
                 clock: Callable[[], float] = time.perf_counter,
                 retry_policy: Optional[RetryPolicy] = None,
                 circuit_breaker: Optional[CircuitBreaker] = None,
                 isolate_poison: bool = False,
                 fallback_after: Optional[int] = None,
                 injector: Optional[FaultInjector] = None,
                 retry_sleep: Callable[[float], None] = time.sleep,
                 instrumentation=None, slo=None) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ServingError(f"threshold must lie in [0, 1], got {threshold}")
        if fallback_after is not None and fallback_after < 1:
            raise ServingError(
                f"fallback_after must be >= 1, got {fallback_after}")
        self.servable = servable
        self.detector = detector
        self.threshold = float(threshold)
        self._clock = clock
        self.tracker = LatencyTracker()
        self.reliability = ReliabilityReport()
        self._breaker = circuit_breaker
        self._injector = injector
        self._obs = instrumentation
        self._slo = slo
        self._trace_pickups: dict = {}
        self._fallback_after = fallback_after
        self._defense_failures = 0
        self._fallen_back = False

        def note_retry(attempt: int, error: Exception) -> None:
            self.reliability.flush_retries += 1

        def note_isolate(item: Tuple[ScoringRequest, float],
                         error: Exception) -> None:
            self.reliability.isolated += 1

        self._batcher: MicroBatcher[Tuple[ScoringRequest, float], Verdict] = MicroBatcher(
            self._flush_items, max_batch_size=max_batch_size,
            max_delay_ms=max_delay_ms, clock=clock,
            retry_policy=retry_policy,
            error_fn=self._error_verdict if isolate_poison else None,
            sleep=retry_sleep, on_retry=note_retry, on_isolate=note_isolate,
            instrumentation=instrumentation)
        self._request_counter = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def pipeline(self):
        """The bundle's feature pipeline."""
        return self.servable.pipeline

    @property
    def n_features(self) -> int:
        """Feature dimensionality the service scores."""
        return self.servable.n_features

    @property
    def defense_name(self) -> Optional[str]:
        """Name of the wrapping defense (None for the undefended endpoint).

        Also ``None`` after a reliability fallback demoted the endpoint —
        verdicts must advertise the decision path actually taken.
        """
        if self.detector is None or self._fallen_back:
            return None
        return self.detector.name

    @property
    def fell_back(self) -> bool:
        """Whether the defended endpoint fell back to the undefended path."""
        return self._fallen_back

    @property
    def pending(self) -> int:
        """Requests waiting in the micro-batcher."""
        return self._batcher.pending

    @property
    def max_batch_size(self) -> int:
        """The micro-batcher's fixed-size flush threshold."""
        return self._batcher.max_batch_size

    @property
    def max_delay_ms(self) -> float:
        """The micro-batcher's latency SLO in milliseconds."""
        return self._batcher.max_delay_ms

    @property
    def n_batches(self) -> int:
        """Fused batches scored so far."""
        return self._batcher.n_flushes

    # ------------------------------------------------------------------ #
    # Request construction / featurisation
    # ------------------------------------------------------------------ #
    def make_request(self, source: Union[ScoringRequest, RequestPayload],
                     request_id: Optional[str] = None) -> ScoringRequest:
        """Coerce a payload into a :class:`ScoringRequest` with a stable id.

        Raw payloads are validated here — at the door — so a malformed
        request is rejected on :meth:`submit` instead of poisoning the whole
        micro-batch at flush time.  Pre-wrapped :class:`ScoringRequest`
        objects (bulk streams from trusted producers like the load
        generator) take the fast path and are validated per batch on flush;
        if one does fail there, the batcher restores the other queued
        requests rather than dropping them.
        """
        if isinstance(source, ScoringRequest):
            return source
        if isinstance(source, np.ndarray):
            vector = np.asarray(source, dtype=np.float64).reshape(-1)
            if vector.shape[0] != self.n_features:
                raise ServingError(
                    f"request carries {vector.shape[0]} features but the model "
                    f"expects {self.n_features}")
            if not np.all(np.isfinite(vector)):
                raise ServingError("request carries non-finite features")
            source = vector          # store the validated (n_features,) shape
        elif isinstance(source, Mapping):
            negatives = [api for api, count in source.items() if count < 0]
            if negatives:
                raise ServingError(
                    f"request carries negative counts for {negatives[:3]}")
        elif not isinstance(source, ApiLog):
            raise ServingError(
                f"unsupported payload type {type(source).__name__}; expected an "
                f"ApiLog, an api->count mapping, or a feature vector")
        if request_id is None:
            if isinstance(source, ApiLog) and source.sample_id != "unknown":
                request_id = source.sample_id
            else:
                self._request_counter += 1
                request_id = f"req-{self._request_counter:06d}"
        return ScoringRequest(request_id=request_id, payload=source)

    def _features_of(self, requests: Sequence[ScoringRequest]) -> np.ndarray:
        """Featurise a batch: one row per request, logs through the pipeline.

        Pre-featurised payloads are validated and stacked with whole-batch
        numpy calls (not per row) — the micro-batcher's throughput win
        depends on the per-request Python overhead staying O(1) per batch.
        """
        feature_indices: List[int] = []
        feature_payloads: List[np.ndarray] = []
        log_indices: List[int] = []
        log_sources: List[CountSource] = []
        for index, request in enumerate(requests):
            payload = request.payload
            if isinstance(payload, np.ndarray):
                feature_indices.append(index)
                feature_payloads.append(payload)
            elif isinstance(payload, (ApiLog, Mapping)):
                log_indices.append(index)
                log_sources.append(payload)
            else:
                raise ServingError(
                    f"request {request.request_id!r} has unsupported payload type "
                    f"{type(payload).__name__}")
        rows = np.zeros((len(requests), self.n_features), dtype=np.float64)
        if feature_payloads:
            shapes = {payload.shape for payload in feature_payloads}
            if shapes != {(self.n_features,)}:
                bad = next(request for request in requests
                           if isinstance(request.payload, np.ndarray)
                           and request.payload.shape != (self.n_features,))
                raise ServingError(
                    f"request {bad.request_id!r} carries features of shape "
                    f"{bad.payload.shape} but the model expects ({self.n_features},)")
            matrix = np.asarray(feature_payloads, dtype=np.float64)
            if not np.all(np.isfinite(matrix)):
                bad_row = int(np.flatnonzero(~np.isfinite(matrix).all(axis=1))[0])
                raise ServingError(
                    f"request {requests[feature_indices[bad_row]].request_id!r} "
                    f"carries non-finite features")
            rows[feature_indices] = matrix
        if log_sources:
            rows[log_indices] = self.pipeline.transform(log_sources)
        return rows

    # ------------------------------------------------------------------ #
    # Scoring core (one fused predict per batch)
    # ------------------------------------------------------------------ #
    def _decide(self, features: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """(malware probabilities, hard labels) from one fused model call.

        A failing defended decision counts toward ``fallback_after``; once
        the budget is exhausted the endpoint permanently falls back to the
        undefended fast path (the failure still propagates so the caller's
        retry policy re-attempts — the retry then takes the fallback path).
        """
        if self.detector is not None and not self._fallen_back:
            try:
                probabilities, labels = self.detector.decide(features)
            except Exception:
                self._defense_failures += 1
                if (self._fallback_after is not None
                        and self._defense_failures >= self._fallback_after):
                    self._fallen_back = True
                    self.reliability.fallbacks += 1
                    if self._obs is not None:
                        self._obs.count("serve.fallbacks")
                raise
            self._defense_failures = 0
        else:
            probabilities = self.servable.model.malware_confidence(features)
            labels = (probabilities > self.threshold).astype(np.int64)
        return np.asarray(probabilities, dtype=np.float64), np.asarray(labels)

    def _verdicts_for(self, requests: Sequence[ScoringRequest],
                      enqueued_at: Sequence[float]) -> List[Verdict]:
        features = self._features_of(requests)
        if features.shape[0] == 0:
            return []
        probabilities, labels = self._decide(features)
        finished = self._clock()
        # Hot loop: one Verdict per request per batch — keep lookups local.
        record = self.tracker.record
        threshold = self.threshold
        model_name = self.servable.name
        model_version = self.servable.version
        defense = self.defense_name
        verdicts = []
        for request, started, probability, label in zip(
                requests, enqueued_at, probabilities, labels):
            latency_ms = max(0.0, (finished - started) * 1000.0)
            record(latency_ms)
            label = int(label)
            verdicts.append(Verdict(
                request_id=request.request_id,
                malware_probability=float(probability),
                label=label,
                verdict=CLASS_NAMES[label],
                threshold=threshold,
                model_name=model_name,
                model_version=model_version,
                defense=defense,
                latency_ms=latency_ms,
            ))
        return verdicts

    def _flush_items(self, items: List[Tuple[ScoringRequest, float]]) -> List[Verdict]:
        """One flush attempt: injector site, scoring, breaker accounting.

        With instrumentation attached the whole attempt runs inside one
        per-batch ``service.flush`` span; failures count in
        ``serve.flush_failures`` and scored requests in ``serve.requests``.
        Traced requests get their ``batcher.enqueue`` / ``request.score``
        spans recorded here, and an attached SLO monitor is fed and
        re-evaluated once per flush — batch-level work, like every other
        instrumentation point.
        """
        if self._obs is None:
            verdicts = self._flush_attempt(items)
            if self._slo is not None:
                self._feed_slo(verdicts)
            return verdicts
        with self._obs.span("service.flush", n=len(items)) as flush_span:
            try:
                verdicts = self._flush_attempt(items)
            except BaseException:
                self._obs.count("serve.flush_failures")
                raise
            self._obs.count("serve.requests", len(verdicts))
            if self._trace_pickups:  # only traced requests have hop spans
                self._record_request_spans(items, flush_span.started)
            if self._slo is not None:
                self._feed_slo(verdicts)
            return verdicts

    def _record_request_spans(self, items: Sequence[Tuple[ScoringRequest, float]],
                              flush_started: float) -> None:
        """Close the per-hop spans of every traced request in the batch."""
        obs = self._obs
        pickups = self._trace_pickups
        finished = self._clock()
        batch = len(items)
        for request, _ in items:
            trace = request.trace
            if trace is None:
                continue
            pickup = pickups.pop(request.request_id, None)
            if pickup is not None:
                obs.record_span("batcher.enqueue", pickup, flush_started,
                                trace=trace)
            obs.record_span("request.score", flush_started, finished,
                            trace=trace, batch=batch)

    def _feed_slo(self, verdicts: Sequence[Verdict]) -> None:
        """Feed one flush's outcomes to the SLO monitor and re-evaluate.

        The monitor runs on this service's clock so window bucketing and
        verdict timing share one time base.  A breached fallback-form spec
        demotes a defended endpoint exactly like ``fallback_after``.
        """
        slo = self._slo
        now = self._clock()
        for verdict in verdicts:
            slo.observe(latency_ms=verdict.latency_ms, good=True, now=now)
        slo.evaluate(now=now)
        if (slo.wants_fallback() and not self._fallen_back
                and self.detector is not None):
            self._fallen_back = True
            self.reliability.fallbacks += 1
            if self._obs is not None:
                self._obs.count("serve.fallbacks")

    def _flush_attempt(self, items: List[Tuple[ScoringRequest, float]]) -> List[Verdict]:
        try:
            maybe_fire(self._injector, "service.flush", n=len(items))
            requests = [request for request, _ in items]
            enqueued = [started for _, started in items]
            verdicts = self._verdicts_for(requests, enqueued)
        except Exception:
            if self._breaker is not None:
                self._breaker.record_failure()
                self.reliability.breaker_trips = self._breaker.n_trips
            raise
        if self._breaker is not None:
            self._breaker.record_success()
        return verdicts

    # ------------------------------------------------------------------ #
    # Degraded verdicts (shed / error) — never recorded in the tracker
    # ------------------------------------------------------------------ #
    def _degraded_verdict(self, request: ScoringRequest, started: float,
                          status: str) -> Verdict:
        return Verdict(
            request_id=request.request_id,
            malware_probability=0.0,
            label=-1,
            verdict=status,
            threshold=self.threshold,
            model_name=self.servable.name,
            model_version=self.servable.version,
            defense=self.defense_name,
            latency_ms=max(0.0, (self._clock() - started) * 1000.0),
            status=status,
        )

    def _error_verdict(self, item: Tuple[ScoringRequest, float],
                       error: Exception) -> Verdict:
        """The batcher's poison-isolation hook: one bad request, answered."""
        request, started = item
        if self._obs is not None:
            self._obs.count("serve.errors")
            if request.trace is not None:
                pickup = self._trace_pickups.pop(request.request_id, started)
                self._obs.record_span("request.score", pickup, self._clock(),
                                      trace=request.trace, error=True)
        if self._slo is not None:
            self._slo.observe(good=False, now=self._clock())
        return self._degraded_verdict(request, started, "error")

    def _should_shed(self) -> bool:
        """Whether an arriving submission must be refused right now.

        Two independent triggers: an open circuit breaker (flushes are
        *failing*) and an active shed-armed SLO breach (flushes succeed
        but burn the latency budget too fast).
        """
        if self._breaker is not None and not self._breaker.allow():
            return True
        return self._slo is not None and self._slo.should_shed()

    # ------------------------------------------------------------------ #
    # Public scoring API
    # ------------------------------------------------------------------ #
    def score(self, source: Union[ScoringRequest, RequestPayload],
              request_id: Optional[str] = None) -> Verdict:
        """Score one request immediately (batch of one)."""
        request = self.make_request(source, request_id)
        return self._verdicts_for([request], [self._clock()])[0]

    def score_many(self, sources: Sequence[Union[ScoringRequest, RequestPayload]]
                   ) -> List[Verdict]:
        """Score a whole collection as one fused batch (the offline path)."""
        requests = [self.make_request(source) for source in sources]
        started = self._clock()
        return self._verdicts_for(requests, [started] * len(requests))

    def submit(self, source: Union[ScoringRequest, RequestPayload],
               request_id: Optional[str] = None,
               enqueued_at: Optional[float] = None) -> List[Verdict]:
        """Enqueue one request on the micro-batcher (the online path).

        Returns the verdicts of any flush this submission triggered; call
        :meth:`poll` between arrivals and :meth:`drain` at stream end to
        collect the rest.  ``enqueued_at`` (same time base as ``clock``)
        backdates the latency measurement to when the request entered an
        upstream queue — the :class:`~repro.parallel.fleet.WorkerFleet`
        dispatcher uses it so fleet latencies include queueing delay.

        While a configured circuit breaker is open (flushes repeatedly
        failing) the request is *shed*: answered immediately with
        ``Verdict(status="shed")`` rather than queued past a deadline it
        cannot meet.
        """
        request = self.make_request(source, request_id)
        started = enqueued_at if enqueued_at is not None else self._clock()
        if self._should_shed():
            self.reliability.sheds += 1
            if self._obs is not None:
                self._obs.count("serve.sheds")
            return [self._degraded_verdict(request, started, "shed")]
        if self._obs is not None and request.trace is not None:
            # The queue-wait hop ends here: dispatcher enqueue -> pickup.
            pickup = self._clock()
            self._obs.record_span("fleet.queue", started, pickup,
                                  trace=request.trace)
            self._trace_pickups[request.request_id] = pickup
        return self._batcher.submit((request, started))

    def poll(self) -> List[Verdict]:
        """Force a flush if the oldest pending request exceeded the delay SLO."""
        return self._batcher.poll()

    def drain(self) -> List[Verdict]:
        """Flush whatever is still pending and return its verdicts."""
        return self._batcher.flush()

    @property
    def deadline(self) -> Optional[float]:
        """Clock time the pending batch must flush by (None when empty)."""
        return self._batcher.deadline

    def clear_pending(self) -> List[ScoringRequest]:
        """Drop the queued requests (recovery after a failing flush)."""
        return [request for request, _ in self._batcher.clear()]

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    def report(self, elapsed_s: float) -> ThroughputReport:
        """Throughput/latency summary of everything scored so far."""
        return self.tracker.report(elapsed_s)

    def reset_stats(self) -> None:
        """Forget recorded latencies (keeps the model and pending queue)."""
        self.tracker.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ScoringService(model={self.servable.name!r}, "
                f"version={self.servable.version!r}, "
                f"defense={self.defense_name!r})")
