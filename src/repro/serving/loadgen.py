"""Synthetic mixed-traffic generation for load-testing the scoring service.

Production malware scorers see three kinds of traffic: clean software,
ordinary malware, and adversarially-perturbed malware built to evade the
detector.  :class:`LoadGenerator` replays exactly that mix against a
:class:`~repro.serving.service.ScoringService`:

* **clean** / **malware** requests are fresh test-distribution samples drawn
  from the corpus generator and executed in the multi-OS sandbox into full
  :class:`~repro.apilog.log_format.ApiLog` traces — they exercise the whole
  ``log → features → verdict`` path;
* **adversarial** requests are JSMA-perturbed feature vectors from the
  grey-box attack at the paper's (θ, γ) operating point — they arrive
  already featurised, as evasion traffic does after perturbation.

Everything is deterministic given ``(context, seed)``, and
:func:`replay` pushes a generated stream through the service's
micro-batcher at a configurable request rate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import CLASS_CLEAN, CLASS_MALWARE
from repro.apilog.sandbox import SUPPORTED_OS_VERSIONS, Sandbox
from repro.exceptions import ServingError
from repro.experiments.context import ExperimentContext
from repro.serving.service import ScoringRequest, ScoringService, Verdict

#: The request kinds a traffic mix is made of, in mix-fraction order.
TRAFFIC_KINDS = ("clean", "malware", "adversarial")


@dataclass(frozen=True)
class TrafficMix:
    """Fractions of clean / malware / adversarial requests in the stream."""

    clean: float = 0.5
    malware: float = 0.4
    adversarial: float = 0.1

    def __post_init__(self) -> None:
        fractions = (self.clean, self.malware, self.adversarial)
        if any(fraction < 0 for fraction in fractions):
            raise ServingError(f"traffic fractions must be non-negative, got {fractions}")
        if sum(fractions) <= 0:
            raise ServingError("traffic mix must have a positive total fraction")

    def probabilities(self) -> np.ndarray:
        """The mix normalised to a probability vector over :data:`TRAFFIC_KINDS`."""
        raw = np.array([self.clean, self.malware, self.adversarial], dtype=np.float64)
        return raw / raw.sum()

    @classmethod
    def parse(cls, text: str) -> "TrafficMix":
        """Parse a ``clean,malware,adversarial`` fraction triple (CLI form)."""
        parts = [part.strip() for part in text.split(",")]
        if len(parts) != 3:
            raise ServingError(
                f"expected 'clean,malware,adversarial' fractions, got {text!r}")
        try:
            clean, malware, adversarial = (float(part) for part in parts)
        except ValueError:
            raise ServingError(f"traffic fractions must be numbers, got {text!r}") from None
        return cls(clean=clean, malware=malware, adversarial=adversarial)


class LoadGenerator:
    """Deterministic scenario-diverse request streams for one context.

    Parameters
    ----------
    context:
        The shared experiment state supplying the corpus generator, the
        defender pipeline and (for adversarial traffic) the grey-box
        adversarial examples.
    mix:
        Traffic composition (defaults to 50% clean / 40% malware / 10%
        adversarial).
    seed:
        Load-generator seed; independent of the context's master seed so
        several distinct streams can replay against the same model.
    theta / gamma:
        Operating point of the JSMA perturbations behind adversarial
        requests (paper defaults θ=0.1, γ=0.02).
    """

    def __init__(self, context: ExperimentContext, mix: Optional[TrafficMix] = None,
                 seed: int = 0, theta: float = 0.1, gamma: float = 0.02) -> None:
        self.context = context
        self.mix = mix if mix is not None else TrafficMix()
        self.seed = int(seed)
        self.theta = float(theta)
        self.gamma = float(gamma)
        self._epoch = 0

    def _adversarial_rows(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` JSMA-perturbed feature rows (with replacement)."""
        dataset = self.context.greybox_adversarial(theta=self.theta, gamma=self.gamma)
        indices = rng.integers(0, dataset.n_samples, size=n)
        return dataset.features[indices]

    def _sandboxed_logs(self, n: int, label: int, kind: str,
                        rng: np.random.Generator) -> List:
        """Execute ``n`` fresh test-distribution samples into full API logs."""
        samples = self.context.generator.generate_source_samples(
            n, label, source="test",
            rng_name=f"loadgen:{self.seed}:{self._epoch}:{kind}")
        logs = []
        for sample in samples:
            os_version = SUPPORTED_OS_VERSIONS[int(rng.integers(len(SUPPORTED_OS_VERSIONS)))]
            sandbox = Sandbox(os_version=os_version,
                              random_state=int(rng.integers(2**31 - 1)),
                              record_args=False)
            logs.append(sandbox.execute(sample).log)
        return logs

    def generate(self, n_requests: int) -> List[ScoringRequest]:
        """Generate a deterministic stream of ``n_requests`` mixed requests.

        Request ids encode the kind (``clean-...``, ``malware-...``,
        ``adv-...``) so replay results can be sliced per scenario.
        """
        if n_requests < 1:
            raise ServingError(f"n_requests must be >= 1, got {n_requests}")
        rng = np.random.default_rng((self.seed, self._epoch))
        kinds = rng.choice(len(TRAFFIC_KINDS), size=n_requests,
                           p=self.mix.probabilities())
        n_clean = int(np.sum(kinds == 0))
        n_malware = int(np.sum(kinds == 1))
        n_adversarial = int(np.sum(kinds == 2))

        queues = {
            0: self._sandboxed_logs(n_clean, CLASS_CLEAN, "clean", rng) if n_clean else [],
            1: self._sandboxed_logs(n_malware, CLASS_MALWARE, "malware", rng) if n_malware else [],
            2: list(self._adversarial_rows(n_adversarial, rng)) if n_adversarial else [],
        }
        requests: List[ScoringRequest] = []
        cursors = {0: 0, 1: 0, 2: 0}
        for index, kind in enumerate(kinds):
            kind = int(kind)
            payload = queues[kind][cursors[kind]]
            cursors[kind] += 1
            requests.append(ScoringRequest(
                request_id=f"{'adv' if kind == 2 else TRAFFIC_KINDS[kind]}-"
                           f"{self._epoch}-{index:06d}",
                payload=payload))
        self._epoch += 1
        return requests

    def arrival_times(self, n_requests: int, rate_per_s: float) -> np.ndarray:
        """Poisson-process arrival offsets (seconds) for ``n_requests``.

        :func:`replay` samples the same schedule when given ``rate_per_s``
        and this generator's seed.
        """
        return _poisson_offsets(n_requests, rate_per_s, self.seed)


def _poisson_offsets(n_requests: int, rate_per_s: float, seed: int) -> np.ndarray:
    """Cumulative Poisson-process arrival offsets (seconds)."""
    if rate_per_s <= 0:
        raise ServingError(f"rate_per_s must be positive, got {rate_per_s}")
    rng = np.random.default_rng((seed, 104729, n_requests))
    return np.cumsum(rng.exponential(1.0 / rate_per_s, size=n_requests))


def replay(service: ScoringService, requests: Sequence[ScoringRequest],
           rate_per_s: Optional[float] = None,
           arrival_times: Optional[Sequence[float]] = None,
           seed: int = 0,
           sleep: Callable[[float], None] = time.sleep,
           now: Callable[[], float] = time.perf_counter,
           progress: Optional[Callable[[dict], None]] = None) -> List[Verdict]:
    """Replay a request stream through the service's micro-batcher.

    With ``rate_per_s`` (arrivals sampled like
    :meth:`LoadGenerator.arrival_times`, varied by ``seed``) or explicit
    ``arrival_times``, the stream is paced like a Poisson arrival process —
    the service's latency numbers then include genuine queueing delay, and
    the pacing loop wakes up early whenever the service's flush deadline
    falls before the next arrival, so ``max_delay_ms`` is honoured even at
    request rates slower than the SLO.  Otherwise requests are pushed
    back-to-back as fast as the service accepts them.  ``now`` must be the
    same time source as the service's ``clock``.  Returns verdicts in
    completion order (one per request).

    ``progress``, if given, is called after every flush that produced
    verdicts with ``{"new_verdicts": [...], "n_done": int,
    "n_expected": int, "elapsed_s": float}`` — the same shape the fleet
    dispatcher reports, so one live-dashboard publisher serves both paths.
    """
    offsets: Optional[np.ndarray] = None
    if arrival_times is not None:
        offsets = np.asarray(arrival_times, dtype=np.float64)
        if offsets.shape[0] != len(requests):
            raise ServingError(
                f"{len(requests)} requests but {offsets.shape[0]} arrival times")
    elif rate_per_s is not None:
        offsets = _poisson_offsets(len(requests), rate_per_s, seed)

    verdicts: List[Verdict] = []
    start = now()

    def collect(fresh: List[Verdict]) -> None:
        verdicts.extend(fresh)
        if progress is not None and fresh:
            progress({"new_verdicts": fresh, "n_done": len(verdicts),
                      "n_expected": len(requests),
                      "elapsed_s": now() - start})

    for index, request in enumerate(requests):
        if offsets is not None:
            arrival = start + offsets[index]
            while True:
                deadline = service.deadline
                wake = arrival if deadline is None else min(arrival, deadline)
                remaining = wake - now()
                if remaining > 0:
                    sleep(remaining)
                collect(service.poll())
                if wake >= arrival:
                    break
        collect(service.submit(request))
    collect(service.drain())
    return verdicts
