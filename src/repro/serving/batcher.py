"""Fixed-size / fixed-latency micro-batching of scoring requests.

An online detector receives requests one at a time but the compute engine is
dramatically more efficient per sample when it scores a whole matrix in one
fused ``predict_proba`` call.  :class:`MicroBatcher` bridges the two: it
accumulates submitted items and flushes them as one batch when either

* the batch reaches ``max_batch_size`` (fixed-size flush), or
* the *oldest* pending item has waited ``max_delay_ms`` (fixed-latency
  flush, checked by :meth:`poll`),

whichever comes first.  The batcher is synchronous and single-threaded by
design — the caller drives it (``submit`` → maybe ``poll`` → finally
``flush``), which keeps the semantics deterministic and testable with an
injected clock.
"""

from __future__ import annotations

import time
from typing import Callable, Generic, List, Optional, Sequence, TypeVar

from repro.exceptions import ServingError

T = TypeVar("T")
R = TypeVar("R")


class MicroBatcher(Generic[T, R]):
    """Accumulate items and flush them through ``flush_fn`` in batches.

    Parameters
    ----------
    flush_fn:
        Called with the list of pending items on every flush; must return
        exactly one result per item, in order.
    max_batch_size:
        Flush as soon as this many items are pending.
    max_delay_ms:
        Maximum time the oldest pending item may wait before :meth:`poll`
        forces a flush.  ``0`` makes every :meth:`poll` flush.
    clock:
        Monotonic time source in seconds (injectable for tests).
    retry_policy:
        Optional :class:`~repro.reliability.retry.RetryPolicy`; each flush
        attempt that fails with an ``Exception`` is re-attempted with
        backoff before the failure is treated as final.  ``None`` (the
        default) preserves the single-attempt behaviour.
    error_fn:
        Optional poison-isolation hook ``(item, error) -> result``.  When
        set, a batch whose (retried) flush still fails is *bisected*:
        halves are flushed independently until the failure is pinned to a
        single item, which is answered by ``error_fn`` instead of wedging
        the batch.  ``None`` (the default) preserves the restore-and-raise
        behaviour.
    sleep:
        Sleep used between retry attempts (injectable for tests).
    on_retry:
        Optional callback ``(attempt, error)`` fired before each re-attempt.
    on_isolate:
        Optional callback ``(item, error)`` fired when a poison item is
        isolated into an ``error_fn`` result.
    instrumentation:
        Optional :class:`~repro.obs.Instrumentation`; when set, every
        flush samples the ``batcher.queue_depth`` gauge (pre-flush peak,
        then post-flush leftover — batch-boundary sampling, so the
        per-item submit path stays instrumentation-free) and records the
        batch size in the ``batcher.batch_size`` histogram plus its lag
        past the oldest item's deadline in ``batcher.flush_lag_ms``
        (negative = flushed with headroom) — the raw signal behind the
        flush-deadline SLO.  ``None`` (the default) keeps the hot path
        untouched.
    """

    def __init__(self, flush_fn: Callable[[List[T]], Sequence[R]],
                 max_batch_size: int = 32, max_delay_ms: float = 5.0,
                 clock: Callable[[], float] = time.monotonic,
                 retry_policy=None,
                 error_fn: Optional[Callable[[T, Exception], R]] = None,
                 sleep: Callable[[float], None] = time.sleep,
                 on_retry: Optional[Callable[[int, Exception], None]] = None,
                 on_isolate: Optional[Callable[[T, Exception], None]] = None,
                 instrumentation=None) -> None:
        if max_batch_size < 1:
            raise ServingError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_delay_ms < 0:
            raise ServingError(f"max_delay_ms must be >= 0, got {max_delay_ms}")
        self._flush_fn = flush_fn
        self.max_batch_size = int(max_batch_size)
        self.max_delay_ms = float(max_delay_ms)
        self._clock = clock
        self._retry_policy = retry_policy
        self._error_fn = error_fn
        self._sleep = sleep
        self._on_retry = on_retry
        self._on_isolate = on_isolate
        self._obs = instrumentation
        self._depth_gauge = (instrumentation.metrics.gauge("batcher.queue_depth")
                            if instrumentation is not None else None)
        self._pending: List[T] = []
        self._oldest_enqueued_at: Optional[float] = None
        self.n_submitted = 0
        self.n_flushes = 0
        self.n_retries = 0
        self.n_isolated = 0
        self.batch_sizes: List[int] = []

    @property
    def pending(self) -> int:
        """Number of items waiting for the next flush."""
        return len(self._pending)

    @property
    def deadline(self) -> Optional[float]:
        """Clock time at which the pending batch must flush (None when empty)."""
        if self._oldest_enqueued_at is None:
            return None
        return self._oldest_enqueued_at + self.max_delay_ms / 1000.0

    def submit(self, item: T) -> List[R]:
        """Enqueue one item; returns flushed results when this fills the batch.

        While the batch is still accumulating the return value is ``[]`` —
        results for the enqueued item arrive from the flush that eventually
        includes it.
        """
        if self._oldest_enqueued_at is None:
            self._oldest_enqueued_at = self._clock()
        self._pending.append(item)
        self.n_submitted += 1
        if len(self._pending) >= self.max_batch_size:
            return self.flush()
        return []

    def submit_many(self, items: Sequence[T]) -> List[R]:
        """Enqueue several items, collecting results of any triggered flushes."""
        results: List[R] = []
        for item in items:
            results.extend(self.submit(item))
        return results

    def poll(self) -> List[R]:
        """Flush if the oldest pending item has exceeded ``max_delay_ms``."""
        deadline = self.deadline
        if deadline is not None and self._clock() >= deadline:
            return self.flush()
        return []

    def clear(self) -> List[T]:
        """Drop and return every pending item without flushing.

        The recovery path after a failing flush (which restores the batch):
        the caller takes the items back, removes the offender and resubmits
        the rest.
        """
        dropped, self._pending = self._pending, []
        self._oldest_enqueued_at = None
        return dropped

    def flush(self) -> List[R]:
        """Flush whatever is pending (no-op on an empty batch).

        If the flush fails for good — after any configured retries, and
        with no ``error_fn`` to bisect the poison item out — the batch is
        restored to the front of the queue before the exception propagates:
        one bad item must not silently destroy every other queued item; the
        caller can take the items back with :meth:`clear`, drop the
        offender and resubmit the rest.
        """
        if not self._pending:
            return []
        batch, self._pending = self._pending, []
        oldest, self._oldest_enqueued_at = self._oldest_enqueued_at, None
        try:
            results = self._flush_batch(batch)
            if len(results) != len(batch):
                raise ServingError(
                    f"flush_fn returned {len(results)} results for a batch of "
                    f"{len(batch)}")
        except BaseException:
            # Restores on injected WorkerCrash (BaseException) too, so a
            # crashing replica never eats requests it had not yet scored.
            self._pending = batch + self._pending
            self._oldest_enqueued_at = oldest
            raise
        self.n_flushes += 1
        self.batch_sizes.append(len(batch))
        if self._obs is not None:
            # Queue depth is sampled at flush boundaries: depth grows
            # monotonically between flushes, so the pre-flush batch size
            # IS the interval's peak and the leftover is the level the
            # next interval starts from — same max and same final value
            # as per-submit sampling, with zero per-item hot-path work.
            self._depth_gauge.set(len(batch))
            self._depth_gauge.set(len(self._pending))
            self._obs.observe("batcher.batch_size", len(batch))
            if oldest is not None:
                deadline = oldest + self.max_delay_ms / 1000.0
                self._obs.observe("batcher.flush_lag_ms",
                                  (self._clock() - deadline) * 1000.0)
        return results

    def _attempt(self, batch: List[T]) -> List[R]:
        """One logical flush of ``batch``, retried under the policy if set."""
        if self._retry_policy is None:
            return list(self._flush_fn(batch))

        def note_retry(attempt: int, error: Exception) -> None:
            self.n_retries += 1
            if self._on_retry is not None:
                self._on_retry(attempt, error)

        return list(self._retry_policy.run(
            lambda: self._flush_fn(batch), sleep=self._sleep,
            on_retry=note_retry))

    def _flush_batch(self, batch: List[T]) -> List[R]:
        """Flush ``batch``, bisecting persistent failures down to one item.

        Only ``Exception`` failures are handled — a ``BaseException`` crash
        propagates immediately.  Result order always matches item order
        because halves are flushed left-to-right.
        """
        try:
            return self._attempt(batch)
        except Exception as error:
            if self._error_fn is None:
                raise
            if len(batch) == 1:
                self.n_isolated += 1
                if self._on_isolate is not None:
                    self._on_isolate(batch[0], error)
                return [self._error_fn(batch[0], error)]
            midpoint = len(batch) // 2
            return (self._flush_batch(batch[:midpoint]) +
                    self._flush_batch(batch[midpoint:]))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MicroBatcher(max_batch_size={self.max_batch_size}, "
                f"max_delay_ms={self.max_delay_ms}, pending={self.pending})")
