"""Fixed-size / fixed-latency micro-batching of scoring requests.

An online detector receives requests one at a time but the compute engine is
dramatically more efficient per sample when it scores a whole matrix in one
fused ``predict_proba`` call.  :class:`MicroBatcher` bridges the two: it
accumulates submitted items and flushes them as one batch when either

* the batch reaches ``max_batch_size`` (fixed-size flush), or
* the *oldest* pending item has waited ``max_delay_ms`` (fixed-latency
  flush, checked by :meth:`poll`),

whichever comes first.  The batcher is synchronous and single-threaded by
design — the caller drives it (``submit`` → maybe ``poll`` → finally
``flush``), which keeps the semantics deterministic and testable with an
injected clock.
"""

from __future__ import annotations

import time
from typing import Callable, Generic, List, Optional, Sequence, TypeVar

from repro.exceptions import ServingError

T = TypeVar("T")
R = TypeVar("R")


class MicroBatcher(Generic[T, R]):
    """Accumulate items and flush them through ``flush_fn`` in batches.

    Parameters
    ----------
    flush_fn:
        Called with the list of pending items on every flush; must return
        exactly one result per item, in order.
    max_batch_size:
        Flush as soon as this many items are pending.
    max_delay_ms:
        Maximum time the oldest pending item may wait before :meth:`poll`
        forces a flush.  ``0`` makes every :meth:`poll` flush.
    clock:
        Monotonic time source in seconds (injectable for tests).
    """

    def __init__(self, flush_fn: Callable[[List[T]], Sequence[R]],
                 max_batch_size: int = 32, max_delay_ms: float = 5.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if max_batch_size < 1:
            raise ServingError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_delay_ms < 0:
            raise ServingError(f"max_delay_ms must be >= 0, got {max_delay_ms}")
        self._flush_fn = flush_fn
        self.max_batch_size = int(max_batch_size)
        self.max_delay_ms = float(max_delay_ms)
        self._clock = clock
        self._pending: List[T] = []
        self._oldest_enqueued_at: Optional[float] = None
        self.n_submitted = 0
        self.n_flushes = 0
        self.batch_sizes: List[int] = []

    @property
    def pending(self) -> int:
        """Number of items waiting for the next flush."""
        return len(self._pending)

    @property
    def deadline(self) -> Optional[float]:
        """Clock time at which the pending batch must flush (None when empty)."""
        if self._oldest_enqueued_at is None:
            return None
        return self._oldest_enqueued_at + self.max_delay_ms / 1000.0

    def submit(self, item: T) -> List[R]:
        """Enqueue one item; returns flushed results when this fills the batch.

        While the batch is still accumulating the return value is ``[]`` —
        results for the enqueued item arrive from the flush that eventually
        includes it.
        """
        if self._oldest_enqueued_at is None:
            self._oldest_enqueued_at = self._clock()
        self._pending.append(item)
        self.n_submitted += 1
        if len(self._pending) >= self.max_batch_size:
            return self.flush()
        return []

    def submit_many(self, items: Sequence[T]) -> List[R]:
        """Enqueue several items, collecting results of any triggered flushes."""
        results: List[R] = []
        for item in items:
            results.extend(self.submit(item))
        return results

    def poll(self) -> List[R]:
        """Flush if the oldest pending item has exceeded ``max_delay_ms``."""
        deadline = self.deadline
        if deadline is not None and self._clock() >= deadline:
            return self.flush()
        return []

    def clear(self) -> List[T]:
        """Drop and return every pending item without flushing.

        The recovery path after a failing flush (which restores the batch):
        the caller takes the items back, removes the offender and resubmits
        the rest.
        """
        dropped, self._pending = self._pending, []
        self._oldest_enqueued_at = None
        return dropped

    def flush(self) -> List[R]:
        """Flush whatever is pending (no-op on an empty batch).

        If ``flush_fn`` raises, the batch is restored to the front of the
        queue before the exception propagates — one bad item must not
        silently destroy every other queued item; the caller can take the
        items back with :meth:`clear`, drop the offender and resubmit the
        rest.
        """
        if not self._pending:
            return []
        batch, self._pending = self._pending, []
        oldest, self._oldest_enqueued_at = self._oldest_enqueued_at, None
        try:
            results = list(self._flush_fn(batch))
            if len(results) != len(batch):
                raise ServingError(
                    f"flush_fn returned {len(results)} results for a batch of "
                    f"{len(batch)}")
        except Exception:
            self._pending = batch + self._pending
            self._oldest_enqueued_at = oldest
            raise
        self.n_flushes += 1
        self.batch_sizes.append(len(batch))
        return results

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MicroBatcher(max_batch_size={self.max_batch_size}, "
                f"max_delay_ms={self.max_delay_ms}, pending={self.pending})")
