"""Named, versioned ``model + pipeline`` bundles for the scoring service.

A deployed detector is more than a network: it is the network *plus* the
feature pipeline it was trained behind, at a specific scale/seed/dtype.
:class:`ModelRegistry` owns that pairing.  Each registered name maps to a
builder that produces the bundle from an
:class:`~repro.experiments.context.ExperimentContext`; the registry stamps
the result with a deterministic *version* (a content hash of name, scale
profile, seed and compute dtype) and — when an
:class:`~repro.utils.artifact_cache.ArtifactCache` is attached — persists
the bundle so later processes warm-start the service without retraining.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.config import ScaleProfile
from repro.exceptions import ServingError
from repro.experiments.context import ExperimentContext
from repro.features.pipeline import FeaturePipeline
from repro.models.base import DetectorModel
from repro.models.substitute_model import SubstituteModel
from repro.models.target_model import TargetModel
from repro.nn.engine import compute_dtype
from repro.scenarios.registry import DEFENSES, build_defense, ensure_registries
from repro.scenarios.spec import ScenarioSpec
from repro.utils.artifact_cache import CACHE_SCHEMA_VERSION, ArtifactCache

#: Cache kind under which serving bundles are stored.
BUNDLE_KIND = "serving"

_BUNDLE_INFO = "bundle.json"

_MODEL_CLASSES = {
    "TargetModel": TargetModel,
    "SubstituteModel": SubstituteModel,
    "DetectorModel": DetectorModel,
}

#: A builder turns shared experiment state into a (model, fitted pipeline) pair.
ModelBuilder = Callable[[ExperimentContext], Tuple[DetectorModel, FeaturePipeline]]

#: The bundle builder behind each scenario crafting surface (the ``target``
#: and ``substitute`` entries are also the registry's default bundles).
MODEL_BUILDERS: Dict[str, ModelBuilder] = {
    "target": lambda ctx: (ctx.target_model, ctx.pipeline),
    "substitute": lambda ctx: (ctx.substitute_model, ctx.pipeline),
    "binary_substitute": lambda ctx: (ctx.binary_substitute, ctx.binary_pipeline),
}


def bundle_version(name: str, scale: ScaleProfile, seed: int, dtype: str) -> str:
    """Deterministic 16-hex-digit version for a named bundle.

    The version covers everything that determines the trained bundle: the
    registered name, the full scale profile, the master seed and the compute
    dtype (plus the cache schema, so format bumps orphan old versions).
    """
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "name": str(name),
        "scale": {str(k): v for k, v in sorted(asdict(scale).items())},
        "seed": int(seed),
        "dtype": str(dtype),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass
class ServableModel:
    """A ready-to-serve bundle: detector + pipeline + provenance."""

    name: str
    version: str
    model: DetectorModel
    pipeline: FeaturePipeline
    scale: ScaleProfile
    seed: int
    dtype: str

    @property
    def n_features(self) -> int:
        """Input dimensionality the bundle scores."""
        return self.pipeline.n_features

    def describe(self) -> Dict[str, object]:
        """Provenance summary (rendered by the ``serve`` CLI)."""
        return {
            "name": self.name,
            "version": self.version,
            "scale": self.scale.name,
            "seed": self.seed,
            "dtype": self.dtype,
            "n_features": self.n_features,
            "model_class": type(self.model).__name__,
        }


class ModelRegistry:
    """Registry of named model builders with cache-backed warm starts.

    Parameters
    ----------
    cache:
        Optional :class:`~repro.utils.artifact_cache.ArtifactCache` (or cache
        root path).  When attached, resolved bundles persist under the
        ``serving`` kind keyed by their version, and later :meth:`get` calls
        load them from disk instead of rebuilding the experiment artifacts.

    The ``target`` (deployed detector + defender pipeline) and
    ``substitute`` (the attacker's Table IV model behind the same pipeline)
    builders are registered out of the box.
    """

    def __init__(self, cache: Optional[Union[ArtifactCache, str, Path]] = None) -> None:
        if cache is not None and not isinstance(cache, ArtifactCache):
            cache = ArtifactCache(cache)
        self.cache = cache
        self._builders: Dict[str, ModelBuilder] = {}
        self._scenarios: Dict[str, ScenarioSpec] = {}
        self._loaded: Dict[str, ServableModel] = {}
        self.cold_builds = 0
        self.register("target", MODEL_BUILDERS["target"])
        self.register("substitute", MODEL_BUILDERS["substitute"])

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register(self, name: str, builder: ModelBuilder) -> None:
        """Register (or replace) a named bundle builder."""
        if not name or not isinstance(name, str):
            raise ServingError(f"model name must be a non-empty string, got {name!r}")
        self._builders[name] = builder

    def register_scenario(self, name: str,
                          spec: Union[ScenarioSpec, Dict]) -> None:
        """Register a scenario-built defended bundle under ``name``.

        The bundle's model follows ``spec.model`` (``target`` /
        ``substitute`` / ``binary_substitute``) and its endpoint defense —
        resolved through the DefenseRegistry with ``spec.defense_params`` —
        is available from :meth:`detector_for`, so a
        :class:`~repro.serving.service.ScoringService` can serve any cell of
        the attack x defense grid by name::

            registry.register_scenario("squeezed", ScenarioSpec(
                defense="feature_squeezing", scale="small"))
            servable = registry.get("squeezed", context=context)
            service = ScoringService(
                servable, detector=registry.detector_for("squeezed", context))
        """
        if not isinstance(spec, ScenarioSpec):
            spec = ScenarioSpec.from_dict(spec)
        ensure_registries()
        # Fail at registration time on unknown defenses or bad parameters,
        # not at first request.  (spec.model is already constrained to
        # MODEL_KINDS by ScenarioSpec itself.)
        defense_entry = DEFENSES.get(spec.defense)
        defense_entry.resolve_params(spec.defense_params)
        if spec.model == "binary_substitute" and defense_entry.entry_id != "none":
            # Mirrors run_scenario's rejection: defenses calibrate against
            # the count feature space, which a binary-feature bundle cannot
            # score consistently.
            raise ServingError(
                f"scenario bundle {name!r}: binary_substitute bundles cannot "
                f"carry a defense endpoint; use defense='none'")
        self._scenarios[name] = spec
        self.register(name, MODEL_BUILDERS[spec.model])

    def scenario_for(self, name: str) -> Optional[ScenarioSpec]:
        """The spec behind a scenario bundle (None for plain bundles)."""
        return self._scenarios.get(name)

    def detector_for(self, name: str, context: ExperimentContext):
        """The fitted defense endpoint of a scenario bundle.

        Returns ``None`` for plain bundles and for scenarios without a
        defense, so callers can pass the result straight to
        ``ScoringService(..., detector=...)``.  Wrap-style defenses guard
        the bundle's *own* model (a substitute-bundle squeezing endpoint is
        calibrated over the substitute network, not the target's).
        """
        spec = self._scenarios.get(name)
        if spec is None or DEFENSES.get(spec.defense).entry_id == "none":
            return None
        model = None
        if spec.model == "substitute":
            model = context.substitute_model
        elif spec.model == "binary_substitute":
            model = context.binary_substitute
        return build_defense(spec.defense, context, spec.defense_params,
                             model=model)

    def available(self) -> List[str]:
        """Sorted names of the registered builders."""
        return sorted(self._builders)

    # ------------------------------------------------------------------ #
    # Resolution
    # ------------------------------------------------------------------ #
    def get(self, name: str = "target", context: Optional[ExperimentContext] = None,
            scale: Optional[ScaleProfile] = None, seed: int = 0,
            dtype=None) -> ServableModel:
        """Resolve a named bundle, warm-starting from the cache when possible.

        Either pass an existing ``context`` (its scale/seed/dtype pin the
        version) or let the registry build one from ``scale``/``seed``/
        ``dtype`` — sharing the registry's cache, so the context's own
        corpus/model artifacts also persist.
        """
        if name not in self._builders:
            raise ServingError(
                f"unknown model {name!r}; registered models: {self.available()}")
        if context is None:
            context = ExperimentContext(scale=scale, seed=seed, cache=self.cache,
                                        dtype=dtype)
        dtype_str = str(context.dtype if context.dtype is not None else compute_dtype())
        version = bundle_version(name, context.scale, context.seed, dtype_str)
        if version in self._loaded:
            return self._loaded[version]

        def build() -> ServableModel:
            self.cold_builds += 1
            model, pipeline = self._builders[name](context)
            if not pipeline.is_fitted:
                raise ServingError(
                    f"builder for {name!r} returned an unfitted feature pipeline")
            return ServableModel(name=name, version=version, model=model,
                                 pipeline=pipeline, scale=context.scale,
                                 seed=context.seed, dtype=dtype_str)

        if self.cache is None:
            servable = build()
        else:
            servable = self.cache.load_or_build(
                BUNDLE_KIND, version, build, self._save_bundle, self._load_bundle)
        self._loaded[version] = servable
        return servable

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    @staticmethod
    def _save_bundle(servable: ServableModel, path: Path) -> None:
        servable.model.save(path / "model")
        servable.pipeline.save(path / "pipeline")
        info = {
            "name": servable.name,
            "version": servable.version,
            "scale": asdict(servable.scale),
            "seed": servable.seed,
            "dtype": servable.dtype,
            "model_class": type(servable.model).__name__,
            "model_name": servable.model.name,
        }
        (path / _BUNDLE_INFO).write_text(json.dumps(info, indent=2, sort_keys=True),
                                         encoding="utf-8")

    @staticmethod
    def _load_bundle(path: Path) -> ServableModel:
        info = json.loads((path / _BUNDLE_INFO).read_text(encoding="utf-8"))
        model_cls = _MODEL_CLASSES.get(info.get("model_class", ""), DetectorModel)
        model = model_cls.load(path / "model", name=info["model_name"])
        return ServableModel(
            name=info["name"],
            version=info["version"],
            model=model,
            pipeline=FeaturePipeline.load(path / "pipeline"),
            scale=ScaleProfile(**info["scale"]),
            seed=int(info["seed"]),
            dtype=str(info["dtype"]),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ModelRegistry(models={self.available()}, "
                f"cache={None if self.cache is None else str(self.cache.root)!r})")
