"""repro.serving — the batched malware-scoring service layer.

Turns the defender stack (`pipeline → target DNN`, optionally wrapped by a
Table VI defense) into a reusable online scoring service:

* :mod:`repro.serving.registry` — named, versioned ``model + pipeline``
  bundles with :class:`~repro.utils.artifact_cache.ArtifactCache`-backed
  warm starts;
* :mod:`repro.serving.batcher` — fixed-size / fixed-latency micro-batching
  of incoming requests;
* :mod:`repro.serving.service` — the :class:`ScoringService` facade
  producing structured :class:`Verdict` objects from one fused
  ``predict_proba`` call per batch;
* :mod:`repro.serving.loadgen` — deterministic mixed
  clean/malware/adversarial traffic for load tests;
* :mod:`repro.serving.stats` — latency quantiles and throughput reports.

Quickstart::

    from repro import ExperimentContext
    from repro.serving import ModelRegistry, ScoringService, LoadGenerator

    context = ExperimentContext()
    servable = ModelRegistry(cache="~/.cache/repro-dsn2019").get("target",
                                                                 context=context)
    service = ScoringService(servable)
    verdict = service.score(some_api_log)
"""

from repro.serving.batcher import MicroBatcher
from repro.serving.loadgen import TRAFFIC_KINDS, LoadGenerator, TrafficMix, replay
from repro.serving.registry import (
    BUNDLE_KIND,
    ModelRegistry,
    ServableModel,
    bundle_version,
)
from repro.serving.service import ScoringRequest, ScoringService, Verdict
from repro.serving.stats import LatencyTracker, ThroughputReport, percentile

__all__ = [
    # registry
    "ModelRegistry", "ServableModel", "bundle_version", "BUNDLE_KIND",
    # batching + service
    "MicroBatcher", "ScoringService", "ScoringRequest", "Verdict",
    # load generation
    "LoadGenerator", "TrafficMix", "TRAFFIC_KINDS", "replay",
    # statistics
    "LatencyTracker", "ThroughputReport", "percentile",
]
