"""Latency / throughput accounting for the scoring service.

The serving layer reports the numbers an operator of an online detector
actually watches: request latency quantiles (p50/p95/p99), mean and max
latency, and sustained throughput.  :class:`LatencyTracker` accumulates
per-request latencies as they are observed — one tracker per service, or one
aggregating a whole :class:`~repro.parallel.fleet.WorkerFleet` via
:meth:`LatencyTracker.extend`; :class:`ThroughputReport` is the immutable
summary the service, the ``serve`` CLI command and the benchmark harness all
render from.

An interval that scored nothing is still a well-defined interval: reporting
on an empty tracker returns an all-zero report rather than raising, so
periodic reporters and fleet aggregation never trip over an idle worker.

The tracker's default (exact) mode keeps every observation — percentiles
are computed from the full sample and a fleet can ship raw latencies home
for aggregation.  Long-lived services can instead opt into **streaming**
mode (``LatencyTracker(streaming=True)``): p50/p95/p99 come from Jain &
Chlamtac's P² estimators (five markers per quantile), mean/max from
running accumulators, so memory stays O(1) regardless of how many requests
the interval scores.  The parity test pins the estimators within a small
relative error of the exact quantiles.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.exceptions import ServingError


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100, linear interpolation) of ``values``."""
    if not 0.0 <= q <= 100.0:
        raise ServingError(f"percentile q must lie in [0, 100], got {q}")
    if len(values) == 0:
        raise ServingError("percentile of an empty sequence is undefined")
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


@dataclass(frozen=True)
class ThroughputReport:
    """Summary of one measured serving interval."""

    n_requests: int
    elapsed_s: float
    requests_per_s: float
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float

    def as_dict(self) -> Dict[str, float]:
        """JSON-serialisable representation (rounded for reporting)."""
        return {key: (round(val, 6) if isinstance(val, float) else val)
                for key, val in asdict(self).items()}

    def render(self) -> str:
        """One-line human-readable summary."""
        return (f"{self.n_requests} requests in {self.elapsed_s:.3f}s "
                f"({self.requests_per_s:,.0f} req/s) — latency "
                f"mean {self.mean_ms:.3f}ms / p50 {self.p50_ms:.3f}ms / "
                f"p95 {self.p95_ms:.3f}ms / p99 {self.p99_ms:.3f}ms / "
                f"max {self.max_ms:.3f}ms")

    @classmethod
    def empty(cls, elapsed_s: float = 0.0) -> "ThroughputReport":
        """The well-defined report of an interval that scored nothing."""
        return cls(n_requests=0, elapsed_s=float(max(elapsed_s, 0.0)),
                   requests_per_s=0.0, mean_ms=0.0, p50_ms=0.0, p95_ms=0.0,
                   p99_ms=0.0, max_ms=0.0)


class P2Quantile:
    """One streaming quantile via the P² algorithm (Jain & Chlamtac 1985).

    Five markers track the running estimate of the ``q``-quantile in O(1)
    memory and O(1) work per observation.  The first five observations are
    buffered; until then :attr:`value` falls back to the exact percentile
    of the buffer, so small samples stay exact.
    """

    __slots__ = ("q", "_initial", "_heights", "_positions", "_desired",
                 "_increments")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ServingError(f"quantile q must lie in (0, 1), got {q}")
        self.q = float(q)
        self._initial: List[float] = []
        self._heights: Optional[List[float]] = None

    def observe(self, value: float) -> None:
        """Fold one observation into the running estimate."""
        value = float(value)
        if self._heights is None:
            self._initial.append(value)
            if len(self._initial) == 5:
                self._initial.sort()
                q = self.q
                self._heights = list(self._initial)
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q,
                                 3.0 + 2.0 * q, 5.0]
                self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
            return
        heights, positions = self._heights, self._positions
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while not heights[cell] <= value < heights[cell + 1]:
                cell += 1
        for marker in range(cell + 1, 5):
            positions[marker] += 1.0
        for marker in range(5):
            self._desired[marker] += self._increments[marker]
        # Nudge the three interior markers towards their desired positions
        # (parabolic prediction, linear fallback when it would overshoot a
        # neighbour's height).
        for marker in (1, 2, 3):
            drift = self._desired[marker] - positions[marker]
            right_gap = positions[marker + 1] - positions[marker]
            left_gap = positions[marker - 1] - positions[marker]
            if (drift >= 1.0 and right_gap > 1.0) or \
                    (drift <= -1.0 and left_gap < -1.0):
                step = 1.0 if drift >= 1.0 else -1.0
                candidate = self._parabolic(marker, step)
                if heights[marker - 1] < candidate < heights[marker + 1]:
                    heights[marker] = candidate
                else:
                    heights[marker] = self._linear(marker, step)
                positions[marker] += step

    def _parabolic(self, marker: int, step: float) -> float:
        heights, positions = self._heights, self._positions
        pos = positions[marker]
        span = positions[marker + 1] - positions[marker - 1]
        return heights[marker] + step / span * (
            (pos - positions[marker - 1] + step)
            * (heights[marker + 1] - heights[marker])
            / (positions[marker + 1] - pos)
            + (positions[marker + 1] - pos - step)
            * (heights[marker] - heights[marker - 1])
            / (pos - positions[marker - 1]))

    def _linear(self, marker: int, step: float) -> float:
        heights, positions = self._heights, self._positions
        neighbour = marker + int(step)
        return heights[marker] + step * (
            (heights[neighbour] - heights[marker])
            / (positions[neighbour] - positions[marker]))

    @property
    def value(self) -> float:
        """The current quantile estimate (exact below five observations)."""
        if self._heights is not None:
            return float(self._heights[2])
        if not self._initial:
            raise ServingError("quantile of an empty stream is undefined")
        return percentile(self._initial, self.q * 100.0)


class LatencyTracker:
    """Accumulates per-request latencies (milliseconds) for one service.

    Parameters
    ----------
    streaming:
        ``False`` (the default) keeps every observation — exact quantiles,
        and :attr:`latencies_ms` is available for fleet aggregation.
        ``True`` bounds memory to O(1): p50/p95/p99 come from
        :class:`P2Quantile` estimators and mean/max from running
        accumulators; raw latencies are not retained.
    """

    _QUANTILES = (50.0, 95.0, 99.0)

    def __init__(self, streaming: bool = False) -> None:
        self.streaming = bool(streaming)
        self._latencies_ms: List[float] = []
        self._count = 0
        self._sum = 0.0
        self._max = 0.0
        self._estimators: Dict[float, P2Quantile] = (
            {q: P2Quantile(q / 100.0) for q in self._QUANTILES}
            if self.streaming else {})

    def record(self, latency_ms: float) -> None:
        """Record one request's end-to-end latency in milliseconds."""
        if latency_ms < 0:
            raise ServingError(f"latency must be non-negative, got {latency_ms}")
        latency_ms = float(latency_ms)
        if not self.streaming:
            self._latencies_ms.append(latency_ms)
            return
        self._count += 1
        self._sum += latency_ms
        if latency_ms > self._max:
            self._max = latency_ms
        for estimator in self._estimators.values():
            estimator.observe(latency_ms)

    def record_batch(self, latency_ms: float, n_requests: int) -> None:
        """Record the same latency for every request of one fused batch."""
        if latency_ms < 0:
            raise ServingError(f"latency must be non-negative, got {latency_ms}")
        if not self.streaming:
            self._latencies_ms.extend([float(latency_ms)] * int(n_requests))
            return
        for _ in range(int(n_requests)):
            self.record(latency_ms)

    def extend(self, latencies_ms: Iterable[float]) -> None:
        """Fold another tracker's observations in (fleet aggregation)."""
        for latency_ms in latencies_ms:
            self.record(latency_ms)

    @property
    def count(self) -> int:
        """Number of latencies recorded so far."""
        return self._count if self.streaming else len(self._latencies_ms)

    @property
    def latencies_ms(self) -> List[float]:
        """A copy of the recorded latencies (exact mode only)."""
        if self.streaming:
            raise ServingError(
                "a streaming LatencyTracker does not retain raw latencies; "
                "use report() for its summary")
        return list(self._latencies_ms)

    def reset(self) -> None:
        """Forget every recorded latency."""
        self._latencies_ms.clear()
        self._count = 0
        self._sum = 0.0
        self._max = 0.0
        if self.streaming:
            self._estimators = {q: P2Quantile(q / 100.0)
                                for q in self._QUANTILES}

    def report(self, elapsed_s: float) -> ThroughputReport:
        """Summarise the recorded latencies over a measured wall interval.

        An empty tracker yields :meth:`ThroughputReport.empty` — a zeroed
        report — so callers that report periodically (or aggregate idle
        fleet workers) need no special case.  A *non-empty* tracker still
        requires a positive interval.
        """
        if self.count == 0:
            return ThroughputReport.empty(elapsed_s)
        if elapsed_s <= 0:
            raise ServingError(f"elapsed_s must be positive, got {elapsed_s}")
        if self.streaming:
            return ThroughputReport(
                n_requests=self._count,
                elapsed_s=float(elapsed_s),
                requests_per_s=float(self._count / elapsed_s),
                mean_ms=self._sum / self._count,
                p50_ms=self._estimators[50.0].value,
                p95_ms=self._estimators[95.0].value,
                p99_ms=self._estimators[99.0].value,
                max_ms=self._max,
            )
        values = np.asarray(self._latencies_ms, dtype=np.float64)
        return ThroughputReport(
            n_requests=int(values.size),
            elapsed_s=float(elapsed_s),
            requests_per_s=float(values.size / elapsed_s),
            mean_ms=float(values.mean()),
            p50_ms=percentile(values, 50.0),
            p95_ms=percentile(values, 95.0),
            p99_ms=percentile(values, 99.0),
            max_ms=float(values.max()),
        )
