"""Latency / throughput accounting for the scoring service.

The serving layer reports the numbers an operator of an online detector
actually watches: request latency quantiles (p50/p95/p99), mean and max
latency, and sustained throughput.  :class:`LatencyTracker` accumulates
per-request latencies as they are observed — one tracker per service, or one
aggregating a whole :class:`~repro.parallel.fleet.WorkerFleet` via
:meth:`LatencyTracker.extend`; :class:`ThroughputReport` is the immutable
summary the service, the ``serve`` CLI command and the benchmark harness all
render from.

An interval that scored nothing is still a well-defined interval: reporting
on an empty tracker returns an all-zero report rather than raising, so
periodic reporters and fleet aggregation never trip over an idle worker.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.exceptions import ServingError


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100, linear interpolation) of ``values``."""
    if not 0.0 <= q <= 100.0:
        raise ServingError(f"percentile q must lie in [0, 100], got {q}")
    if len(values) == 0:
        raise ServingError("percentile of an empty sequence is undefined")
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


@dataclass(frozen=True)
class ThroughputReport:
    """Summary of one measured serving interval."""

    n_requests: int
    elapsed_s: float
    requests_per_s: float
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float

    def as_dict(self) -> Dict[str, float]:
        """JSON-serialisable representation (rounded for reporting)."""
        return {key: (round(val, 6) if isinstance(val, float) else val)
                for key, val in asdict(self).items()}

    def render(self) -> str:
        """One-line human-readable summary."""
        return (f"{self.n_requests} requests in {self.elapsed_s:.3f}s "
                f"({self.requests_per_s:,.0f} req/s) — latency "
                f"mean {self.mean_ms:.3f}ms / p50 {self.p50_ms:.3f}ms / "
                f"p95 {self.p95_ms:.3f}ms / p99 {self.p99_ms:.3f}ms / "
                f"max {self.max_ms:.3f}ms")

    @classmethod
    def empty(cls, elapsed_s: float = 0.0) -> "ThroughputReport":
        """The well-defined report of an interval that scored nothing."""
        return cls(n_requests=0, elapsed_s=float(max(elapsed_s, 0.0)),
                   requests_per_s=0.0, mean_ms=0.0, p50_ms=0.0, p95_ms=0.0,
                   p99_ms=0.0, max_ms=0.0)


class LatencyTracker:
    """Accumulates per-request latencies (milliseconds) for one service."""

    def __init__(self) -> None:
        self._latencies_ms: List[float] = []

    def record(self, latency_ms: float) -> None:
        """Record one request's end-to-end latency in milliseconds."""
        if latency_ms < 0:
            raise ServingError(f"latency must be non-negative, got {latency_ms}")
        self._latencies_ms.append(float(latency_ms))

    def record_batch(self, latency_ms: float, n_requests: int) -> None:
        """Record the same latency for every request of one fused batch."""
        if latency_ms < 0:
            raise ServingError(f"latency must be non-negative, got {latency_ms}")
        self._latencies_ms.extend([float(latency_ms)] * int(n_requests))

    def extend(self, latencies_ms: Iterable[float]) -> None:
        """Fold another tracker's observations in (fleet aggregation)."""
        for latency_ms in latencies_ms:
            self.record(latency_ms)

    @property
    def count(self) -> int:
        """Number of latencies recorded so far."""
        return len(self._latencies_ms)

    @property
    def latencies_ms(self) -> List[float]:
        """A copy of the recorded latencies."""
        return list(self._latencies_ms)

    def reset(self) -> None:
        """Forget every recorded latency."""
        self._latencies_ms.clear()

    def report(self, elapsed_s: float) -> ThroughputReport:
        """Summarise the recorded latencies over a measured wall interval.

        An empty tracker yields :meth:`ThroughputReport.empty` — a zeroed
        report — so callers that report periodically (or aggregate idle
        fleet workers) need no special case.  A *non-empty* tracker still
        requires a positive interval.
        """
        if not self._latencies_ms:
            return ThroughputReport.empty(elapsed_s)
        if elapsed_s <= 0:
            raise ServingError(f"elapsed_s must be positive, got {elapsed_s}")
        values = np.asarray(self._latencies_ms, dtype=np.float64)
        return ThroughputReport(
            n_requests=int(values.size),
            elapsed_s=float(elapsed_s),
            requests_per_s=float(values.size / elapsed_s),
            mean_ms=float(values.mean()),
            p50_ms=percentile(values, 50.0),
            p95_ms=percentile(values, 95.0),
            p99_ms=percentile(values, 99.0),
            max_ms=float(values.max()),
        )
