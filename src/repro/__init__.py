"""repro — reproduction of "Malware Evasion Attack and Defense" (DSN 2019).

The package is organised bottom-up:

* :mod:`repro.nn` — a from-scratch numpy neural-network substrate,
* :mod:`repro.apilog` — a synthetic API-call-log sandbox (the data substrate),
* :mod:`repro.features` — the 491-feature extraction/transformation pipeline,
* :mod:`repro.data` — dataset containers and the Table I corpus generator,
* :mod:`repro.models` — the target DNN and the attacker's substitutes,
* :mod:`repro.attacks` — JSMA / FGSM / random-noise attacks, the grey-box
  transfer harness, the black-box framework and the live source-modification
  attack (the paper's core contribution),
* :mod:`repro.defenses` — adversarial training, defensive distillation,
  feature squeezing, PCA dimensionality reduction and their ensemble,
* :mod:`repro.evaluation` — security curves, L2 analysis and table rendering,
* :mod:`repro.experiments` — one driver per paper table/figure,
* :mod:`repro.serving` — the batched malware-scoring service (model
  registry, micro-batcher, verdict facade, load generator),
* :mod:`repro.parallel` — the process-pool execution engine
  (:class:`~repro.parallel.GridExecutor` for scenario grids,
  :class:`~repro.parallel.WorkerFleet` for multi-worker serving).

Quickstart::

    from repro import ExperimentContext, run_experiment

    context = ExperimentContext()          # scale from $REPRO_SCALE (default "small")
    figure3 = run_experiment("figure3", context)
    print(figure3.render())
"""

from repro.attacks import (
    Attack,
    AttackResult,
    BlackBoxFramework,
    FgsmAttack,
    JsmaAttack,
    LiveGreyBoxAttack,
    PerturbationConstraints,
    RandomAdditionAttack,
    TransferAttack,
)
from repro.config import (
    CLASS_CLEAN,
    CLASS_MALWARE,
    N_FEATURES,
    PROFILES,
    ScaleProfile,
    default_profile,
    get_profile,
)
from repro.data import CorpusGenerator, Dataset, LabelOracle
from repro.defenses import (
    AdversarialTrainingDefense,
    DefensiveDistillation,
    DimensionalityReductionDefense,
    EnsembleDefense,
    FeatureSqueezingDefense,
    PCA,
)
from repro.experiments import ExperimentContext, available_experiments, run_experiment
from repro.features import FeaturePipeline
from repro.models import SubstituteModel, TargetModel
from repro.nn import NeuralNetwork, compute_dtype, set_default_dtype, use_dtype
from repro.parallel import FleetReport, GridExecutor, GridResult, WorkerFleet
from repro.scenarios import ScenarioSpec, run_scenario
from repro.serving import (
    LoadGenerator,
    MicroBatcher,
    ModelRegistry,
    ScoringService,
    ServableModel,
    TrafficMix,
    Verdict,
)
from repro.utils import ArtifactCache
from repro.version import __version__

__all__ = [
    "__version__",
    # configuration
    "ScaleProfile", "get_profile", "default_profile", "PROFILES",
    "N_FEATURES", "CLASS_CLEAN", "CLASS_MALWARE",
    # substrates
    "NeuralNetwork", "FeaturePipeline", "Dataset", "CorpusGenerator", "LabelOracle",
    # performance (compute engine + persistent artifact cache)
    "compute_dtype", "set_default_dtype", "use_dtype", "ArtifactCache",
    # models
    "TargetModel", "SubstituteModel",
    # attacks
    "Attack", "AttackResult", "PerturbationConstraints", "JsmaAttack", "FgsmAttack",
    "RandomAdditionAttack", "TransferAttack", "BlackBoxFramework", "LiveGreyBoxAttack",
    # defenses
    "AdversarialTrainingDefense", "DefensiveDistillation", "FeatureSqueezingDefense",
    "DimensionalityReductionDefense", "EnsembleDefense", "PCA",
    # scenarios (the declarative attack x defense grid API)
    "ScenarioSpec", "run_scenario",
    # experiments
    "ExperimentContext", "run_experiment", "available_experiments",
    # serving
    "ModelRegistry", "ServableModel", "ScoringService", "MicroBatcher",
    "LoadGenerator", "TrafficMix", "Verdict",
    # parallel execution (grid sharding + replicated serving)
    "GridExecutor", "GridResult", "WorkerFleet", "FleetReport",
]
