"""Label oracle: the attacker-facing view of the deployed detector.

In the black-box framework of Figure 2 the attacker can only *query* the
target system and observe its decisions (and, optionally, how often they are
allowed to query it).  :class:`LabelOracle` wraps a trained model (plus its
feature pipeline when the attacker submits raw samples) behind exactly that
interface, counting queries so experiments can report query budgets.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.exceptions import AttackError
from repro.nn.network import NeuralNetwork
from repro.utils.validation import check_matrix


class LabelOracle:
    """Query-only access to a deployed detector.

    Parameters
    ----------
    model:
        The deployed (target) model.
    query_budget:
        Optional maximum number of samples the attacker may query; exceeding
        it raises :class:`~repro.exceptions.AttackError`, which black-box
        experiments surface as "attack failed under budget".
    return_scores:
        When True the oracle also exposes the malware-probability score
        (a *grey-ish* oracle some deployed engines leak); label-only is the
        strict black-box setting.
    """

    def __init__(self, model, query_budget: Optional[int] = None,
                 return_scores: bool = False) -> None:
        if query_budget is not None and query_budget < 1:
            raise AttackError(f"query_budget must be >= 1, got {query_budget}")
        self.model = model
        # Accept either a bare NeuralNetwork or a DetectorModel wrapper.
        self.network: NeuralNetwork = getattr(model, "network", model)
        self.query_budget = query_budget
        self.return_scores = bool(return_scores)
        self.queries_used = 0

    @property
    def queries_remaining(self) -> Optional[int]:
        """Remaining query budget (None when unlimited)."""
        if self.query_budget is None:
            return None
        return max(self.query_budget - self.queries_used, 0)

    def _charge(self, n: int) -> None:
        if self.query_budget is not None and self.queries_used + n > self.query_budget:
            raise AttackError(
                f"query budget exhausted: {self.queries_used} used, "
                f"{n} requested, budget {self.query_budget}"
            )
        self.queries_used += n

    def labels(self, features: np.ndarray) -> np.ndarray:
        """Return the detector's hard decisions for ``features``."""
        features = check_matrix(features, name="features")
        self._charge(features.shape[0])
        return self.network.predict(features)

    def scores(self, features: np.ndarray) -> np.ndarray:
        """Return malware-probability scores (only if the oracle leaks them)."""
        if not self.return_scores:
            raise AttackError("this oracle is label-only; scores are not exposed")
        features = check_matrix(features, name="features")
        self._charge(features.shape[0])
        return self.network.malware_score(features)

    def reset(self) -> None:
        """Reset the query counter (new engagement)."""
        self.queries_used = 0
