"""Stratified splitting utilities."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import DatasetError
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_fraction


def stratified_split(dataset: Dataset, first_fraction: float,
                     random_state: RandomState = None,
                     names: Tuple[str, str] = ("first", "second")) -> Tuple[Dataset, Dataset]:
    """Split ``dataset`` into two parts preserving the class balance.

    Parameters
    ----------
    dataset:
        The dataset to split.
    first_fraction:
        Fraction of each class assigned to the first part (exclusive of 0/1).
    random_state:
        Seed controlling the shuffle within each class.
    names:
        Names given to the two resulting datasets.
    """
    fraction = check_fraction(first_fraction, "first_fraction",
                              inclusive_low=False, inclusive_high=False)
    rng = as_rng(random_state)
    first_indices = []
    second_indices = []
    for label in np.unique(dataset.labels):
        label_idx = np.flatnonzero(dataset.labels == label)
        rng.shuffle(label_idx)
        cut = int(round(fraction * label_idx.size))
        cut = min(max(cut, 1), label_idx.size - 1) if label_idx.size > 1 else label_idx.size
        first_indices.append(label_idx[:cut])
        second_indices.append(label_idx[cut:])
    first = np.sort(np.concatenate(first_indices))
    second = np.sort(np.concatenate(second_indices))
    if first.size == 0 or second.size == 0:
        raise DatasetError("stratified_split produced an empty part; adjust first_fraction")
    return dataset.subset(first, name=names[0]), dataset.subset(second, name=names[1])


def train_validation_split(dataset: Dataset, validation_fraction: float = 0.1,
                           random_state: RandomState = None) -> Tuple[Dataset, Dataset]:
    """Carve a validation set out of a training dataset (stratified)."""
    train, val = stratified_split(dataset, 1.0 - validation_fraction,
                                  random_state=random_state,
                                  names=("train", "validation"))
    return train, val
