"""Synthetic corpus generation reproducing the structure of Table I.

The generator draws samples from the behaviour-profile library, "executes"
them with the multi-OS sandbox (count-level fast path) and featurises them
with a :class:`~repro.features.pipeline.FeaturePipeline` fitted on the
training split only — mirroring how the real pipeline was fitted on the
McAfee Labs collection and then applied unchanged to the VirusTotal test
data.

Two source distributions are modelled:

* the **training source** ("McAfee Labs, Jan–Feb 2018"): known families
  only, an OS mixture dominated by Win7/Win10;
* the **test source** ("VirusTotal"): includes *novel* families absent from
  training and a different OS mixture, producing the distribution shift that
  keeps the detector's test TPR near the paper's 0.883 instead of the
  near-perfect validation accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.apilog.api_catalog import ApiCatalog, default_catalog
from repro.apilog.behavior_profiles import ProfileLibrary, default_profile_library
from repro.apilog.sandbox import SUPPORTED_OS_VERSIONS, Sandbox
from repro.apilog.source_sample import SourceSample
from repro.config import CLASS_CLEAN, CLASS_MALWARE, ScaleProfile, default_profile
from repro.data.dataset import Dataset
from repro.exceptions import DatasetError
from repro.features.pipeline import FeaturePipeline
from repro.utils.rng import SeedSequence

#: OS mixtures for the two source distributions ("mixed data", Section II-A).
_TRAIN_OS_WEIGHTS = {"win7": 0.45, "winxp": 0.10, "win8": 0.15, "win10": 0.30}
_TEST_OS_WEIGHTS = {"win7": 0.30, "winxp": 0.05, "win8": 0.15, "win10": 0.50}

#: Fraction of test-source samples drawn from families absent at training
#: time.  Tuned so the trained target model lands near the paper's operating
#: point (test TNR ~0.96, test TPR ~0.88).
_TEST_NOVEL_FRACTION_MALWARE = 0.17
_TEST_NOVEL_FRACTION_CLEAN = 0.30


@dataclass
class CorpusBundle:
    """Everything Table I describes, plus the fitted feature pipeline."""

    train: Dataset
    validation: Dataset
    test: Dataset
    pipeline: FeaturePipeline

    def table1_rows(self) -> List[Tuple[str, str]]:
        """Rows of Table I: (split name, "N (a clean and b malware)")."""
        rows = []
        for split, label in ((self.train, "Training Set"),
                             (self.validation, "Validation Set"),
                             (self.test, "Test Set")):
            counts = split.class_counts()
            rows.append((label, f"{split.n_samples} "
                                f"({counts['clean']} clean and {counts['malware']} malware)"))
        return rows


class CorpusGenerator:
    """Generate Table I-style corpora from the synthetic substrate.

    Parameters
    ----------
    scale:
        A :class:`~repro.config.ScaleProfile` fixing the split sizes; the
        ``paper`` profile reproduces Table I exactly.
    library:
        Behaviour-profile library (defaults to the built-in one).
    catalog:
        Monitored-API catalog (defaults to the canonical 491-API catalog).
    seed:
        Master seed; all randomness derives from it deterministically.
    """

    def __init__(self, scale: Optional[ScaleProfile] = None,
                 library: Optional[ProfileLibrary] = None,
                 catalog: Optional[ApiCatalog] = None,
                 seed: int = 0) -> None:
        self.scale = scale if scale is not None else default_profile()
        self.library = library if library is not None else default_profile_library()
        self.catalog = catalog if catalog is not None else default_catalog()
        self.seeds = SeedSequence(master_seed=seed)

    # ------------------------------------------------------------------ #
    # Source-sample generation
    # ------------------------------------------------------------------ #
    def _draw_os(self, rng: np.random.Generator, weights: Dict[str, float]) -> str:
        names = list(weights)
        probs = np.array([weights[n] for n in names], dtype=np.float64)
        probs = probs / probs.sum()
        return names[int(rng.choice(len(names), p=probs))]

    def generate_source_samples(self, n_samples: int, label: int,
                                source: str = "train",
                                rng_name: Optional[str] = None) -> List[SourceSample]:
        """Generate raw :class:`SourceSample` objects for one class.

        ``source`` selects the family mixture: ``train`` uses only known
        families, ``test`` mixes in novel families.
        """
        if n_samples < 1:
            raise DatasetError(f"n_samples must be >= 1, got {n_samples}")
        if label not in (CLASS_CLEAN, CLASS_MALWARE):
            raise DatasetError(f"label must be 0 or 1, got {label}")
        if source not in ("train", "test"):
            raise DatasetError(f"source must be 'train' or 'test', got {source!r}")
        rng = self.seeds.rng_for(rng_name or f"sources:{source}:{label}")
        include_novel = source == "test"
        novel_probability = (
            (_TEST_NOVEL_FRACTION_MALWARE if label == CLASS_MALWARE
             else _TEST_NOVEL_FRACTION_CLEAN) if include_novel else 0.0)
        samples = []
        for index in range(n_samples):
            profile = self.library.sample_profile(
                label, rng, include_novel=include_novel,
                novel_probability=novel_probability)
            sample_id = f"{source}-{profile.name}-{index:06d}"
            samples.append(SourceSample.from_profile(profile, sample_id, random_state=rng))
        return samples

    # ------------------------------------------------------------------ #
    # Raw-count generation (fast path)
    # ------------------------------------------------------------------ #
    def _raw_counts_for(self, samples: Sequence[SourceSample], source: str,
                        rng: np.random.Generator) -> Tuple[np.ndarray, List[str]]:
        weights = _TRAIN_OS_WEIGHTS if source == "train" else _TEST_OS_WEIGHTS
        from repro.features.extraction import CountExtractor

        extractor = CountExtractor(self.catalog)
        rows = np.zeros((len(samples), len(self.catalog)), dtype=np.float64)
        os_versions: List[str] = []
        for index, sample in enumerate(samples):
            os_version = self._draw_os(rng, weights)
            os_versions.append(os_version)
            sandbox = Sandbox(os_version=os_version, random_state=rng, record_args=False)
            counts = sandbox.execute_counts(sample, rng=rng)
            rows[index] = extractor.extract(counts)
        return rows, os_versions

    def _build_split(self, n_clean: int, n_malware: int, source: str, name: str,
                     pipeline: Optional[FeaturePipeline]) -> Tuple[Dataset, np.ndarray]:
        clean_samples = self.generate_source_samples(n_clean, CLASS_CLEAN, source=source,
                                                     rng_name=f"{name}:clean:sources")
        malware_samples = self.generate_source_samples(n_malware, CLASS_MALWARE, source=source,
                                                       rng_name=f"{name}:malware:sources")
        samples = clean_samples + malware_samples
        labels = np.array([CLASS_CLEAN] * n_clean + [CLASS_MALWARE] * n_malware,
                          dtype=np.int64)
        rng = self.seeds.rng_for(f"{name}:sandbox")
        raw_counts, os_versions = self._raw_counts_for(samples, source, rng)
        features = (pipeline.transform_counts(raw_counts)
                    if pipeline is not None and pipeline.is_fitted else raw_counts)
        dataset = Dataset(
            features=features,
            labels=labels,
            name=name,
            sample_ids=[s.sample_id for s in samples],
            families=[s.family for s in samples],
            os_versions=os_versions,
        )
        return dataset, raw_counts

    # ------------------------------------------------------------------ #
    # Public corpus API
    # ------------------------------------------------------------------ #
    def generate_corpus(self) -> CorpusBundle:
        """Generate the full Table I corpus and the fitted feature pipeline.

        The :class:`~repro.features.pipeline.FeaturePipeline` is fitted on
        the raw counts of the *training* split only, then applied to every
        split.
        """
        scale = self.scale
        pipeline = FeaturePipeline(catalog=self.catalog)

        train_raw_ds, train_raw_counts = self._build_split(
            scale.train_clean, scale.train_malware, "train", "train", pipeline=None)
        pipeline.fit_counts(train_raw_counts)

        train = train_raw_ds.with_features(
            pipeline.transform_counts(train_raw_counts), name="train")
        validation, _ = self._build_split(
            scale.val_clean, scale.val_malware, "train", "validation", pipeline)
        test, _ = self._build_split(
            scale.test_clean, scale.test_malware, "test", "test", pipeline)
        return CorpusBundle(train=train, validation=validation, test=test,
                            pipeline=pipeline)

    def generate_attacker_corpus(self, n_clean: int, n_malware: int,
                                 pipeline: Optional[FeaturePipeline] = None,
                                 name: str = "attacker") -> Dataset:
        """Generate the *attacker's own* training data for grey-box attacks.

        The attacker collects their own samples (different draw from the same
        underlying world) and — in the first grey-box experiment — featurises
        them with the same 491-feature pipeline they are assumed to know.
        When ``pipeline`` is ``None`` the raw counts are returned, which is
        what the binary-feature attacker starts from.
        """
        dataset, raw_counts = self._build_split(n_clean, n_malware, "train", name,
                                                pipeline=None)
        if pipeline is not None:
            if not pipeline.is_fitted:
                pipeline.fit_counts(raw_counts)
            return dataset.with_features(pipeline.transform_counts(raw_counts), name=name)
        return dataset
