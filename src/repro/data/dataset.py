"""The :class:`Dataset` container used throughout the library."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.config import CLASS_CLEAN, CLASS_MALWARE, CLASS_NAMES
from repro.exceptions import DatasetError
from repro.utils.serialization import load_bundle, save_bundle
from repro.utils.validation import check_labels, check_matrix


@dataclass
class Dataset:
    """Feature matrix + labels + per-sample metadata.

    Attributes
    ----------
    features:
        ``(n_samples, n_features)`` model-input features in ``[0, 1]``.
    labels:
        ``(n_samples,)`` integer class labels (0 clean, 1 malware).
    name:
        Split name (``train``, ``validation``, ``test``, ``adv_examples``...).
    sample_ids / families / os_versions:
        Optional per-sample provenance recorded by the generator.
    """

    features: np.ndarray
    labels: np.ndarray
    name: str = "dataset"
    sample_ids: Optional[List[str]] = None
    families: Optional[List[str]] = None
    os_versions: Optional[List[str]] = None

    def __post_init__(self) -> None:
        self.features = check_matrix(self.features, name=f"{self.name}.features")
        self.labels = check_labels(self.labels, n_samples=self.features.shape[0],
                                   name=f"{self.name}.labels")
        for attr in ("sample_ids", "families", "os_versions"):
            values = getattr(self, attr)
            if values is not None and len(values) != self.n_samples:
                raise DatasetError(
                    f"{self.name}.{attr} has {len(values)} entries for "
                    f"{self.n_samples} samples"
                )

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def n_samples(self) -> int:
        """Number of samples."""
        return self.features.shape[0]

    @property
    def n_features(self) -> int:
        """Feature dimensionality."""
        return self.features.shape[1]

    def __len__(self) -> int:
        return self.n_samples

    def class_counts(self) -> Dict[str, int]:
        """``{"clean": n_clean, "malware": n_malware}``."""
        return {CLASS_NAMES[label]: int(np.sum(self.labels == label))
                for label in (CLASS_CLEAN, CLASS_MALWARE)}

    def summary(self) -> str:
        """One-line description in the style of Table I rows."""
        counts = self.class_counts()
        return (f"{self.name}: {self.n_samples} samples "
                f"({counts['clean']} clean and {counts['malware']} malware)")

    # ------------------------------------------------------------------ #
    # Subsetting / combining
    # ------------------------------------------------------------------ #
    def _take_meta(self, attr: str, indices: np.ndarray) -> Optional[List[str]]:
        values = getattr(self, attr)
        if values is None:
            return None
        return [values[i] for i in indices]

    def subset(self, indices: Sequence[int] | np.ndarray, name: Optional[str] = None) -> "Dataset":
        """Return a new dataset containing only ``indices`` (in that order)."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size == 0:
            raise DatasetError("cannot create an empty subset")
        if indices.min() < 0 or indices.max() >= self.n_samples:
            raise DatasetError(
                f"subset indices out of range [0, {self.n_samples}) for {self.name!r}"
            )
        return Dataset(
            features=self.features[indices],
            labels=self.labels[indices],
            name=name if name is not None else self.name,
            sample_ids=self._take_meta("sample_ids", indices),
            families=self._take_meta("families", indices),
            os_versions=self._take_meta("os_versions", indices),
        )

    def of_class(self, label: int, name: Optional[str] = None) -> "Dataset":
        """All samples of one class."""
        indices = np.flatnonzero(self.labels == label)
        if indices.size == 0:
            raise DatasetError(f"{self.name!r} contains no samples of class {label}")
        suffix = CLASS_NAMES.get(label, str(label))
        return self.subset(indices, name=name if name is not None else f"{self.name}_{suffix}")

    def malware_only(self) -> "Dataset":
        """All malware samples."""
        return self.of_class(CLASS_MALWARE)

    def clean_only(self) -> "Dataset":
        """All clean samples."""
        return self.of_class(CLASS_CLEAN)

    def sample(self, n: int, random_state=None, name: Optional[str] = None,
               stratify: bool = True) -> "Dataset":
        """Random subsample of ``n`` samples (stratified by default)."""
        from repro.utils.rng import as_rng

        if n < 1:
            raise DatasetError(f"sample size must be >= 1, got {n}")
        if n > self.n_samples:
            raise DatasetError(
                f"cannot sample {n} from {self.n_samples} samples in {self.name!r}"
            )
        rng = as_rng(random_state)
        if not stratify or len(np.unique(self.labels)) < 2:
            indices = rng.choice(self.n_samples, size=n, replace=False)
        else:
            indices_parts = []
            for label in np.unique(self.labels):
                label_idx = np.flatnonzero(self.labels == label)
                share = int(round(n * label_idx.size / self.n_samples))
                share = min(max(share, 1), label_idx.size)
                indices_parts.append(rng.choice(label_idx, size=share, replace=False))
            indices = np.concatenate(indices_parts)[:n]
        return self.subset(np.sort(indices), name=name)

    @staticmethod
    def concatenate(datasets: Sequence["Dataset"], name: str = "combined") -> "Dataset":
        """Stack several datasets (they must agree on feature dimension)."""
        if not datasets:
            raise DatasetError("concatenate requires at least one dataset")
        n_features = datasets[0].n_features
        for ds in datasets[1:]:
            if ds.n_features != n_features:
                raise DatasetError("datasets have inconsistent feature dimensions")

        def _merge_meta(attr: str) -> Optional[List[str]]:
            if any(getattr(ds, attr) is None for ds in datasets):
                return None
            merged: List[str] = []
            for ds in datasets:
                merged.extend(getattr(ds, attr))
            return merged

        return Dataset(
            features=np.vstack([ds.features for ds in datasets]),
            labels=np.concatenate([ds.labels for ds in datasets]),
            name=name,
            sample_ids=_merge_meta("sample_ids"),
            families=_merge_meta("families"),
            os_versions=_merge_meta("os_versions"),
        )

    def with_features(self, features: np.ndarray, name: Optional[str] = None) -> "Dataset":
        """Copy of this dataset with the feature matrix replaced.

        Used to wrap adversarial examples while keeping labels and metadata.
        """
        return Dataset(
            features=features,
            labels=self.labels.copy(),
            name=name if name is not None else self.name,
            sample_ids=list(self.sample_ids) if self.sample_ids is not None else None,
            families=list(self.families) if self.families is not None else None,
            os_versions=list(self.os_versions) if self.os_versions is not None else None,
        )

    def shuffled(self, random_state=None) -> "Dataset":
        """Copy with rows in random order."""
        from repro.utils.rng import as_rng

        rng = as_rng(random_state)
        indices = rng.permutation(self.n_samples)
        return self.subset(indices)

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, path: str | Path) -> Path:
        """Persist the dataset to a bundle directory."""
        meta = {
            "name": self.name,
            "sample_ids": self.sample_ids,
            "families": self.families,
            "os_versions": self.os_versions,
        }
        return save_bundle(path, meta, {"features": self.features, "labels": self.labels})

    @classmethod
    def load(cls, path: str | Path) -> "Dataset":
        """Restore a dataset saved with :meth:`save`."""
        meta, arrays = load_bundle(path)
        return cls(
            features=arrays["features"],
            labels=arrays["labels"],
            name=meta.get("name", "dataset"),
            sample_ids=meta.get("sample_ids"),
            families=meta.get("families"),
            os_versions=meta.get("os_versions"),
        )
