"""Dataset containers and the synthetic corpus generator.

Reproduces the structure of Table I: a training set and validation set drawn
from the "McAfee Labs" synthetic source distribution, and an independent
test set drawn from a shifted "VirusTotal-like" distribution (different
family mixture, including families absent from training, and a different OS
mixture).
"""

from repro.data.dataset import Dataset
from repro.data.generator import CorpusBundle, CorpusGenerator
from repro.data.oracle import LabelOracle
from repro.data.splits import stratified_split, train_validation_split

__all__ = [
    "Dataset",
    "CorpusGenerator",
    "CorpusBundle",
    "LabelOracle",
    "stratified_split",
    "train_validation_split",
]
