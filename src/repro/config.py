"""Experiment-scale configuration.

The paper's corpora (Table I: 57,170 training / 578 validation / 45,028 test
samples, a target DNN trained on millions of samples) are far larger than
what a test-suite should rebuild on every run.  :class:`ScaleProfile`
captures every size knob in one place so that *the same experiment code*
runs at:

* ``paper``  — the exact Table I sizes and sweep grids from the paper,
* ``medium`` — ~10% of paper scale, for benchmark runs on a laptop,
* ``small``  — the default for the benchmark harness in CI,
* ``tiny``   — the default for unit/integration tests.

The class-balance and distribution-shift structure is preserved at every
scale; EXPERIMENTS.md records which profile produced which reported number.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict

from repro.exceptions import ConfigurationError

#: Number of API-call features used by the detector (paper, Section II-A).
N_FEATURES = 491

#: Class label conventions used throughout the paper and this library.
CLASS_CLEAN = 0
CLASS_MALWARE = 1
CLASS_NAMES = {CLASS_CLEAN: "clean", CLASS_MALWARE: "malware"}

_ENV_SCALE_VAR = "REPRO_SCALE"


@dataclass(frozen=True)
class ScaleProfile:
    """All size knobs for one reproduction scale.

    Attributes
    ----------
    name:
        Profile identifier (``paper``, ``medium``, ``small``, ``tiny``).
    train_clean / train_malware:
        Number of clean / malware samples in the training set (Table I).
    val_clean / val_malware:
        Validation split sizes (Table I).
    test_clean / test_malware:
        Test split sizes (Table I; drawn from the shifted "VirusTotal-like"
        source distribution).
    target_epochs / substitute_epochs:
        Training epochs for the target and substitute models.  The paper
        trains the substitute for 1000 epochs; the synthetic corpus is far
        easier, so profiles use smaller values that reach the same operating
        point (TNR ~0.96, TPR ~0.88 for the target).
    batch_size / learning_rate:
        Optimiser settings (paper: batch 256, lr 1e-3, Adam).
    attack_samples:
        Number of malware samples used to craft adversarial examples in the
        security-curve experiments (paper: all 28,874 test malware).
    sweep_points:
        Number of grid points in the gamma/theta sweeps of Figures 3-5.
        The paper grids have 7 (gamma) and 13 (theta) points.
    hidden_scale:
        Multiplier applied to the hidden-layer widths of the target and
        substitute networks.  1.0 reproduces Table IV exactly
        (491-1200-1500-1300-2); smaller profiles shrink the hidden layers to
        keep unit tests fast while preserving the depth.
    """

    name: str
    train_clean: int
    train_malware: int
    val_clean: int
    val_malware: int
    test_clean: int
    test_malware: int
    target_epochs: int
    substitute_epochs: int
    batch_size: int
    learning_rate: float
    attack_samples: int
    sweep_points_gamma: int
    sweep_points_theta: int
    hidden_scale: float

    def __post_init__(self) -> None:
        for attr in ("train_clean", "train_malware", "val_clean", "val_malware",
                     "test_clean", "test_malware", "target_epochs",
                     "substitute_epochs", "batch_size", "attack_samples",
                     "sweep_points_gamma", "sweep_points_theta"):
            if getattr(self, attr) < 1:
                raise ConfigurationError(f"{attr} must be >= 1, got {getattr(self, attr)}")
        if self.learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        if self.hidden_scale <= 0:
            raise ConfigurationError("hidden_scale must be positive")

    @property
    def train_total(self) -> int:
        """Total number of training samples."""
        return self.train_clean + self.train_malware

    @property
    def val_total(self) -> int:
        """Total number of validation samples."""
        return self.val_clean + self.val_malware

    @property
    def test_total(self) -> int:
        """Total number of test samples."""
        return self.test_clean + self.test_malware

    def scaled_hidden(self, width: int) -> int:
        """Scale a paper hidden-layer ``width`` by :attr:`hidden_scale`."""
        return max(4, int(round(width * self.hidden_scale)))

    def with_overrides(self, **kwargs) -> "ScaleProfile":
        """Return a copy of this profile with selected fields replaced."""
        return replace(self, **kwargs)


#: Table I sizes, exactly as reported in the paper.
PAPER_PROFILE = ScaleProfile(
    name="paper",
    train_clean=28594, train_malware=28576,
    val_clean=280, val_malware=298,
    test_clean=16154, test_malware=28874,
    target_epochs=30, substitute_epochs=60,
    batch_size=256, learning_rate=1e-3,
    attack_samples=28874,
    sweep_points_gamma=7, sweep_points_theta=13,
    hidden_scale=1.0,
)

MEDIUM_PROFILE = ScaleProfile(
    name="medium",
    train_clean=2860, train_malware=2858,
    val_clean=140, val_malware=150,
    test_clean=1616, test_malware=2888,
    target_epochs=20, substitute_epochs=30,
    batch_size=128, learning_rate=1e-3,
    attack_samples=600,
    sweep_points_gamma=7, sweep_points_theta=13,
    hidden_scale=0.25,
)

SMALL_PROFILE = ScaleProfile(
    name="small",
    train_clean=700, train_malware=700,
    val_clean=60, val_malware=60,
    test_clean=400, test_malware=700,
    target_epochs=15, substitute_epochs=20,
    batch_size=64, learning_rate=2e-3,
    attack_samples=200,
    sweep_points_gamma=7, sweep_points_theta=7,
    hidden_scale=0.08,
)

TINY_PROFILE = ScaleProfile(
    name="tiny",
    train_clean=120, train_malware=120,
    val_clean=20, val_malware=20,
    test_clean=60, test_malware=100,
    target_epochs=8, substitute_epochs=10,
    batch_size=32, learning_rate=5e-3,
    attack_samples=40,
    sweep_points_gamma=4, sweep_points_theta=4,
    hidden_scale=0.03,
)

PROFILES: Dict[str, ScaleProfile] = {
    profile.name: profile
    for profile in (PAPER_PROFILE, MEDIUM_PROFILE, SMALL_PROFILE, TINY_PROFILE)
}


def get_profile(name: str) -> ScaleProfile:
    """Return the named scale profile.

    Raises
    ------
    ConfigurationError
        If ``name`` is not one of ``paper``, ``medium``, ``small``, ``tiny``.
    """
    try:
        return PROFILES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scale profile {name!r}; expected one of {sorted(PROFILES)}"
        ) from None


def default_profile() -> ScaleProfile:
    """Return the profile selected by the ``REPRO_SCALE`` environment variable.

    Falls back to ``small`` when the variable is unset, which is the scale
    used by the benchmark harness in CI.
    """
    return get_profile(os.environ.get(_ENV_SCALE_VAR, "small"))
