"""Setup shim for environments whose pip/setuptools lack PEP 660 editable
support (the offline evaluation image has setuptools without the ``wheel``
package).  All real metadata lives in ``pyproject.toml``."""

from setuptools import setup

setup()
