#!/usr/bin/env python3
"""Quickstart: build the corpus, train the detector, attack it, defend it.

This walks the library's main public API end to end in a few minutes at the
``tiny`` scale (override with ``REPRO_SCALE=small|medium|paper``):

1. generate the synthetic Table I corpus (API-call logs → 491 features),
2. train the 4-layer target DNN,
3. craft white-box JSMA adversarial examples at the paper's operating point
   (θ = 0.1, γ = 0.025) and measure the detection-rate collapse,
4. retrain with adversarial training and measure the recovery.

Run:  python examples/quickstart.py

Performance knobs (see README.md):

* ``REPRO_QUICKSTART_CACHE=<dir>`` persists the corpus and trained target
  via :class:`repro.utils.ArtifactCache`, so re-runs skip straight to the
  attack;
* ``REPRO_DTYPE=float32`` switches the compute engine to float32 (success
  rates match float64 within 1%).
"""

from __future__ import annotations

import os

from repro import (
    AdversarialTrainingDefense,
    Dataset,
    JsmaAttack,
    PerturbationConstraints,
    get_profile,
)
from repro.config import CLASS_MALWARE
from repro.experiments import ExperimentContext

import numpy as np


def main() -> None:
    scale = get_profile(os.environ.get("REPRO_SCALE", "tiny"))
    print(f"== scale profile: {scale.name} "
          f"({scale.train_total} train / {scale.test_total} test samples)")

    # The context lazily builds (and, with a cache directory, persists) the
    # shared artifacts: corpus, target model, substitutes.
    context = ExperimentContext(scale=scale, seed=42,
                                cache=os.environ.get("REPRO_QUICKSTART_CACHE"))

    # 1. The synthetic corpus (stand-in for the McAfee Labs / VirusTotal data).
    corpus = context.corpus
    for row_name, row_value in corpus.table1_rows():
        print(f"   {row_name}: {row_value}")

    # 2. The deployed 4-layer DNN detector.
    print("== training the target model ...")
    target = context.target_model
    clean_report = target.report(corpus.test.clean_only())
    malware_report = target.report(corpus.test.malware_only())
    print(f"   test TNR (clean) : {clean_report.tnr:.3f}")
    print(f"   test TPR (malware): {malware_report.tpr:.3f}")

    # 3. White-box JSMA at the paper's operating point.
    malware = corpus.test.malware_only().sample(
        min(scale.attack_samples, corpus.test.malware_only().n_samples),
        random_state=1, stratify=False)
    constraints = PerturbationConstraints(theta=0.1, gamma=0.025)
    attack = JsmaAttack(target.network, constraints=constraints)
    result = attack.run(malware.features)
    print("== white-box JSMA (theta=0.1, gamma=0.025)")
    print(f"   detection before attack: {target.detection_rate(malware.features):.3f}")
    print(f"   detection after attack : {result.detection_rate:.3f}")
    print(f"   mean added API features: {result.mean_perturbed_features:.1f}")
    print(f"   mean L2 perturbation   : {result.mean_l2_distance:.3f}")

    # 4. Adversarial training (the paper's most effective defense).
    print("== adversarial training ...")
    adversarial = Dataset(
        features=result.adversarial,
        labels=np.full(result.n_samples, CLASS_MALWARE, dtype=np.int64),
        name="advex")
    defense = AdversarialTrainingDefense(scale=scale, random_state=0)
    defended = defense.fit(corpus.train, corpus.test, adversarial,
                           validation=corpus.validation)
    print(f"   adversarial detection without defense: "
          f"{target.detection_rate(result.adversarial):.3f}")
    print(f"   adversarial detection with defense   : "
          f"{defended.detection_rate(result.adversarial):.3f}")
    print(f"   clean TNR with defense               : "
          f"{defended.report(corpus.test.clean_only()).tnr:.3f}")


if __name__ == "__main__":
    main()
