#!/usr/bin/env python3
"""The live grey-box experiment: edit the malware source, re-scan it.

Mirrors the third grey-box experiment of Section III-B: take a malware
*source sample* the engine detects with high confidence, let the substitute
model pick a single API call, add that call to the source 1..8 times, rebuild
(re-detonate) the sample in the sandbox, and watch the engine's malware
confidence fall.

Run:  python examples/live_source_modification.py
"""

from __future__ import annotations

import os

from repro import ExperimentContext, LiveGreyBoxAttack, get_profile
from repro.config import CLASS_MALWARE


def main() -> None:
    scale = get_profile(os.environ.get("REPRO_SCALE", "tiny"))
    context = ExperimentContext(scale=scale, seed=31)
    target = context.target_model
    substitute = context.substitute_model

    attack = LiveGreyBoxAttack(target.network, substitute.network, context.pipeline,
                               sandbox_os="win7", random_state=5)

    # Pick a malware source sample the engine detects with high — but not
    # saturated — confidence, like the paper's 98.43% sample.  A sample the
    # engine scores at exactly 1.0 sits too deep inside the malware region
    # for a single-API edit to move it.
    candidates = context.generator.generate_source_samples(
        12, label=CLASS_MALWARE, source="test", rng_name="example:live")
    scored = sorted(((attack.engine_confidence(sample), sample) for sample in candidates),
                    key=lambda pair: abs(pair[0] - 0.9843))
    confidence, sample = scored[0]
    print(f"== sample {sample.sample_id} ({sample.family})")
    print(f"   original engine confidence: {confidence:.4f}")
    print(f"   original call sites       : {sample.total_calls()}")

    api = attack.choose_api(sample)
    print(f"   API selected by the substitute's saliency map: {api!r}")

    trace = attack.run(sample, max_repetitions=8, api=api)
    print("\n   added calls | engine confidence | detected")
    for row in trace.rows():
        print(f"   {row['added_calls']:>11} | {row['confidence']:>17.4f} | {row['detected']}")

    if trace.evasion_repetitions is not None:
        print(f"\n   the sample evades the engine after adding {api!r} "
              f"{trace.evasion_repetitions} time(s)")
    else:
        print(f"\n   the engine still detects the sample after "
              f"{trace.repetitions[-1]} added calls "
              f"(confidence fell from {trace.original_confidence:.3f} "
              f"to {trace.final_confidence:.3f})")
    mutated = sample.add_api_call(api, times=trace.repetitions[-1])
    print(f"   functionality preserved (add-only mutation): "
          f"{mutated.preserves_functionality_of(sample)}")


if __name__ == "__main__":
    main()
