#!/usr/bin/env python3
"""Grey-box attack workflow (Section III-B / Figure 4 / Figure 5).

The attacker has no access to the target model or its training data, only to
the 491 API features.  They:

1. collect their own corpus and train the Table IV substitute DNN,
2. craft JSMA adversarial examples against the substitute,
3. replay them against the deployed target model (transferability),
4. analyse where the adversarial examples sit in feature space (L2 distances
   to the malware and clean populations).

Run:  python examples/greybox_transfer_attack.py
"""

from __future__ import annotations

import os

from repro import ExperimentContext, JsmaAttack, PerturbationConstraints, TransferAttack, get_profile
from repro.evaluation.distances import l2_distance_report


def main() -> None:
    scale = get_profile(os.environ.get("REPRO_SCALE", "tiny"))
    context = ExperimentContext(scale=scale, seed=13)
    target = context.target_model
    malware = context.attack_malware
    print(f"== scale {scale.name!r}; attacking {malware.n_samples} malware samples")
    print(f"   baseline target detection rate: "
          f"{target.detection_rate(malware.features):.3f}")

    print("== training the attacker's substitute model (Table IV architecture)")
    substitute = context.substitute_model
    agreement = (substitute.predict(context.corpus.test.features)
                 == target.predict(context.corpus.test.features)).mean()
    print(f"   substitute/target agreement on the test set: {agreement:.3f}")

    print("== crafting on the substitute, replaying on the target")
    for gamma in (0.005, 0.01, 0.02, 0.03):
        constraints = PerturbationConstraints(theta=0.1, gamma=gamma)
        attack = JsmaAttack(substitute.network, constraints=constraints, early_stop=False)
        outcome = TransferAttack(attack, target.network).run(malware.features)
        print(f"   gamma={gamma:<6} substitute detection {outcome.substitute_detection_rate:.3f}"
              f"  target detection {outcome.target_detection_rate:.3f}"
              f"  transfer rate {outcome.transfer_rate:.3f}")

    print("== Figure 5-style L2 analysis at theta=0.1, gamma=0.02")
    constraints = PerturbationConstraints(theta=0.1, gamma=0.02)
    crafted = JsmaAttack(substitute.network, constraints=constraints,
                         early_stop=False).run(malware.features)
    clean = context.corpus.test.clean_only().features
    report = l2_distance_report(crafted.original, crafted.adversarial, clean,
                                theta=0.1, gamma=0.02)
    print(f"   L2(malware, adversarial): {report.malware_to_adversarial:.3f}")
    print(f"   L2(malware, clean)      : {report.malware_to_clean:.3f}")
    print(f"   L2(clean, adversarial)  : {report.clean_to_adversarial:.3f}")
    print(f"   paper ordering (1)<(2)<(3) holds: {report.ordering_holds()}")


if __name__ == "__main__":
    main()
