#!/usr/bin/env python3
"""Table VI workflow: compare the four defenses (plus the ensemble).

Reproduces the defense comparison of Section III-C: every defense is fitted
from the defender's assets, then evaluated on the clean test split, the
malware test split and the grey-box adversarial examples crafted at
θ = 0.1, γ = 0.02.

Run:  python examples/defense_comparison.py
"""

from __future__ import annotations

import os

from repro import ExperimentContext, get_profile, run_experiment


def main() -> None:
    scale = get_profile(os.environ.get("REPRO_SCALE", "tiny"))
    context = ExperimentContext(scale=scale, seed=23)
    print(f"== fitting all defenses at scale {scale.name!r} "
          "(this retrains the detector several times)")

    result = run_experiment("table6", context, include_ensemble=True)
    print()
    print(result.render())

    print("\nPaper's qualitative claims, checked against this run:")
    print(f" - adversarial training recovers adversarial detection : "
          f"{result.adversarial_training_recovers_detection()}")
    print(f" - adversarial training keeps the clean TNR            : "
          f"{result.adversarial_training_preserves_clean()}")
    print(f" - dimensionality reduction costs clean accuracy        : "
          f"{result.dim_reduction_costs_clean_accuracy()} "
          f"(the paper observes a large drop; the synthetic corpus is easier)")


if __name__ == "__main__":
    main()
