#!/usr/bin/env python3
"""Serving quickstart: expose the trained detector as a scoring service.

Walks the `repro.serving` layer end to end at the ``tiny`` scale (override
with ``REPRO_SCALE=small|medium|paper``):

1. resolve the ``target`` model + pipeline bundle through the
   :class:`~repro.serving.registry.ModelRegistry` (warm-started from the
   artifact cache when ``REPRO_QUICKSTART_CACHE=<dir>`` is set),
2. score a single API log and print the structured verdict,
3. replay a mixed clean/malware/adversarial stream through the
   micro-batched service and report throughput + latency quantiles,
4. stand up a *defended* endpoint (feature squeezing) over the same bundle
   and compare its verdicts on the adversarial slice.

Run:  python examples/serving_quickstart.py
"""

from __future__ import annotations

import os
import time

from repro import ExperimentContext
from repro.defenses import FeatureSqueezingDefense
from repro.serving import (
    LoadGenerator,
    ModelRegistry,
    ScoringService,
    TrafficMix,
    replay,
)


def main() -> None:
    cache_dir = os.environ.get("REPRO_QUICKSTART_CACHE")
    context = ExperimentContext(cache=cache_dir)
    print(f"== scale {context.scale.name}, seed {context.seed}, "
          f"cache {'on' if cache_dir else 'off'}")

    # 1. Resolve the served bundle (trains on a cold cache, loads on warm).
    registry = ModelRegistry(cache=cache_dir)
    servable = registry.get("target", context=context)
    print(f"== serving bundle: {servable.describe()}")

    # 2. Score one log through the full log → features → verdict path.
    service = ScoringService(servable, max_batch_size=32)
    generator = LoadGenerator(context, mix=TrafficMix(0.4, 0.4, 0.2), seed=7)
    requests = generator.generate(64)
    first_log = next(r for r in requests if r.request_id.startswith("malware"))
    verdict = service.score(first_log)
    print(f"== single verdict: {verdict.as_dict()}")

    # 3. Replay the stream through the micro-batcher.
    service.reset_stats()                  # report the replay alone
    start = time.perf_counter()
    verdicts = replay(service, requests)
    elapsed = time.perf_counter() - start
    print(f"== {service.n_batches} fused batches; {service.report(elapsed).render()}")

    # 4. A defended endpoint over the same bundle.
    squeezed = FeatureSqueezingDefense().fit(servable.model.network,
                                             context.corpus.validation)
    defended = ScoringService(servable, detector=squeezed)
    adversarial = [r for r in requests if r.request_id.startswith("adv")]
    bare_hits = sum(v.is_malware for v in verdicts
                    if v.request_id.startswith("adv"))
    defended_hits = sum(v.is_malware for v in defended.score_many(adversarial))
    print(f"== adversarial slice ({len(adversarial)} requests): "
          f"undefended flags {bare_hits}, "
          f"feature-squeezing endpoint flags {defended_hits}")


if __name__ == "__main__":
    main()
