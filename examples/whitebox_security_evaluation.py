#!/usr/bin/env python3
"""Figure 3 workflow: white-box security evaluation curves.

Sweeps the attack strength exactly as the paper does — γ ∈ [0, 0.03] at
θ = 0.1, and θ ∈ [0, 0.15] at γ = 0.025 — against the trained target model,
with a random-API-addition control, and prints the detection-rate curves as
ASCII plots.

Run:  python examples/whitebox_security_evaluation.py
"""

from __future__ import annotations

import os

from repro import ExperimentContext, get_profile, run_experiment
from repro.evaluation.security_curve import SecurityCurve


def ascii_plot(curve: SecurityCurve, model_name: str = "target", width: int = 50) -> str:
    """Render a security curve as a horizontal-bar ASCII plot."""
    lines = []
    for point in curve.points:
        rate = point.detection_rates[model_name]
        bar = "#" * int(round(rate * width))
        lines.append(f"  {curve.swept_parameter}={point.strength:<6.3f} "
                     f"|{bar:<{width}}| {rate:.3f}")
    return "\n".join(lines)


def main() -> None:
    scale = get_profile(os.environ.get("REPRO_SCALE", "tiny"))
    context = ExperimentContext(scale=scale, seed=7)
    print(f"== running Figure 3 sweeps at scale {scale.name!r} "
          f"on {context.attack_malware.n_samples} malware samples")

    result = run_experiment("figure3", context)

    print("\nFigure 3(a): JSMA, theta=0.1, gamma sweep (detection rate)")
    print(ascii_plot(result.gamma_curve))
    print("\nFigure 3(b): JSMA, gamma=0.025, theta sweep (detection rate)")
    print(ascii_plot(result.theta_curve))
    print("\nControl: random API addition, theta=0.1, gamma sweep")
    print(ascii_plot(result.random_gamma_curve))

    print(f"\nno-attack baseline detection          : {result.baseline_detection_rate:.3f}")
    print(f"detection at theta=0.1, gamma=0.025    : {result.operating_point_detection():.3f}")
    print(f"paper's detection at the same point    : "
          f"{result.paper_operating_point['detection_rate']:.3f}")
    print(f"JSMA beats the random-noise control    : {result.attack_beats_random()}")


if __name__ == "__main__":
    main()
