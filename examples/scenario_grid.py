#!/usr/bin/env python3
"""Sweep a small attack x defense grid through the scenario API.

Every cell of the paper's contribution — {attack} x {defense} on one
detector — is a declarative :class:`~repro.scenarios.ScenarioSpec`;
``ScenarioSpec.grid`` expands the product and
:func:`~repro.scenarios.run_scenario` executes each cell against one shared
:class:`~repro.experiments.context.ExperimentContext` (so the corpus and
models are built once, and defenses fitted for one cell are reused by
later cells that reference them).

Run:  python examples/scenario_grid.py           (REPRO_SCALE=tiny default)
"""

from __future__ import annotations

import os

from repro import ExperimentContext, get_profile
from repro.evaluation.reports import format_table
from repro.scenarios import ScenarioSpec, run_scenario


def main() -> None:
    scale = get_profile(os.environ.get("REPRO_SCALE", "tiny"))
    context = ExperimentContext(scale=scale, seed=23)

    # Grey-box crafting (full budget, like every defense experiment) against
    # three endpoints, for the structured attack and the random control.
    specs = ScenarioSpec.grid(
        attacks=[{"id": "jsma", "params": {"early_stop": False}},
                 "random_addition"],
        defenses=["none", "feature_squeezing", "dim_reduction"],
        model="substitute", scale=scale.name, seed=context.seed,
        theta=0.1, gamma=0.02)

    print(f"== running {len(specs)} scenarios at scale {scale.name!r}")
    rows = []
    for spec in specs:
        report = run_scenario(spec, context=context)
        rows.append([
            spec.attack,
            spec.defense,
            report.detection["substitute"],
            report.detection["target"],
            report.defense_eval["advex_test"]["tpr"],
            report.defense_eval["clean_test"]["tnr"],
            f"{report.elapsed_s:.2f}s",
        ])
        print(f"   {spec.label}: done in {report.elapsed_s:.2f}s")

    print()
    print(format_table(
        ["attack", "defense", "det[substitute]", "det[target]",
         "advEx TPR", "clean TNR", "time"],
        rows, title="attack x defense grid (grey-box crafting)"))
    print()
    print("The structured attack (jsma) should evade far more than the")
    print("random control at the same budget, and the defended endpoints")
    print("should recover adversarial TPR relative to 'none'.")


if __name__ == "__main__":
    main()
