#!/usr/bin/env python3
"""The Figure 2 black-box framework, end to end.

The paper proposes (as future work) a real-world black-box attack: the
attacker can only query the deployed detector for verdicts.  This example
runs the full pipeline the framework describes:

1. the attacker assembles a small seed set of samples,
2. queries the deployed engine (a label-only oracle with a query budget),
3. trains a substitute on the oracle's labels, augmenting the data with
   Jacobian-based synthetic queries,
4. crafts JSMA adversarial examples on the substitute,
5. replays them against the deployed engine and measures the transfer rate.

Run:  python examples/blackbox_framework.py
"""

from __future__ import annotations

import os

from repro import BlackBoxFramework, ExperimentContext, LabelOracle, PerturbationConstraints, get_profile


def main() -> None:
    scale = get_profile(os.environ.get("REPRO_SCALE", "tiny"))
    context = ExperimentContext(scale=scale, seed=47)
    target = context.target_model
    malware = context.attack_malware

    print(f"== deployed engine: 4-layer DNN, baseline detection "
          f"{target.detection_rate(malware.features):.3f} "
          f"on {malware.n_samples} malware samples")

    oracle = LabelOracle(target, query_budget=50_000)
    framework = BlackBoxFramework(
        oracle,
        scale=scale,
        augmentation_rounds=2,
        augmentation_step=0.1,
        constraints=PerturbationConstraints(theta=0.1, gamma=0.025),
        random_state=3,
    )

    seed_set = context.corpus.validation
    print(f"== attacker seed set: {seed_set.n_samples} unlabeled samples "
          "(labels obtained by querying the engine)")
    report = framework.execute(seed_set.features, malware.features)

    print(f"   oracle queries used               : {report.oracle_queries}")
    print(f"   substitute/oracle label agreement : {report.substitute_agreement:.3f}")
    print(f"   target detection on black-box advEx: "
          f"{report.transfer.target_detection_rate:.3f}")
    print(f"   transfer rate                      : {report.transfer.transfer_rate:.3f}")
    print(f"   mean added API features            : "
          f"{report.transfer.attack_result.mean_perturbed_features:.1f}")


if __name__ == "__main__":
    main()
