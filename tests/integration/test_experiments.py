"""Integration tests for the experiment registry (every table and figure runs)."""

import numpy as np
import pytest

from repro.experiments import available_experiments, run_experiment
from repro.experiments.registry import EXPERIMENTS


class TestRegistry:
    def test_every_paper_artifact_is_registered(self):
        expected = {"table1", "table2", "table3", "table4", "table5", "table6",
                    "figure1", "figure2", "figure3", "figure4", "figure5",
                    "live_greybox"}
        assert set(available_experiments()) == expected

    def test_specs_carry_paper_sections(self):
        assert all(spec.paper_section for spec in EXPERIMENTS.values())

    def test_unknown_experiment_rejected(self, tiny_context):
        with pytest.raises(Exception):
            run_experiment("figure99", tiny_context)


class TestLightExperiments:
    def test_table1_reproduces_split_structure(self, tiny_context):
        result = run_experiment("table1", tiny_context)
        assert result.class_balance_preserved()
        assert result.measured["train"]["total"] == tiny_context.scale.train_total
        assert "Table I" in result.render()

    def test_table2_log_excerpt_round_trips(self, tiny_context):
        result = run_experiment("table2", tiny_context)
        assert result.round_trips()
        assert len(result.excerpt_lines) == 10
        assert result.total_records >= 10

    def test_table3_matches_paper_exactly(self, tiny_context):
        result = run_experiment("table3", tiny_context)
        assert result.matches_paper()
        assert result.n_features == 491

    def test_table4_substitute_depth(self, tiny_context):
        result = run_experiment("table4", tiny_context)
        assert result.depth_matches()
        assert result.paper_layers == [491, 1200, 1500, 1300, 2]

    def test_figure1_adds_requested_number_of_apis(self, tiny_context):
        result = run_experiment("figure1", tiny_context, n_added_features=2)
        assert len(result.added_apis) <= 2
        assert result.original_prediction == 1
        assert (result.adversarial_malware_confidence
                <= result.original_malware_confidence + 1e-9)


class TestAttackExperiments:
    def test_figure3_whitebox_curves(self, tiny_context):
        result = run_experiment("figure3", tiny_context)
        rates = result.gamma_curve.detection_rates("target")
        assert rates[-1] < rates[0]            # detection collapses with strength
        assert result.attack_beats_random()    # JSMA is not random noise
        assert result.operating_point_detection() < result.baseline_detection_rate

    def test_figure4_greybox_curves(self, tiny_context):
        result = run_experiment("figure4", tiny_context)
        # the grey-box attack weakens the target, and the binary-feature
        # substitute transfers worse than the count-feature substitute
        assert (result.gamma_curve.minimum_detection_rate("target")
                < result.baseline_detection_rate)
        assert result.count_attack_transfers_better_than_binary()
        assert 0.0 <= result.transfer_rate <= 1.0

    def test_figure5_distance_ordering(self, tiny_context):
        result = run_experiment("figure5", tiny_context)
        assert result.ordering_holds_everywhere()
        assert result.distances_grow_with_strength()

    def test_live_greybox_confidence_decays(self, tiny_context):
        result = run_experiment("live_greybox", tiny_context, max_repetitions=6)
        assert result.confidence_decreases()
        assert len(result.trace.confidences) == 6

    def test_figure2_blackbox_framework(self, tiny_context):
        result = run_experiment("figure2", tiny_context, augmentation_rounds=1)
        assert result.report.oracle_queries > 0
        assert 0.0 <= result.transfer_rate <= 1.0
        assert result.report.substitute_agreement > 0.5


class TestDefenseExperiments:
    def test_table5_dataset_composition(self, tiny_context):
        result = run_experiment("table5", tiny_context)
        assert result.adversarial_examples_included()
        assert result.training_set_is_balanced()
        assert len(result.rows()) == 2

    def test_table6_defense_comparison(self, tiny_context):
        result = run_experiment("table6", tiny_context)
        assert set(result.results) >= {"no_defense", "adversarial_training",
                                       "distillation", "feature_squeezing",
                                       "dim_reduction"}
        # the paper's headline defense claims
        assert result.adversarial_training_recovers_detection(margin=0.1)
        assert result.adversarial_training_preserves_clean(tolerance=0.1)
        # every measured cell is a rate or nan
        for per_dataset in result.results.values():
            for rates in per_dataset.values():
                for value in rates.values():
                    assert np.isnan(value) or 0.0 <= value <= 1.0

    def test_table6_with_ensemble_extension(self, tiny_context):
        result = run_experiment("table6", tiny_context, include_ensemble=True)
        assert "ensemble_advtrain_dimreduct" in result.results
