"""Chaos integration tests: fleet and grid recovery under injected faults.

Every plan here is deterministic (site + 1-based hit index + ``where``
filter), so the recovery counters in the resulting
:class:`~repro.reliability.report.ReliabilityReport` are asserted exactly —
and the surviving verdicts must match a fault-free baseline, the
dependability contract the paper-reproduction pipeline relies on.
"""

import pytest

from repro.exceptions import ParallelError
from repro.parallel import GridExecutor, WorkerFleet
from repro.reliability import FaultPlan, FaultSpec, InjectedFault, RetryPolicy
from repro.scenarios import ScenarioSpec
from repro.serving import ModelRegistry, ScoringService


@pytest.fixture(scope="module")
def tiny_servable(tiny_context):
    return ModelRegistry().get("target", context=tiny_context)


@pytest.fixture(scope="module")
def malware_rows(tiny_context):
    return tiny_context.attack_malware.features[:32]


@pytest.fixture(scope="module")
def baseline_verdicts(tiny_servable, malware_rows):
    return ScoringService(tiny_servable).score_many(list(malware_rows))


def _retry_policy() -> RetryPolicy:
    return RetryPolicy(max_retries=2, base_delay_s=0.01, seed=7)


class TestChaosFleet:
    def test_crash_and_flush_error_full_recovery(self, tiny_context,
                                                 malware_rows,
                                                 baseline_verdicts):
        plan = FaultPlan(specs=(
            FaultSpec(site="fleet.dispatch", action="crash", at=3,
                      where={"worker": 1}),
            FaultSpec(site="service.flush", action="error", at=1,
                      where={"worker": 0}),
        ))
        fleet = WorkerFleet(n_workers=2, context=tiny_context,
                            max_batch_size=8, restart_budget=2,
                            fault_plan=plan, retry_policy=_retry_policy())
        verdicts, report = fleet.score_stream(list(malware_rows))

        # Zero lost, zero duplicated, and every surviving verdict identical
        # to the fault-free single-service baseline.
        assert len(verdicts) == len(baseline_verdicts)
        for ours, theirs in zip(verdicts, baseline_verdicts):
            assert ours.status == "ok"
            assert ours.malware_probability == theirs.malware_probability
            assert ours.label == theirs.label
            assert ours.model_version == theirs.model_version
        reliability = report.reliability
        assert reliability.lost == 0
        assert reliability.duplicates == 0
        assert reliability.restarts == 1          # worker 1 was replaced
        assert reliability.redispatches >= 1      # its in-flight work re-ran
        assert reliability.flush_retries == 1     # worker 0's injected error
        assert reliability.faults == {"fleet.dispatch": 1, "service.flush": 1}
        assert "restarts=1" in report.render()

    def test_malformed_payload_isolated_as_error_verdict(self, tiny_context,
                                                         malware_rows,
                                                         baseline_verdicts):
        plan = FaultPlan(specs=(
            FaultSpec(site="fleet.dispatch", action="malformed", at=2,
                      where={"worker": 0}),
        ))
        fleet = WorkerFleet(n_workers=2, context=tiny_context,
                            max_batch_size=8, fault_plan=plan)
        verdicts, report = fleet.score_stream(list(malware_rows))
        assert len(verdicts) == len(baseline_verdicts)
        errored = [verdict for verdict in verdicts if not verdict.is_scored]
        assert len(errored) == 1                  # exactly the corrupted one
        assert errored[0].status == "error"
        baseline_by_id = {verdict.request_id: verdict
                          for verdict in baseline_verdicts}
        for verdict in verdicts:
            if verdict.is_scored:
                baseline = baseline_by_id[verdict.request_id]
                assert verdict.malware_probability == \
                       baseline.malware_probability
                assert verdict.label == baseline.label
        reliability = report.reliability
        assert reliability.isolated == 1
        assert reliability.lost == 0 and reliability.duplicates == 0
        assert reliability.faults == {"fleet.dispatch": 1}

    def test_latency_spike_changes_nothing_but_timing(self, tiny_context,
                                                      malware_rows,
                                                      baseline_verdicts):
        plan = FaultPlan(specs=(
            FaultSpec(site="service.flush", action="delay", at=1,
                      delay_ms=50.0, where={"worker": 0}),
        ))
        fleet = WorkerFleet(n_workers=2, context=tiny_context,
                            max_batch_size=8, fault_plan=plan)
        verdicts, report = fleet.score_stream(list(malware_rows))
        assert [v.malware_probability for v in verdicts] == \
               [v.malware_probability for v in baseline_verdicts]
        assert report.reliability.total_events() == 0
        assert report.reliability.faults == {"service.flush": 1}

    def test_exhausted_restart_budget_raises(self, tiny_context, malware_rows):
        # Every replica (original and replacements) crashes on its first
        # dispatch; once the budget is spent the stream must fail loudly.
        plan = FaultPlan(specs=(
            FaultSpec(site="fleet.dispatch", action="crash", at=1),))
        fleet = WorkerFleet(n_workers=1, context=tiny_context,
                            restart_budget=1, fault_plan=plan)
        with pytest.raises(ParallelError, match="restart budget"):
            fleet.score_stream(list(malware_rows[:4]))
        # The failed stream tore the fleet down; a fault-free fleet works.
        clean = WorkerFleet(n_workers=1, context=tiny_context)
        verdicts, _ = clean.score_stream(list(malware_rows[:4]))
        assert len(verdicts) == 4

    def test_negative_restart_budget_rejected(self, tiny_context):
        with pytest.raises(ParallelError):
            WorkerFleet(n_workers=1, context=tiny_context, restart_budget=-1)


class TestChaosGrid:
    def _specs(self) -> list:
        return [ScenarioSpec(attack="random_addition", scale="tiny", seed=123),
                ScenarioSpec(attack="random_addition", scale="tiny", seed=123,
                             gamma=0.03)]

    def test_serial_retry_recovers_injected_cell_failure(self, tiny_context):
        specs = self._specs()
        clean = GridExecutor(n_workers=1).run(specs, context=tiny_context)
        plan = FaultPlan(specs=(FaultSpec(site="grid.cell", action="error"),))
        chaotic = GridExecutor(
            n_workers=1, retries=1,
            retry_policy=RetryPolicy(max_retries=1, base_delay_s=0.0),
            fault_plan=plan).run(specs, context=tiny_context)
        assert [r.to_json(include_timing=False) for r in chaotic.reports] == \
               [r.to_json(include_timing=False) for r in clean.reports]
        assert chaotic.reliability.cell_retries == 1
        assert chaotic.reliability.faults == {"grid.cell": 1}
        assert chaotic.to_dict()["reliability"]["cell_retries"] == 1

    def test_serial_without_retries_fails_fast(self, tiny_context):
        plan = FaultPlan(specs=(FaultSpec(site="grid.cell", action="error"),))
        executor = GridExecutor(n_workers=1, fault_plan=plan)
        with pytest.raises(InjectedFault):
            executor.run(self._specs(), context=tiny_context)

    def test_pool_retry_recovers_targeted_cell_failure(self, tiny_context):
        specs = self._specs()
        clean = GridExecutor(n_workers=1).run(specs, context=tiny_context)
        # Hit counters are per worker process, so the attempt number is the
        # only deterministic cross-process trigger: fail cell 0's first
        # attempt wherever it lands.
        plan = FaultPlan(specs=(
            FaultSpec(site="grid.cell", action="error",
                      where={"cell": 0, "attempt": 0}),))
        chaotic = GridExecutor(
            n_workers=2, retries=1,
            retry_policy=RetryPolicy(max_retries=1, base_delay_s=0.01),
            fault_plan=plan).run(specs, context=tiny_context)
        assert [r.to_json(include_timing=False) for r in chaotic.reports] == \
               [r.to_json(include_timing=False) for r in clean.reports]
        assert chaotic.reliability.cell_retries == 1

    def test_shard_timeout_abandons_and_redispatches(self, tiny_context):
        specs = self._specs()
        clean = GridExecutor(n_workers=1).run(specs, context=tiny_context)
        plan = FaultPlan(specs=(
            FaultSpec(site="grid.cell", action="delay", delay_ms=5000.0,
                      where={"cell": 0, "attempt": 0}),))
        chaotic = GridExecutor(
            n_workers=2, retries=1, shard_timeout_s=1.0,
            retry_policy=RetryPolicy(max_retries=1, base_delay_s=0.01),
            fault_plan=plan).run(specs, context=tiny_context)
        assert [r.to_json(include_timing=False) for r in chaotic.reports] == \
               [r.to_json(include_timing=False) for r in clean.reports]
        assert chaotic.reliability.cell_timeouts == 1
        assert chaotic.reliability.cell_retries == 0  # timeout, not failure

    def test_invalid_reliability_knobs_rejected(self):
        with pytest.raises(ParallelError):
            GridExecutor(retries=-1)
        with pytest.raises(ParallelError):
            GridExecutor(shard_timeout_s=0.0)
