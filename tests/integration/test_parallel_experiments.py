"""Parallel-path parity for the experiment drivers.

figure3 / figure4 / table6 gained a ``workers=`` fan-out through the
:class:`~repro.parallel.GridExecutor`.  The contract is that the worker
count is invisible in the output: a pooled run renders byte-for-byte the
same tables and curves as the serial driver (which the scenario-parity
suite in turn pins against the seed drivers).
"""

import pytest

from repro.experiments import figure3_whitebox, figure4_greybox, table6_defense


@pytest.mark.parametrize("driver", [figure3_whitebox, figure4_greybox,
                                    table6_defense],
                         ids=["figure3", "figure4", "table6"])
def test_driver_rendering_is_worker_count_invariant(driver, tiny_context):
    serial = driver.run(tiny_context)
    pooled = driver.run(tiny_context, workers=2)
    assert pooled.render() == serial.render()


def test_run_experiment_forwards_workers(tiny_context):
    from repro.experiments import run_experiment

    serial = run_experiment("table6", tiny_context)
    pooled = run_experiment("table6", tiny_context, workers=2)
    assert pooled.render() == serial.render()


def test_workers_one_is_plain_serial(tiny_context):
    # workers=1 must not touch multiprocessing at all (it is the default
    # the CLI and the benchmarks baseline against).
    result = table6_defense.run(tiny_context, workers=1)
    assert "Table VI" in result.render()
